//! Cross-crate property tests: the unified `Executor` surface must agree
//! with the reference kernels for *any* sampled SuperSchedule, on all four
//! kernels. This is the central correctness property of the TACO-substitute
//! stack (tensor → format → schedule → exec).

use waco::prelude::*;
use waco::tensor::csr::mttkrp_reference;
use waco::tensor::gen;
use waco_check::props;

fn matrix_from(seed: u64, nrows: usize, ncols: usize, nnz_target: usize) -> CooMatrix {
    let mut rng = Rng64::seed_from(seed);
    let density = nnz_target as f64 / (nrows * ncols) as f64;
    gen::uniform_random(nrows, ncols, density.min(0.5), &mut rng)
}

fn sched_from(space: &Space, seed: u64) -> SuperSchedule {
    let mut rng = Rng64::seed_from(seed);
    SuperSchedule::sample(space, &mut rng)
}

props! {
    cases = 48,
    fn spmv_any_schedule(seed in 0u64..1_000_000, sseed in 0u64..1_000_000,
                         nrows in 4usize..40, ncols in 4usize..40) {
        let m = matrix_from(seed, nrows, ncols, nrows * 3);
        let space = Space::new(Kernel::SpMV, vec![nrows, ncols], 0);
        let sched = sched_from(&space, sseed);
        let x = DenseVector::from_fn(ncols, |i| ((i * 13 % 7) as f32) - 3.0);
        let run = Executor::planned()
            .prepare(&m, &sched, &space)
            .and_then(|pk| pk.run(KernelArgs::Spmv { x: &x }))
            .and_then(|out| out.into_vector());
        match run {
            Ok(y) => {
                let r = CsrMatrix::from_coo(&m).spmv(&x);
                assert!(y.max_abs_diff(&r) < 1e-2,
                    "schedule {} diff {}", sched.describe(&space), y.max_abs_diff(&r));
            }
            Err(waco::exec::ExecError::Format(_)) => {} // over storage budget: excluded
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    cases = 48,
    fn spmm_any_schedule(seed in 0u64..1_000_000, sseed in 0u64..1_000_000,
                         n in 4usize..32, nj in 1usize..12) {
        let m = matrix_from(seed, n, n, n * 3);
        let space = Space::new(Kernel::SpMM, vec![n, n], nj);
        let sched = sched_from(&space, sseed);
        let b = DenseMatrix::from_fn(n, nj, |r, c| ((r * 5 + c * 3) % 11) as f32 * 0.25 - 1.0);
        let run = Executor::planned()
            .prepare(&m, &sched, &space)
            .and_then(|pk| pk.run(KernelArgs::Spmm { b: &b }))
            .and_then(|out| out.into_matrix());
        if let Ok(c) = run {
            let r = CsrMatrix::from_coo(&m).spmm(&b);
            assert!(c.max_abs_diff(&r) < 1e-2,
                "schedule {} diff {}", sched.describe(&space), c.max_abs_diff(&r));
        }
    }

    cases = 48,
    fn sddmm_any_schedule(seed in 0u64..1_000_000, sseed in 0u64..1_000_000,
                          n in 4usize..28, nk in 1usize..10) {
        let m = matrix_from(seed, n, n, n * 2);
        let space = Space::new(Kernel::SDDMM, vec![n, n], nk);
        let sched = sched_from(&space, sseed);
        let b = DenseMatrix::from_fn(n, nk, |r, c| ((r + 2 * c) % 9) as f32 * 0.3);
        let cm = DenseMatrix::from_fn(nk, n, |r, c| ((2 * r + c) % 7) as f32 * 0.4 - 1.0);
        let run = Executor::planned()
            .prepare(&m, &sched, &space)
            .and_then(|pk| pk.run(KernelArgs::Sddmm { b: &b, c: &cm }))
            .and_then(|out| out.into_sparse());
        if let Ok(d) = run {
            let r = CsrMatrix::from_coo(&m).sddmm(&b, &cm);
            assert!(d.to_dense().max_abs_diff(&r.to_dense()) < 1e-2,
                "schedule {}", sched.describe(&space));
        }
    }

    cases = 48,
    fn mttkrp_any_schedule(seed in 0u64..1_000_000, sseed in 0u64..1_000_000,
                           n in 3usize..14, rank in 1usize..8) {
        let mut rng = Rng64::seed_from(seed);
        let t = gen::random_tensor3([n, n, n], n * n, &mut rng);
        let space = Space::new(Kernel::MTTKRP, vec![n, n, n], rank);
        let sched = sched_from(&space, sseed);
        let b = DenseMatrix::from_fn(n, rank, |r, c| ((r * 3 + c) % 5) as f32 * 0.5);
        let cm = DenseMatrix::from_fn(n, rank, |r, c| ((r + c * 2) % 6) as f32 * 0.25 - 0.5);
        let run = Executor::planned()
            .prepare_tensor3(&t, &sched, &space)
            .and_then(|pk| pk.run(KernelArgs::Mttkrp { b: &b, c: &cm }))
            .and_then(|out| out.into_matrix());
        if let Ok(d) = run {
            let r = mttkrp_reference(&t, &b, &cm);
            assert!(d.max_abs_diff(&r) < 1e-2,
                "schedule {}", sched.describe(&space));
        }
    }

    /// Structured patterns (not just uniform noise) through random schedules.
    cases = 48,
    fn spmv_structured_patterns(sseed in 0u64..1_000_000, pick in 0usize..4) {
        let mut rng = Rng64::seed_from(sseed);
        let m = match pick {
            0 => gen::banded(24, 3, 0.7, &mut rng),
            1 => gen::blocked(24, 24, 4, 8, 0.8, &mut rng),
            2 => gen::powerlaw_rows(24, 24, 4.0, 1.2, &mut rng),
            _ => gen::mesh2d(5, 5),
        };
        let space = Space::new(Kernel::SpMV, vec![m.nrows(), m.ncols()], 0);
        let sched = sched_from(&space, sseed ^ 0xDEAD);
        let x = DenseVector::from_fn(m.ncols(), |i| (i as f32 * 0.11).cos());
        let run = Executor::planned()
            .prepare(&m, &sched, &space)
            .and_then(|pk| pk.run(KernelArgs::Spmv { x: &x }))
            .and_then(|out| out.into_vector());
        if let Ok(y) = run {
            let r = CsrMatrix::from_coo(&m).spmv(&x);
            assert!(y.max_abs_diff(&r) < 1e-2);
        }
    }
}
