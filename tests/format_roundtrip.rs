//! Property tests: every sampled format spec must store and reproduce any
//! matrix/tensor exactly (format ⊣ storage adjunction across crates).

use waco::format::SparseStorage;
use waco::prelude::*;
use waco::tensor::gen;
use waco_check::props;

props! {
    cases = 64,
    fn matrix_roundtrip_any_format(seed in 0u64..1_000_000, sseed in 0u64..1_000_000,
                                   nrows in 2usize..48, ncols in 2usize..48) {
        let mut rng = Rng64::seed_from(seed);
        let m = gen::uniform_random(nrows, ncols, 0.15, &mut rng);
        // Sample a format through the schedule sampler (the realistic
        // distribution over specs).
        let space = Space::new(Kernel::SpMV, vec![nrows, ncols], 0);
        let mut srng = Rng64::seed_from(sseed);
        let sched = SuperSchedule::sample(&space, &mut srng);
        let spec = sched.a_format_spec(&space).unwrap();
        match SparseStorage::from_matrix(&m, &spec) {
            Ok(st) => {
                assert_eq!(st.to_matrix(), m, "format {}", spec.describe());
                // Storage accounting is self-consistent.
                assert!(st.storage_words() >= st.vals().len());
            }
            Err(waco::format::FormatError::StorageTooLarge { .. }) => {}
            Err(e) => panic!("unexpected {e}"),
        }
    }

    cases = 64,
    fn tensor_roundtrip_any_format(seed in 0u64..1_000_000, sseed in 0u64..1_000_000,
                                   n in 2usize..14) {
        let mut rng = Rng64::seed_from(seed);
        let t = gen::random_tensor3([n, n, n], n * n, &mut rng);
        let space = Space::new(Kernel::MTTKRP, vec![n, n, n], 4);
        let mut srng = Rng64::seed_from(sseed);
        let sched = SuperSchedule::sample(&space, &mut srng);
        let spec = sched.a_format_spec(&space).unwrap();
        if let Ok(st) = SparseStorage::from_tensor3(&t, &spec) {
            assert_eq!(st.to_tensor3(), t, "format {}", spec.describe());
        }
    }

    /// locate() agrees with iterate() on every level of any built storage.
    cases = 64,
    fn locate_consistent_with_iterate(seed in 0u64..1_000_000, sseed in 0u64..1_000_000) {
        let mut rng = Rng64::seed_from(seed);
        let m = gen::uniform_random(20, 20, 0.2, &mut rng);
        let space = Space::new(Kernel::SpMV, vec![20, 20], 0);
        let mut srng = Rng64::seed_from(sseed);
        let sched = SuperSchedule::sample(&space, &mut srng);
        let spec = sched.a_format_spec(&space).unwrap();
        let Ok(st) = SparseStorage::from_matrix(&m, &spec) else { return };
        // Walk level 0 and verify locate for each child at level 1.
        for (c0, p0) in st.iterate(0, 0) {
            assert_eq!(st.locate(0, 0, c0), Some(p0));
            for (c1, p1) in st.iterate(1, p0) {
                assert_eq!(st.locate(1, p0, c1), Some(p1));
            }
        }
    }

    /// Matrix Market round-trips arbitrary generated matrices.
    cases = 64,
    fn matrix_market_roundtrip(seed in 0u64..1_000_000, n in 2usize..40) {
        let mut rng = Rng64::seed_from(seed);
        let m = gen::uniform_random(n, n + 3, 0.2, &mut rng);
        let mut buf = Vec::new();
        waco::tensor::io::write_matrix_market(&mut buf, &m).unwrap();
        let back = waco::tensor::io::read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back.pattern(), m.pattern());
    }
}
