//! End-to-end pipeline integration: train → index → tune → execute, plus
//! baseline contracts, across all crates through the facade.

use waco::baselines::{
    aspt::aspt_matrix, best_format::best_format_matrix, fixed::fixed_csr_matrix,
    mkl::mkl_like_matrix,
};
use waco::core::autotune::{self, Restriction};
use waco::core::{Waco, WacoConfig};
use waco::prelude::*;
use waco::tensor::gen;

fn xeon() -> Simulator {
    Simulator::new(MachineConfig::xeon_like())
}

#[test]
fn full_spmv_pipeline_tunes_and_executes() {
    let corpus = gen::corpus(8, 32, 21);
    let (mut waco, stats) =
        Waco::train_2d(xeon(), Kernel::SpMV, &corpus, 0, WacoConfig::tiny()).unwrap();
    assert!(!stats.train_loss.is_empty());

    let mut rng = Rng64::seed_from(77);
    let m = gen::powerlaw_rows(48, 48, 6.0, 1.3, &mut rng);
    let tuned = waco.tune_matrix(&m).unwrap();
    let space = waco.space_for_matrix(&m);
    tuned.result.sched.validate(&space).unwrap();

    // The tuned schedule runs for real and matches the reference.
    let x = DenseVector::from_fn(48, |i| (i % 5) as f32 - 2.0);
    let y = Executor::planned()
        .prepare(&m, &tuned.result.sched, &space)
        .unwrap()
        .run(KernelArgs::Spmv { x: &x })
        .unwrap()
        .into_vector()
        .unwrap();
    let r = CsrMatrix::from_coo(&m).spmv(&x);
    assert!(y.max_abs_diff(&r) < 1e-2);
}

#[test]
fn tuned_beats_or_matches_fixed_csr_on_average() {
    // With measurement of the top-k, WACO should on average be at least as
    // good as the untuned default across a small test set.
    let corpus = gen::corpus(10, 32, 31);
    let (mut waco, _) =
        Waco::train_2d(xeon(), Kernel::SpMV, &corpus, 0, WacoConfig::tiny()).unwrap();
    let test = gen::corpus(6, 40, 777);
    let mut ratios = Vec::new();
    for (_, m) in &test {
        let tuned = waco.tune_matrix(m).unwrap();
        let fixed = fixed_csr_matrix(&waco.sim, Kernel::SpMV, m, 0).unwrap();
        ratios.push(fixed.kernel_seconds / tuned.result.kernel_seconds);
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        geomean > 0.95,
        "geomean speedup vs FixedCSR too low: {geomean} ({ratios:?})"
    );
}

#[test]
fn baselines_contracts_hold_together() {
    let sim = xeon();
    let mut rng = Rng64::seed_from(5);
    let m = gen::blocked(96, 96, 8, 30, 0.8, &mut rng);

    let fixed = fixed_csr_matrix(&sim, Kernel::SpMM, &m, 16).unwrap();
    let mkl = mkl_like_matrix(&sim, Kernel::SpMM, &m, 16).unwrap();
    let bf = best_format_matrix(&sim, Kernel::SpMM, &m, 16).unwrap();
    let aspt = aspt_matrix(&sim, Kernel::SpMM, &m, 16).unwrap();

    // MKL's menu includes the fixed configuration.
    assert!(mkl.kernel_seconds <= fixed.kernel_seconds * 1.0001);
    // Oracle BestFormat includes a CSR candidate with comparable settings.
    assert!(bf.kernel_seconds <= fixed.kernel_seconds * 1.5);
    // Tuning overhead ordering: fixed pays nothing, tuners pay something.
    assert_eq!(fixed.tuning_seconds, 0.0);
    assert!(mkl.tuning_seconds > 0.0);
    assert!(bf.tuning_seconds > 0.0);
    assert!(aspt.tuning_seconds > 0.0);
}

#[test]
fn restricted_tuning_spaces_are_ordered() {
    // Table 1's structural claim on a blocked matrix.
    let sim = xeon();
    let mut rng = Rng64::seed_from(6);
    let m = gen::blocked(96, 96, 16, 20, 0.95, &mut rng);
    let base = fixed_csr_matrix(&sim, Kernel::SpMM, &m, 16).unwrap();
    let f =
        autotune::tune_matrix(&sim, Kernel::SpMM, &m, 16, 40, 9, Restriction::FormatOnly).unwrap();
    let s = autotune::tune_matrix(&sim, Kernel::SpMM, &m, 16, 40, 9, Restriction::ScheduleOnly)
        .unwrap();
    let fs = autotune::tune_matrix(&sim, Kernel::SpMM, &m, 16, 40, 9, Restriction::Joint).unwrap();
    assert!(f.kernel_seconds <= base.kernel_seconds * 1.0001);
    assert!(s.kernel_seconds <= base.kernel_seconds * 1.0001);
    assert!(fs.kernel_seconds <= f.kernel_seconds.min(s.kernel_seconds) * 1.0001);
}

#[test]
fn cross_machine_simulators_differ() {
    // The Table 7 premise: the same schedule times differently on the two
    // machines, so hardware-specific tuning matters.
    let mut rng = Rng64::seed_from(7);
    let m = gen::powerlaw_rows(128, 128, 8.0, 1.3, &mut rng);
    let xeon = Simulator::new(MachineConfig::xeon_like());
    let epyc = Simulator::new(MachineConfig::epyc_like());
    let space_x = xeon.space_for(Kernel::SpMV, vec![128, 128], 0);
    let space_e = epyc.space_for(Kernel::SpMV, vec![128, 128], 0);
    let sched_x = waco::schedule::named::default_csr(&space_x);
    let sched_e = waco::schedule::named::default_csr(&space_e);
    let tx = xeon.time_matrix(&m, &sched_x, &space_x).unwrap();
    let te = epyc.time_matrix(&m, &sched_e, &space_e).unwrap();
    assert_ne!(tx.seconds, te.seconds);
}

#[test]
fn mttkrp_pipeline_works() {
    let mut rng = Rng64::seed_from(8);
    let corpus: Vec<(String, CooTensor3)> = (0..4)
        .map(|i| {
            (
                format!("t{i}"),
                gen::random_tensor3([10, 10, 10], 80, &mut rng),
            )
        })
        .collect();
    let (mut waco, _) = Waco::train_3d(xeon(), &corpus, 4, WacoConfig::tiny()).unwrap();
    let t = gen::fibered_tensor3([10, 10, 10], 2, 0.6, &mut rng);
    let tuned = waco.tune_tensor3(&t).unwrap();
    assert!(tuned.result.kernel_seconds > 0.0);

    // Execute the tuned MTTKRP for real.
    let space = waco.sim.space_for(Kernel::MTTKRP, t.dims().to_vec(), 4);
    let b = DenseMatrix::from_fn(10, 4, |r, c| (r + c) as f32 * 0.1);
    let c = DenseMatrix::from_fn(10, 4, |r, c| (r * c) as f32 * 0.05 - 0.2);
    let d = Executor::planned()
        .prepare_tensor3(&t, &tuned.result.sched, &space)
        .unwrap()
        .run(KernelArgs::Mttkrp { b: &b, c: &c })
        .unwrap()
        .into_matrix()
        .unwrap();
    let r = waco::tensor::csr::mttkrp_reference(&t, &b, &c);
    assert!(d.max_abs_diff(&r) < 1e-2);
}

#[test]
fn model_checkpoint_survives_pipeline() {
    let corpus = gen::corpus(4, 24, 41);
    let (mut waco, _) =
        Waco::train_2d(xeon(), Kernel::SpMV, &corpus, 0, WacoConfig::tiny()).unwrap();
    let mut buf = Vec::new();
    waco.model.save(&mut buf).unwrap();
    waco.model.load(buf.as_slice()).unwrap();
    let tuned = waco.tune_matrix(&corpus[0].1).unwrap();
    assert!(tuned.result.kernel_seconds > 0.0);
}
