//! Cross-crate invariants of the cost simulator: determinism, agreement
//! with the interpreter's control flow, and sensible monotonicities.

use waco::prelude::*;
use waco::schedule::named;
use waco::tensor::gen;
use waco_check::props;

fn xeon() -> Simulator {
    Simulator::new(MachineConfig::xeon_like())
}

props! {
    /// Simulation is a pure function of (matrix, schedule, machine).
    cases = 32,
    fn deterministic(seed in 0u64..1_000_000, sseed in 0u64..1_000_000) {
        let mut rng = Rng64::seed_from(seed);
        let m = gen::uniform_random(32, 32, 0.1, &mut rng);
        let sim = xeon();
        let space = sim.space_for(Kernel::SpMV, vec![32, 32], 0);
        let mut srng = Rng64::seed_from(sseed);
        let sched = SuperSchedule::sample(&space, &mut srng);
        let a = sim.time_matrix(&m, &sched, &space);
        let b = sim.time_matrix(&m, &sched, &space);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            _ => panic!("non-deterministic feasibility"),
        }
    }

    /// The simulator's body count equals the true number of stored nonzeros
    /// visited (for padding-free formats: exactly nnz).
    cases = 32,
    fn bodies_equal_nnz_for_csr(seed in 0u64..1_000_000, n in 8usize..64) {
        let mut rng = Rng64::seed_from(seed);
        let m = gen::uniform_random(n, n, 0.1, &mut rng);
        let sim = xeon();
        let space = sim.space_for(Kernel::SpMV, vec![n, n], 0);
        let sched = named::default_csr(&space);
        let r = sim.time_matrix(&m, &sched, &space).unwrap();
        assert_eq!(r.bodies, m.nnz() as u64);
    }

    /// More nonzeros (same shape, superset pattern) never simulate faster
    /// under the default schedule.
    cases = 32,
    fn monotone_in_nnz(seed in 0u64..1_000_000) {
        let mut rng = Rng64::seed_from(seed);
        let small = gen::uniform_random(64, 64, 0.05, &mut rng);
        let extra = gen::uniform_random(64, 64, 0.05, &mut rng);
        let big = CooMatrix::from_triplets(
            64, 64,
            small.iter().chain(extra.iter()),
        ).unwrap();
        let sim = xeon();
        let space = sim.space_for(Kernel::SpMV, vec![64, 64], 0);
        let mut sched = named::default_csr(&space);
        sched.parallel = None; // isolate work from load balance
        let ts = sim.time_matrix(&small, &sched, &space).unwrap();
        let tb = sim.time_matrix(&big, &sched, &space).unwrap();
        assert!(tb.seconds >= ts.seconds * 0.999,
            "superset pattern got faster: {} vs {}", tb.seconds, ts.seconds);
    }
}

#[test]
fn machines_rank_thread_counts_differently() {
    // 48 threads help the Xeon-like machine (24 cores) on big balanced
    // work, while 48 > EPYC's 16 hardware threads would oversubscribe —
    // the menu prevents that, but speeds must reflect core counts.
    let x = MachineConfig::xeon_like();
    let e = MachineConfig::epyc_like();
    assert!(x.thread_speed(48) > e.thread_speed(48));
    assert_eq!(e.thread_speed(8), 1.0);
}

#[test]
fn simd_threshold_matches_fig14() {
    let x = MachineConfig::xeon_like();
    // Per-element cost is flat below 16 and drops by the vector width at 16.
    let c15 = x.simd_unit_cost(15);
    let c16 = x.simd_unit_cost(16);
    assert_eq!(x.simd_unit_cost(1), c15);
    assert!((c15 / c16 - x.vector_width as f64).abs() < 1e-9);
}

#[test]
fn convert_cost_zero_free_for_reused_storage() {
    // time_stored never includes conversion in `seconds`; the caller
    // accounts for it once (the §5.6 split).
    let mut rng = Rng64::seed_from(3);
    let m = gen::uniform_random(48, 48, 0.1, &mut rng);
    let sim = xeon();
    let space = sim.space_for(Kernel::SpMV, vec![48, 48], 0);
    let sched = named::default_csr(&space);
    let spec = sched.a_format_spec(&space).unwrap();
    let st = waco::format::SparseStorage::from_matrix(&m, &spec).unwrap();
    let a = sim.time_stored(&st, &sched, &space).unwrap();
    let b = sim.time_matrix(&m, &sched, &space).unwrap();
    assert_eq!(a.seconds, b.seconds);
    assert!(a.convert_seconds > 0.0);
}
