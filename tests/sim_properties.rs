//! Deeper cross-crate properties of the simulator against the executor's
//! semantics: for *any* feasible SuperSchedule, the simulated walk must
//! visit every stored nonzero exactly once, and its derived quantities must
//! stay in their domains.

use waco::prelude::*;
use waco::tensor::gen;
use waco_check::props;

fn xeon() -> Simulator {
    Simulator::new(MachineConfig::xeon_like())
}

props! {
    /// Every complete loop-space point maps to exactly one storage slot, so
    /// any schedule's walk sees each stored nonzero exactly once.
    cases = 40,
    fn bodies_equal_nnz_for_any_schedule(seed in 0u64..1_000_000,
                                         sseed in 0u64..1_000_000,
                                         n in 8usize..48) {
        let mut rng = Rng64::seed_from(seed);
        let m = gen::uniform_random(n, n, 0.12, &mut rng);
        let sim = xeon();
        let space = sim.space_for(Kernel::SpMV, vec![n, n], 0);
        let mut srng = Rng64::seed_from(sseed);
        let sched = SuperSchedule::sample(&space, &mut srng);
        if let Ok(r) = sim.time_matrix(&m, &sched, &space) {
            assert_eq!(r.bodies, m.nnz() as u64,
                "schedule {}", sched.describe(&space));
        }
    }

    /// Report invariants: positive time, ratios in domain, imbalance ≥ ~1.
    cases = 40,
    fn report_domains(seed in 0u64..1_000_000, sseed in 0u64..1_000_000) {
        let mut rng = Rng64::seed_from(seed);
        let m = gen::powerlaw_rows(48, 48, 5.0, 1.2, &mut rng);
        let sim = xeon();
        let space = sim.space_for(Kernel::SpMM, vec![48, 48], 8);
        let mut srng = Rng64::seed_from(sseed);
        let sched = SuperSchedule::sample(&space, &mut srng);
        if let Ok(r) = sim.time_matrix(&m, &sched, &space) {
            assert!(r.seconds > 0.0);
            assert!((0.0..=1.0).contains(&r.miss_ratio));
            assert!(r.imbalance >= 0.99, "imbalance {}", r.imbalance);
            assert!(r.simd_factor >= 1.0);
            assert!(r.threads >= 1);
            assert!(r.convert_seconds > 0.0);
        }
    }

    /// The same schedule under more threads (same chunk) never increases
    /// the pure-work term and the report stays finite.
    cases = 40,
    fn thread_count_is_modeled(seed in 0u64..1_000_000) {
        let mut rng = Rng64::seed_from(seed);
        let m = gen::uniform_random(256, 256, 0.03, &mut rng);
        let sim = xeon();
        let space = sim.space_for(Kernel::SpMV, vec![256, 256], 0);
        let mut s24 = waco::schedule::named::default_csr(&space);
        s24.parallel = Some(waco::schedule::Parallelize {
            var: waco::schedule::LoopVar::outer(0),
            threads: 24,
            chunk: 8,
        });
        let mut s1 = s24.clone();
        s1.parallel = None;
        let t24 = sim.time_matrix(&m, &s24, &space).unwrap();
        let t1 = sim.time_matrix(&m, &s1, &space).unwrap();
        // 2k nnz of work across 24 threads must beat serial at these
        // machine constants.
        assert!(t24.seconds < t1.seconds,
            "24 threads {} vs serial {}", t24.seconds, t1.seconds);
    }
}

#[test]
fn sddmm_and_mttkrp_body_counts() {
    let mut rng = Rng64::seed_from(5);
    let sim = xeon();

    let m = gen::kronecker(5, 150, &mut rng);
    let space = sim.space_for(Kernel::SDDMM, vec![32, 32], 8);
    let sched = waco::schedule::named::default_csr(&space);
    let r = sim.time_matrix(&m, &sched, &space).unwrap();
    assert_eq!(r.bodies, m.nnz() as u64);

    let t = gen::random_tensor3([12, 12, 12], 120, &mut rng);
    let space3 = sim.space_for(Kernel::MTTKRP, vec![12, 12, 12], 4);
    let sched3 = waco::schedule::named::default_csr(&space3);
    let r3 = sim.time_tensor3(&t, &sched3, &space3).unwrap();
    assert_eq!(r3.bodies, t.nnz() as u64);
}

#[test]
fn in_place_parallel_preserves_written_locality() {
    // A k-outer traversal with i parallelized *inside* must keep the
    // k-blocked reuse (the §5.2.1 sparse-block story): its miss ratio must
    // beat row-major CSR's on a cache-busting matrix.
    let mut machine = MachineConfig::xeon_like();
    machine.cache_bytes = 2 << 10; // 32 x-lines: smaller than x itself
    let sim = Simulator::new(machine);
    let mut rng = Rng64::seed_from(9);
    let m = gen::uniform_random(128, 2048, 0.02, &mut rng);
    let space = sim.space_for(Kernel::SpMV, vec![128, 2048], 0);

    let csr = waco::schedule::named::default_csr(&space);
    let (name, splits, fmt) = waco::schedule::named::best_format_candidates(&space)
        .into_iter()
        .find(|(n, _, _)| n == "SparseBlock")
        .unwrap();
    let sb = waco::schedule::named::concordant(&space, splits, fmt, 24, 32);
    assert_eq!(name, "SparseBlock");
    // Parallel var of the concordant sparse-block schedule is i (inside k1).
    let r_csr = sim.time_matrix(&m, &csr, &space).unwrap();
    let r_sb = sim.time_matrix(&m, &sb, &space).unwrap();
    assert!(
        r_sb.miss_ratio < r_csr.miss_ratio,
        "sparse-block miss {} must beat CSR {}",
        r_sb.miss_ratio,
        r_csr.miss_ratio
    );
}
