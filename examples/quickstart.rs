//! Quickstart: train a WACO tuner, tune a matrix, and run the tuned kernel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use waco::baselines::fixed::fixed_csr_matrix;
use waco::prelude::*;

fn main() {
    // A small corpus of synthetic sparsity patterns standing in for
    // SuiteSparse (uniform, banded, blocked, power-law, Kronecker, mesh).
    let train_corpus = waco::tensor::gen::corpus(10, 48, 7);
    println!("training corpus: {} matrices", train_corpus.len());

    // Train the full pipeline on the simulated 24-core Xeon: dataset
    // generation (simulator ground truth), WACONet + program embedder +
    // predictor, ranking loss.
    let sim = Simulator::new(MachineConfig::xeon_like());
    let (mut waco, curves) =
        Waco::train_2d(sim, Kernel::SpMV, &train_corpus, 0, WacoConfig::tiny())
            .expect("training succeeds");
    println!(
        "trained: final val ranking accuracy {:.2}",
        curves.val_rank_acc.last().copied().unwrap_or(0.0)
    );

    // A fresh (unseen) matrix to tune.
    let mut rng = Rng64::seed_from(99);
    let m = waco::tensor::gen::blocked(64, 64, 8, 24, 0.9, &mut rng);
    let space = waco.space_for_matrix(&m);

    let tuned = waco.tune_matrix(&m).expect("tuning succeeds");
    let fixed = fixed_csr_matrix(&waco.sim, Kernel::SpMV, &m, 0).expect("baseline runs");

    println!("\ninput: 64x64, {} nonzeros (blocked pattern)", m.nnz());
    println!("WACO chose: {}", tuned.result.sched.describe(&space));
    println!(
        "simulated kernel time: WACO {:.3e}s vs FixedCSR {:.3e}s ({:.2}x)",
        tuned.result.kernel_seconds,
        fixed.kernel_seconds,
        fixed.kernel_seconds / tuned.result.kernel_seconds
    );
    println!(
        "tuning overhead: {:.3e}s ({} candidates measured)",
        tuned.result.tuning_seconds, tuned.candidates_measured
    );

    // The tuned schedule is directly executable: prepare once (lowering +
    // format conversion), run against any dense operand — and the numbers
    // match reference CSR.
    let x = DenseVector::from_fn(64, |i| (i as f32 * 0.37).sin());
    let y = Executor::planned()
        .prepare(&m, &tuned.result.sched, &space)
        .expect("lowers")
        .run(KernelArgs::Spmv { x: &x })
        .expect("executes")
        .into_vector()
        .expect("SpMV yields a vector");
    let reference = CsrMatrix::from_coo(&m).spmv(&x);
    println!(
        "\nexecuted tuned schedule for real: max |diff| vs reference = {:.2e}",
        y.max_abs_diff(&reference)
    );
}
