//! Format/schedule exploration without any learning: drive the format
//! abstraction, the interpreter, and the simulator by hand.
//!
//! This is the "mechanism" layer the WACO "policy" sits on: every named
//! format is built for one matrix, executed for real (validated against
//! reference CSR), and timed by the machine-model simulator — a mini
//! leaderboard of classic formats.
//!
//! ```sh
//! cargo run --release --example format_explorer
//! ```

use waco::prelude::*;
use waco::schedule::named;

fn main() {
    let mut rng = Rng64::seed_from(4242);
    // A matrix with mixed structure: dense blocks on a sparse background.
    let blocks = waco::tensor::gen::blocked(256, 256, 16, 32, 0.9, &mut rng);
    let noise = waco::tensor::gen::uniform_random(256, 256, 0.002, &mut rng);
    let m =
        CooMatrix::from_triplets(256, 256, blocks.iter().chain(noise.iter())).expect("in bounds");

    let sim = Simulator::new(MachineConfig::xeon_like());
    let space = sim.space_for(Kernel::SpMM, vec![256, 256], 32);
    let b = DenseMatrix::from_fn(256, 32, |r, c| ((r + c) % 7) as f32 * 0.2 - 0.5);
    let reference = CsrMatrix::from_coo(&m).spmm(&b);

    println!(
        "matrix: 256x256, {} nnz, {:.2}% dense",
        m.nnz(),
        m.density() * 100.0
    );
    println!(
        "\n{:<14} {:<34} {:>12} {:>10} {:>8}",
        "format", "levels", "sim time", "storage", "check"
    );

    let mut rows: Vec<(String, f64)> = Vec::new();
    for (name, splits, fmt) in named::best_format_candidates(&space) {
        let sched = named::concordant(&space, splits, fmt, 48, 32);
        // Lower once; the plan owns the validated format spec, and both the
        // executor and the simulator below consume the same stored operand.
        let plan = ExecutionPlan::build(&sched, &space).expect("valid schedule");
        let stored = SparseStorage::from_matrix(&m, plan.spec()).expect("fits budget");

        // Execute for real and validate.
        let c = Executor::planned()
            .prepare_stored(plan.clone(), stored.clone())
            .expect("storage matches the plan")
            .run(KernelArgs::Spmm { b: &b })
            .expect("runs")
            .into_matrix()
            .expect("SpMM yields a matrix");
        let err = c.max_abs_diff(&reference);
        // Time on the simulated machine.
        let report = sim.time_stored(&stored, &sched, &space).expect("simulates");

        println!(
            "{:<14} {:<34} {:>10.3e}s {:>9}w {:>8}",
            name,
            plan.spec().describe(),
            report.seconds,
            stored.storage_words(),
            if err < 1e-2 { "ok" } else { "FAIL" }
        );
        rows.push((name, report.seconds));
    }

    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!(
        "\nwinner for this pattern: {} ({:.2}x over the slowest)",
        rows[0].0,
        rows.last().expect("non-empty").1 / rows[0].1
    );
    println!(
        "(WACO's job is to predict this ranking — and the schedule knobs on \
         top of it — from the sparsity pattern alone)"
    );
}
