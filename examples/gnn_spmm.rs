//! A graph-neural-network layer: the repeated-SpMM scenario of Table 8.
//!
//! A GNN layer computes `H' = σ(Â · H · W)`; the expensive part is the
//! SpMM `Â · H` over the (fixed) normalized adjacency, repeated every
//! epoch and every layer — ~10k invocations in the paper's accounting.
//! This example tunes `Â` once with WACO and runs real propagation steps
//! through the interpreter.
//!
//! ```sh
//! cargo run --release --example gnn_spmm
//! ```

use waco::baselines::{aspt::aspt_matrix, fixed::fixed_csr_matrix};
use waco::prelude::*;

const FEATURES: usize = 16;

/// One propagation: `H' = relu(Â · H)` (weights folded for brevity). The
/// adjacency kernel is prepared once and reused across layers and epochs.
fn propagate(spmm: &PlannedKernel, h: &DenseMatrix) -> DenseMatrix {
    let mut out = spmm
        .run(KernelArgs::Spmm { b: h })
        .expect("spmm runs")
        .into_matrix()
        .expect("SpMM yields a matrix");
    for v in out.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

fn main() {
    let mut rng = Rng64::seed_from(31415);
    // A community-structured graph (blocked adjacency) with self-loops,
    // symmetrically normalized: Â = D^{-1/2} (A + I) D^{-1/2}.
    let raw = waco::tensor::gen::blocked(96, 96, 8, 40, 0.35, &mut rng);
    let with_loops = CooMatrix::from_triplets(
        96,
        96,
        raw.iter()
            .map(|(r, c, _)| (r, c, 1.0))
            .chain((0..96).map(|i| (i, i, 1.0))),
    )
    .expect("in bounds");
    let deg = with_loops.row_nnz();
    let adj = CooMatrix::from_triplets(
        96,
        96,
        with_loops
            .iter()
            .map(|(r, c, v)| (r, c, v / ((deg[r] as f32).sqrt() * (deg[c] as f32).sqrt()))),
    )
    .expect("in bounds");

    // Train WACO for SpMM and tune the adjacency.
    let corpus = waco::tensor::gen::corpus(8, 48, 17);
    let sim = Simulator::new(MachineConfig::xeon_like());
    let (mut waco, _) = Waco::train_2d(sim, Kernel::SpMM, &corpus, FEATURES, WacoConfig::tiny())
        .expect("training succeeds");
    let space = waco.space_for_matrix(&adj);

    let tuned = waco.tune_matrix(&adj).expect("waco tunes");
    let fixed = fixed_csr_matrix(&waco.sim, Kernel::SpMM, &adj, FEATURES).expect("fixed runs");
    let aspt = aspt_matrix(&waco.sim, Kernel::SpMM, &adj, FEATURES).expect("aspt runs");

    println!("adjacency: 96x96, {} nonzeros", adj.nnz());
    println!("WACO schedule: {}", tuned.result.sched.describe(&space));
    println!(
        "simulated SpMM: WACO {:.3e}s | FixedCSR {:.3e}s | ASpT {:.3e}s",
        tuned.result.kernel_seconds, fixed.kernel_seconds, aspt.kernel_seconds
    );

    // Real 2-layer forward pass over random node features.
    let h0 = DenseMatrix::from_fn(96, FEATURES, |r, c| {
        ((r * 31 + c * 7) % 13) as f32 * 0.1 - 0.6
    });
    let spmm = Executor::planned()
        .prepare(&adj, &tuned.result.sched, &space)
        .expect("tuned schedule lowers");
    let h1 = propagate(&spmm, &h0);
    let h2 = propagate(&spmm, &h1);
    let act_mean: f32 = h2.as_slice().iter().sum::<f32>() / (h2.nrows() * h2.ncols()) as f32;
    println!("\n2-layer GNN forward done; mean activation {act_mean:.4}");

    // Training a GNN = thousands of epochs × layers of this SpMM.
    let epochs = 10_000usize;
    println!("\nend-to-end for {epochs} propagations (units of one FixedCSR SpMM):");
    println!(
        "  WACO  {:.0}   FixedCSR  {epochs}",
        tuned.result.end_to_end(epochs) / fixed.kernel_seconds
    );
    let crossover = (tuned.result.tuning_seconds + tuned.result.convert_seconds)
        / (fixed.kernel_seconds - tuned.result.kernel_seconds).max(1e-12);
    println!("  WACO overtakes FixedCSR after ~{crossover:.0} invocations");
}
