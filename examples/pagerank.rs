//! PageRank on a scale-free graph: the repeated-SpMV scenario of Table 8.
//!
//! PageRank runs one SpMV per iteration over the same matrix, so an
//! auto-tuner's overhead amortizes across `N_runs` invocations. This example
//! tunes the graph with WACO and the baseline tuners, runs real PageRank
//! iterations with the tuned schedule through the interpreter, and prints
//! the end-to-end accounting (`T_tuning + T_formatconvert + N · T_kernel`).
//!
//! ```sh
//! cargo run --release --example pagerank
//! ```

use waco::baselines::{
    best_format::best_format_matrix, fixed::fixed_csr_matrix, mkl::mkl_like_matrix,
};
use waco::prelude::*;

/// Power iteration: `r ← d·Aᵀr + (1−d)/n`, using the tuned SpMV. The
/// kernel is prepared once (lowering + format conversion) and run every
/// iteration — exactly the amortization Table 8 accounts for.
fn pagerank(spmv: &PlannedKernel, damping: f32, iters: usize) -> DenseVector {
    let n = spmv.plan().sparse_dims()[0];
    let mut rank = DenseVector::constant(n, 1.0 / n as f32);
    for _ in 0..iters {
        let spread = spmv
            .run(KernelArgs::Spmv { x: &rank })
            .expect("spmv runs")
            .into_vector()
            .expect("SpMV yields a vector");
        for i in 0..n {
            rank[i] = damping * spread[i] + (1.0 - damping) / n as f32;
        }
    }
    rank
}

fn main() {
    let mut rng = Rng64::seed_from(2718);
    // A scale-free web-graph-like pattern, column-normalized and transposed
    // so PageRank is a plain SpMV.
    let graph = waco::tensor::gen::kronecker(7, 1024, &mut rng); // 128 nodes
    let col_counts = graph.col_nnz();
    let a_t = CooMatrix::from_triplets(
        graph.ncols(),
        graph.nrows(),
        graph
            .iter()
            .map(|(r, c, _)| (c, r, 1.0 / col_counts[c].max(1) as f32)),
    )
    .expect("transpose in bounds");

    // Train WACO on generic patterns, then tune this graph.
    let corpus = waco::tensor::gen::corpus(8, 48, 5);
    let sim = Simulator::new(MachineConfig::xeon_like());
    let (mut waco, _) = Waco::train_2d(sim, Kernel::SpMV, &corpus, 0, WacoConfig::tiny())
        .expect("training succeeds");
    let space = waco.space_for_matrix(&a_t);

    let tuned = waco.tune_matrix(&a_t).expect("waco tunes");
    let mkl = mkl_like_matrix(&waco.sim, Kernel::SpMV, &a_t, 0).expect("mkl runs");
    let bf = best_format_matrix(&waco.sim, Kernel::SpMV, &a_t, 0).expect("bestformat runs");
    let naive = fixed_csr_matrix(&waco.sim, Kernel::SpMV, &a_t, 0).expect("naive runs");

    println!("graph: {} nodes, {} edges", a_t.nrows(), a_t.nnz());
    println!("WACO schedule: {}", tuned.result.sched.describe(&space));

    // Real PageRank with the tuned schedule: prepare once, run 20 times.
    let spmv = Executor::planned()
        .prepare(&a_t, &tuned.result.sched, &space)
        .expect("tuned schedule lowers");
    let ranks = pagerank(&spmv, 0.85, 20);
    let mut top: Vec<(usize, f32)> = (0..ranks.len()).map(|i| (i, ranks[i])).collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-5 pages: {:?}", &top[..5.min(top.len())]);
    let total: f32 = ranks.as_slice().iter().sum();
    println!("rank mass: {total:.4} (≈1.0)");

    // Table 8-style amortization: who wins at which N_runs?
    println!("\nend-to-end time in units of one naive SpMV invocation:");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "N_runs", "WACO", "BestFormat", "MKL"
    );
    for n_runs in [0usize, 50, 1_000, 10_000, 500_000] {
        let unit = naive.kernel_seconds;
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>12.1}",
            n_runs,
            tuned.result.end_to_end(n_runs) / unit,
            bf.end_to_end(n_runs) / unit,
            mkl.end_to_end(n_runs) / unit,
        );
    }
    println!(
        "\nper-invocation speedup over naive: WACO {:.2}x, BestFormat {:.2}x, MKL {:.2}x",
        naive.kernel_seconds / tuned.result.kernel_seconds,
        naive.kernel_seconds / bf.kernel_seconds,
        naive.kernel_seconds / mkl.kernel_seconds,
    );
}
