#!/usr/bin/env bash
# Micro-benchmark regression gate: compares the ratios a fresh
# `cargo bench -p waco-bench` run (results/microbench.json) against the
# committed baseline (results/microbench_baseline.json).
#
# Raw nanoseconds are machine-dependent, so the gate tracks *ratios*
# between benches from the same run — plan-vs-interpreter speedup, serve
# warm-vs-cold amortization, plan-cache fetch-vs-lower, the parallel work
# gate's serial parity, and the disabled-observability tax. A tracked
# ratio may drift by CHECK_BENCH_TOL (default 1.6x, CI noise included)
# from the baseline before the gate fails.
#
#   cargo bench -p waco-bench -- --smoke   # writes results/microbench.json
#   scripts/check_bench.sh [current.json] [baseline.json]
set -euo pipefail

cd "$(dirname "$0")/.."

CURRENT="${1:-results/microbench.json}"
BASELINE="${2:-results/microbench_baseline.json}"

if ! command -v python3 >/dev/null 2>&1; then
    echo "check_bench: python3 not available, skipping ratio gate" >&2
    exit 0
fi
test -s "$CURRENT" || { echo "check_bench: missing $CURRENT" >&2; exit 1; }
test -s "$BASELINE" || { echo "check_bench: missing $BASELINE" >&2; exit 1; }

python3 - "$CURRENT" "$BASELINE" <<'EOF'
import json
import os
import sys

def medians(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: float(b["median_ns"]) for b in doc["benchmarks"]}

cur = medians(sys.argv[1])
base = medians(sys.argv[2])
tol = float(os.environ.get("CHECK_BENCH_TOL", "1.6"))

# (label, numerator, denominator, higher_is_better)
TRACKED = [
    ("plan_vs_interp_spmv",
     "plan_lowering/spmv_10k_interp_8t", "plan_lowering/spmv_10k_plan_8t", True),
    ("plan_vs_interp_spmm",
     "plan_lowering/spmm_10k_interp_8t", "plan_lowering/spmm_10k_plan_8t", True),
    ("serve_warm_vs_cold",
     "serve_cache/cold_tune_spmv_64", "serve_cache/warm_request_spmv_64", True),
    ("plan_cache_fetch_vs_lower",
     "plan_lowering/build_spmv_csr", "plan_lowering/plan_cache_warm", True),
    # The executor's work gate: an 8-thread schedule over sub-cutoff work
    # must run at serial parity (ratio ~1.0, lower is better).
    ("work_gate_parity",
     "plan_lowering/spmv_10k_plan_8t", "plan_lowering/spmv_10k_plan_serial", False),
    # Observability when disabled: hook cost as a share of one SpMV.
    ("obs_disabled_tax",
     "obs_overhead/disabled_hooks", "obs_overhead/spmv_512_disabled", False),
    # The specialized kernel tier: each fast path vs the interpreter on
    # the same schedule. These ratios must not shrink past tolerance.
    ("fastpath_bcsr_vs_interp",
     "plan_lowering/fastpath_bcsr_interp", "plan_lowering/fastpath_bcsr", True),
    ("fastpath_regblock_vs_interp",
     "plan_lowering/spmm_regblock_interp", "plan_lowering/spmm_regblock", True),
    ("fastpath_discordant_vs_interp",
     "plan_lowering/spmv_discordant_interp", "plan_lowering/spmv_discordant", True),
    # The workspace subsystem: fusion vs the unfused two-kernel composition
    # and Gustavson SpGEMM vs the naive two-pass compaction.
    ("workspace_fusion_vs_unfused",
     "workspace/unfused_sddmm_then_spmm", "workspace/fused_sddmm_spmm", True),
    ("workspace_gustavson_vs_two_pass",
     "workspace/spgemm_two_pass", "workspace/spgemm_gustavson", True),
    # The two-stage search: cost-model evaluations the full unpruned search
    # performs per evaluation the staged (asymptotic-pruned) search performs.
    # These are raw counters, not timings, so the ratio is machine-stable.
    ("pruned_vs_full_evals",
     "search_pipeline/evals_full", "search_pipeline/evals_pruned", True),
]

failures = []
for label, num, den, higher_better in TRACKED:
    missing = [n for n in (num, den) if n not in cur or n not in base]
    if missing:
        failures.append(f"{label}: benches missing from a results file: {missing}")
        continue
    now = cur[num] / cur[den]
    ref = base[num] / base[den]
    if higher_better:
        ok = now >= ref / tol
        drift = ref / now if now > 0 else float("inf")
    else:
        ok = now <= ref * tol
        drift = now / ref if ref > 0 else float("inf")
    verdict = "ok" if ok else "REGRESSED"
    print(f"  {label:28s} baseline {ref:10.3f}  current {now:10.3f}  {verdict}")
    if not ok:
        failures.append(
            f"{label}: {now:.3f} vs baseline {ref:.3f} "
            f"(drift {drift:.2f}x > tolerance {tol}x)")

# Absolute floor for the discordant fast path: the tentpole claim is that
# the transpose-permutation stream closes the discordant-traversal gap, so
# the current run must beat the interpreter by at least 4x regardless of
# what the baseline recorded.
DISC_FAST = "plan_lowering/spmv_discordant"
DISC_INTERP = "plan_lowering/spmv_discordant_interp"
if DISC_FAST in cur and DISC_INTERP in cur:
    speedup = cur[DISC_INTERP] / cur[DISC_FAST]
    verdict = "ok" if speedup >= 4.0 else "BELOW FLOOR"
    print(f"  {'discordant_abs_floor':28s} required  {4.0:10.3f}  current {speedup:10.3f}  {verdict}")
    if speedup < 4.0:
        failures.append(
            f"discordant_abs_floor: fast path is only {speedup:.2f}x the "
            f"interpreter (the gate requires 4x)")
else:
    failures.append(
        f"discordant_abs_floor: benches missing from {sys.argv[1]}: "
        f"{[n for n in (DISC_FAST, DISC_INTERP) if n not in cur]}")

# Absolute floor for the fused workspace kernel: fusing the SDDMM and the
# SpMM deletes the intermediate's materialization and second sweep, so the
# current run must beat the unfused composition by at least 1.3x regardless
# of what the baseline recorded.
FUSED = "workspace/fused_sddmm_spmm"
UNFUSED = "workspace/unfused_sddmm_then_spmm"
if FUSED in cur and UNFUSED in cur:
    speedup = cur[UNFUSED] / cur[FUSED]
    verdict = "ok" if speedup >= 1.3 else "BELOW FLOOR"
    print(f"  {'fusion_abs_floor':28s} required  {1.3:10.3f}  current {speedup:10.3f}  {verdict}")
    if speedup < 1.3:
        failures.append(
            f"fusion_abs_floor: the fused SDDMM+SpMM kernel is only "
            f"{speedup:.2f}x the unfused composition (the gate requires 1.3x)")
else:
    failures.append(
        f"fusion_abs_floor: benches missing from {sys.argv[1]}: "
        f"{[n for n in (FUSED, UNFUSED) if n not in cur]}")

# Absolute floor for the two-stage search: Stage 1's asymptotic pruning
# plus Stage 2's masked evaluation budget must cut cost-model evaluations
# by at least 2x regardless of what the baseline recorded (the same bound
# the `search_pruning` verify suite enforces corpus-wide).
EVALS_FULL = "search_pipeline/evals_full"
EVALS_PRUNED = "search_pipeline/evals_pruned"
if EVALS_FULL in cur and EVALS_PRUNED in cur:
    ratio = cur[EVALS_FULL] / max(cur[EVALS_PRUNED], 1.0)
    verdict = "ok" if ratio >= 2.0 else "BELOW FLOOR"
    print(f"  {'pruned_evals_abs_floor':28s} required  {2.0:10.3f}  current {ratio:10.3f}  {verdict}")
    if ratio < 2.0:
        failures.append(
            f"pruned_evals_abs_floor: the staged search only cut cost-model "
            f"evaluations {ratio:.2f}x (the gate requires 2x)")
else:
    failures.append(
        f"pruned_evals_abs_floor: benches missing from {sys.argv[1]}: "
        f"{[n for n in (EVALS_FULL, EVALS_PRUNED) if n not in cur]}")

if failures:
    print("check_bench: FAILED", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"check_bench: all tracked ratios within {tol}x of baseline")
EOF
