#!/usr/bin/env bash
# Regenerates every paper table/figure and captures the outputs under
# results/. Pass --quick for the smoke-test scale.
set -u
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p waco-bench --bins || exit 1
EXTRA="${1:-}"
STATUS=0
for exp in table1 table2 table3 table4 table5 table6 table7 table8 \
           fig13 fig14 fig15 fig16a fig16b fig17 ablation; do
  echo "=== $exp ==="
  if ./target/release/$exp $EXTRA > "results/$exp.txt" 2>&1; then
    echo "    ok → results/$exp.txt"
  else
    echo "    FAILED (see results/$exp.txt)"
    STATUS=1
  fi
done
exit $STATUS
