#!/usr/bin/env bash
# End-to-end smoke test for CI: exercises the CLI pipeline (gen → inspect →
# bench → train → tune) and two experiment binaries (Table 1, Figure 13) at
# `--smoke` scale. Everything runs offline against pre-built release
# binaries; total runtime is a few minutes on one core.
#
#   cargo build --release --offline   # once
#   scripts/ci_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run() {
    echo
    echo "--- $* ---"
    "$@"
}

# Build once so each step below is pure execution time.
run "$CARGO" build --release --offline -p waco-cli -p waco-bench

CLI=target/release/waco-cli

# 1. The CLI pipeline on a generated Kronecker matrix.
run "$CLI" gen --family kronecker --size 256 --seed 7 --out "$TMP/g.mtx"
run "$CLI" inspect "$TMP/g.mtx"
run "$CLI" bench --kernel spmm "$TMP/g.mtx"
run "$CLI" train --kernel spmm --matrices 4 --size 32 --epochs 2 \
    --out "$TMP/model.ckpt"
mkdir -p results
run "$CLI" tune --kernel spmm --model "$TMP/model.ckpt" \
    --matrices 4 --size 32 --epochs 2 \
    --trace results/trace-smoke.json "$TMP/g.mtx"

# The structured trace must exist, parse as JSON, and carry the
# feature-extraction vs ANNS breakdown that fig16b consumes.
TRACE=results/trace-smoke.json
test -s "$TRACE"
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$TRACE" >/dev/null
fi
for needle in '"trace": "waco-obs"' feature_extraction anns_traversal tune/measure; do
    grep -qF "$needle" "$TRACE" || {
        echo "trace is missing $needle" >&2
        exit 1
    }
done
echo "trace OK: $TRACE"

# 2. Two experiment binaries at smoke scale (co-optimization table and the
#    headline baseline-comparison figure).
run target/release/table1 --smoke
run target/release/fig13 --smoke

echo
echo "smoke test passed"
