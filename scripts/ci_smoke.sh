#!/usr/bin/env bash
# End-to-end smoke test for CI: exercises the CLI pipeline (gen → inspect →
# bench → train → tune) and two experiment binaries (Table 1, Figure 13) at
# `--smoke` scale. Everything runs offline against pre-built release
# binaries; total runtime is a few minutes on one core.
#
#   cargo build --release --offline   # once
#   scripts/ci_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run() {
    echo
    echo "--- $* ---"
    "$@"
}

# Build once so each step below is pure execution time.
run "$CARGO" build --release --offline -p waco-cli -p waco-bench

CLI=target/release/waco-cli

# 1. The CLI pipeline on a generated Kronecker matrix.
run "$CLI" gen --family kronecker --size 256 --seed 7 --out "$TMP/g.mtx"
run "$CLI" inspect "$TMP/g.mtx"
run "$CLI" bench --kernel spmm "$TMP/g.mtx"
run "$CLI" train --kernel spmm --matrices 4 --size 32 --epochs 2 \
    --out "$TMP/model.ckpt"
mkdir -p results
run "$CLI" tune --kernel spmm --model "$TMP/model.ckpt" \
    --matrices 4 --size 32 --epochs 2 \
    --trace results/trace-smoke.json "$TMP/g.mtx"

# The structured trace must exist, parse as JSON, and carry the
# feature-extraction vs ANNS breakdown that fig16b consumes.
TRACE=results/trace-smoke.json
test -s "$TRACE"
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$TRACE" >/dev/null
fi
for needle in '"trace": "waco-obs"' feature_extraction anns_traversal tune/measure; do
    grep -qF "$needle" "$TRACE" || {
        echo "trace is missing $needle" >&2
        exit 1
    }
done
echo "trace OK: $TRACE"

# 2. The serving layer: start the auto-tuning server on an ephemeral
#    loopback port, tune the same matrix twice (second answer must come
#    from the cache), then restart from the journal and confirm the
#    decision survived — all without re-tuning.
SERVE_CACHE="$TMP/serve-cache"
SERVE_TRACE=results/trace-serve.json
SERVE_OUT="$TMP/serve.out"
SERVE_PID=

start_server() {
    "$CLI" serve --addr 127.0.0.1:0 --cache "$SERVE_CACHE" \
        --trace "$SERVE_TRACE" >"$SERVE_OUT" 2>"$TMP/serve.err" &
    SERVE_PID=$!
    ADDR=
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's/^listening on //p' "$SERVE_OUT")"
        [ -n "$ADDR" ] && break
        kill -0 "$SERVE_PID" 2>/dev/null || {
            echo "server died on startup:" >&2
            cat "$TMP/serve.err" >&2
            exit 1
        }
        sleep 0.1
    done
    [ -n "$ADDR" ] || { echo "server never reported its address" >&2; exit 1; }
    echo "server up at $ADDR (pid $SERVE_PID)"
}

stop_server() {
    run "$CLI" query --addr "$ADDR" --op shutdown
    wait "$SERVE_PID"
}

echo
echo "--- serve: cold tune, then cache hit ---"
start_server
run "$CLI" query --addr "$ADDR" --kernel spmv "$TMP/g.mtx" | tee "$TMP/q1.out"
grep -q "^computed SpMV decision" "$TMP/q1.out"
run "$CLI" query --addr "$ADDR" --kernel spmv "$TMP/g.mtx" | tee "$TMP/q2.out"
grep -q "^cached SpMV decision" "$TMP/q2.out"
run "$CLI" query --addr "$ADDR" --op stats | tee "$TMP/stats1.out"
grep -q '"hits":1' "$TMP/stats1.out"
stop_server

echo
echo "--- serve: restart answers lookup from the journal ---"
start_server
run "$CLI" query --addr "$ADDR" --op lookup --kernel spmv "$TMP/g.mtx" \
    | tee "$TMP/q3.out"
grep -q "^cached SpMV decision" "$TMP/q3.out"
run "$CLI" query --addr "$ADDR" --op stats | tee "$TMP/stats2.out"
grep -q '"replayed":1' "$TMP/stats2.out"
stop_server

# The server's own structured trace is a CI artifact: it must exist, parse,
# and carry the request/cache instrumentation.
test -s "$SERVE_TRACE"
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$SERVE_TRACE" >/dev/null
fi
for needle in serve.requests serve.cache.hits serve.request_seconds; do
    grep -qF "$needle" "$SERVE_TRACE" || {
        echo "server trace is missing $needle" >&2
        exit 1
    }
done
echo "server trace OK: $SERVE_TRACE"

# 3. The lowering layer: dump a plan as text and JSON, and make sure the
#    default CSR schedules still lower to the specialized kernel tier (a
#    dense-8 SpMM is claimed by the register-tiled variant).
run "$CLI" plan --kernel spmv "$TMP/g.mtx" | tee "$TMP/plan.out"
grep -q "ExecutionPlan SpMV" "$TMP/plan.out"
run "$CLI" plan --kernel spmm --dense 8 --format json "$TMP/g.mtx"
# Capture the JSON alone (run's header lines would corrupt the document).
"$CLI" plan --kernel spmm --dense 8 --format json "$TMP/g.mtx" >"$TMP/plan.json"
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$TMP/plan.json" >/dev/null
fi
grep -qF '"fast_path":"reg_block_spmm"' "$TMP/plan.json" || {
    echo "default CSR SpMM schedule no longer lowers to the register-tiled fast path" >&2
    exit 1
}
grep -qF '"fast_path_reason":' "$TMP/plan.json" || {
    echo "plan JSON no longer reports the fast-path reason" >&2
    exit 1
}
echo "plan dump OK"

# 4. The correctness harness: differential + plan-equivalence + metamorphic
#    suites against the dense oracles plus serve-layer fault injection. The
#    differential fuzzer runs through plan execution; plan_equivalence holds
#    the plan walker and the reference interpreter to bit identity. The seed
#    is pinned so a red run is replayable verbatim; WACO_VERIFY_BUDGET=nightly
#    scales the same sweep up for scheduled runs.
VERIFY_REPORT=results/verify_report.json
run "$CLI" verify --seed 42 --budget "${WACO_VERIFY_BUDGET:-smoke}" \
    --out "$VERIFY_REPORT"
test -s "$VERIFY_REPORT"
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$VERIFY_REPORT" >/dev/null
fi
grep -qF '"passed":true' "$VERIFY_REPORT" || {
    echo "verify report does not say passed" >&2
    exit 1
}
grep -qF '"name":"plan_equivalence"' "$VERIFY_REPORT" || {
    echo "verify report is missing the plan_equivalence suite" >&2
    exit 1
}
grep -qF '"name":"spgemm_oracle"' "$VERIFY_REPORT" || {
    echo "verify report is missing the spgemm_oracle suite" >&2
    exit 1
}
grep -qF '"name":"fusion_equivalence"' "$VERIFY_REPORT" || {
    echo "verify report is missing the fusion_equivalence suite" >&2
    exit 1
}
grep -qF '"name":"distributed"' "$VERIFY_REPORT" || {
    echo "verify report is missing the distributed drill suite" >&2
    exit 1
}
grep -qF '"name":"search_pruning"' "$VERIFY_REPORT" || {
    echo "verify report is missing the search_pruning suite" >&2
    exit 1
}
echo "verify report OK: $VERIFY_REPORT"

# 5. The load generator against a fresh server: the coalesce probe must
#    collapse concurrent same-fingerprint tunes into one tuner call, the
#    open-loop main run must complete without errors, and client-measured
#    p99 must stay under the ceiling (LOADGEN_P99_MS, default 500).
echo
echo "--- serve: loadgen smoke (coalescing + latency) ---"
SERVE_CACHE="$TMP/loadgen-cache"
SERVE_TRACE="$TMP/trace-loadgen.json"
start_server
run "$CLI" loadgen --addr "$ADDR" --smoke --out results/loadgen.json
stop_server
test -s results/loadgen.json
if command -v python3 >/dev/null 2>&1; then
    python3 - results/loadgen.json <<'EOF'
import json, os, sys
r = json.load(open(sys.argv[1]))
probe = r["coalesce_probe"]
lat = r["latency"]
assert probe["coalesced"] >= 1, f"no coalescing observed: {probe}"
assert probe["identical_responses"], "coalesced responses diverged"
assert lat["count"] > 0 and lat["errors"] == 0, lat
ceiling = float(os.environ.get("LOADGEN_P99_MS", "500"))
assert lat["p99_ms"] <= ceiling, \
    f"p99 {lat['p99_ms']:.2f}ms over the {ceiling}ms ceiling"
print(f"loadgen OK: coalesced={probe['coalesced']} "
      f"p50={lat['p50_ms']:.2f}ms p99={lat['p99_ms']:.2f}ms")
EOF
else
    grep -q '"coalesced":' results/loadgen.json
    echo "loadgen OK (python3 unavailable, JSON gates skipped)"
fi

# 6. The distributed tier: a fingerprint-sharded router over two shard
#    processes. Load runs through the router; one shard is SIGKILLed
#    mid-run. Degraded, never wrong: the client must see zero error frames
#    and the router must account at least one failover in its stats.
echo
echo "--- route: 2 shards, kill one mid-run ---"
start_shard() {
    # $1: slot name (cache dir + log suffix). Echoes nothing; sets
    # SHARD_ADDR / SHARD_PID.
    "$CLI" serve --addr 127.0.0.1:0 --cache "$TMP/shard-$1-cache" \
        >"$TMP/shard-$1.out" 2>"$TMP/shard-$1.err" &
    SHARD_PID=$!
    SHARD_ADDR=
    for _ in $(seq 1 100); do
        SHARD_ADDR="$(sed -n 's/^listening on //p' "$TMP/shard-$1.out")"
        [ -n "$SHARD_ADDR" ] && break
        kill -0 "$SHARD_PID" 2>/dev/null || {
            echo "shard $1 died on startup:" >&2
            cat "$TMP/shard-$1.err" >&2
            exit 1
        }
        sleep 0.1
    done
    [ -n "$SHARD_ADDR" ] || { echo "shard $1 never reported its address" >&2; exit 1; }
    echo "shard $1 up at $SHARD_ADDR (pid $SHARD_PID)"
}

start_shard a; SHARD_A_ADDR=$SHARD_ADDR; SHARD_A_PID=$SHARD_PID
start_shard b; SHARD_B_ADDR=$SHARD_ADDR; SHARD_B_PID=$SHARD_PID
"$CLI" route --addr 127.0.0.1:0 --shards "$SHARD_A_ADDR,$SHARD_B_ADDR" \
    >"$TMP/router.out" 2>"$TMP/router.err" &
ROUTER_PID=$!
ROUTER_ADDR=
for _ in $(seq 1 100); do
    ROUTER_ADDR="$(sed -n 's/^listening on //p' "$TMP/router.out")"
    [ -n "$ROUTER_ADDR" ] && break
    kill -0 "$ROUTER_PID" 2>/dev/null || {
        echo "router died on startup:" >&2
        cat "$TMP/router.err" >&2
        exit 1
    }
    sleep 0.1
done
[ -n "$ROUTER_ADDR" ] || { echo "router never reported its address" >&2; exit 1; }
echo "router up at $ROUTER_ADDR (pid $ROUTER_PID)"

# Open-loop load through the router; long enough that the kill below lands
# mid-run with traffic still arriving on the dead shard's keys.
"$CLI" loadgen --addr "$ROUTER_ADDR" --smoke --duration 4 --fingerprints 12 \
    --shards 2 --out results/loadgen_routed.json \
    >"$TMP/loadgen-routed.out" 2>&1 &
LOADGEN_PID=$!
sleep 1.5
echo "killing shard b (pid $SHARD_B_PID) mid-run"
kill -9 "$SHARD_B_PID"
wait "$SHARD_B_PID" 2>/dev/null || true
wait "$LOADGEN_PID" || {
    echo "routed loadgen failed:" >&2
    cat "$TMP/loadgen-routed.out" >&2
    exit 1
}
cat "$TMP/loadgen-routed.out"
run "$CLI" query --addr "$ROUTER_ADDR" --op stats | tee "$TMP/router-stats.out"
grep -q '"failover":' "$TMP/router-stats.out"
if command -v python3 >/dev/null 2>&1; then
    python3 - results/loadgen_routed.json <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
lat = r["latency"]
assert lat["count"] > 0 and lat["errors"] == 0, \
    f"routed run saw error frames: {lat}"
router = r["router"]
assert router["failover"] >= 1, f"no failover recorded: {router}"
assert router["shard_down"] >= 1, f"dead shard not recorded: {router}"
print(f"routed loadgen OK: {lat['count']} responses, 0 errors, "
      f"failover={router['failover']} shard_down={router['shard_down']}")
EOF
else
    grep -q '"errors":0' results/loadgen_routed.json
    echo "routed loadgen OK (python3 unavailable, failover gate skipped)"
fi
run "$CLI" query --addr "$ROUTER_ADDR" --op shutdown
wait "$ROUTER_PID"
run "$CLI" query --addr "$SHARD_A_ADDR" --op shutdown
wait "$SHARD_A_PID"

# 7. Two experiment binaries at smoke scale (co-optimization table and the
#    headline baseline-comparison figure).
run target/release/table1 --smoke
run target/release/fig13 --smoke

echo
echo "smoke test passed"
