//! Property tests of the SuperSchedule encoding across all kernels and
//! space shapes: the program embedder's input contract.

use waco_check::props;
use waco_schedule::encode::{self, Segment};
use waco_schedule::{Kernel, ScheduleSampler, Space};
use waco_tensor::gen::Rng64;

fn space_for(kernel: Kernel, a: usize, b: usize, dense: usize) -> Space {
    let dims = match kernel {
        Kernel::MTTKRP => vec![a, b, a.max(b)],
        _ => vec![a, b],
    };
    Space::new(kernel, dims, dense)
}

fn kernel_of(idx: usize) -> Kernel {
    Kernel::ALL[idx % Kernel::ALL.len()]
}

props! {
    /// Every categorical index is within its segment's cardinality and every
    /// permutation is a bijection, for any sampled schedule of any kernel.
    cases = 64,
    fn structured_encoding_respects_layout(kidx in 0usize..4, a in 4usize..256,
                                           b in 4usize..256, dense in 1usize..64,
                                           seed in 0u64..1_000_000, idx in 0usize..24) {
        let kernel = kernel_of(kidx);
        let space = space_for(kernel, a, b, dense);
        let layout = encode::layout(&space);
        // Draw from the shared sampler stream so the encoding properties
        // cover the same corners + random tail as exec and waco-verify.
        let s = ScheduleSampler::new(&space, seed).nth(idx).unwrap();
        let enc = encode::encode_structured(&s, &space);

        let mut cat = enc.categorical.iter();
        let mut perms = enc.permutations.iter();
        for seg in &layout.segments {
            match seg {
                Segment::Categorical { cardinality, name } => {
                    let idx = *cat.next().expect("index per categorical segment");
                    assert!(idx < *cardinality, "{name}: {idx} >= {cardinality}");
                }
                Segment::Permutation { n, name } => {
                    let p = perms.next().expect("mapping per permutation segment");
                    assert_eq!(p.len(), *n, "{name}");
                    let mut seen = vec![false; *n];
                    for &x in p {
                        assert!(!seen[x], "{name}: duplicate {x}");
                        seen[x] = true;
                    }
                }
            }
        }
        assert!(cat.next().is_none(), "extra categorical values");
        assert!(perms.next().is_none(), "extra permutations");
    }

    /// The flat encoding always has the layout's advertised length and is a
    /// 0/1 vector whose categorical blocks are exactly one-hot.
    cases = 64,
    fn flat_encoding_is_valid_one_hot(kidx in 0usize..4, a in 4usize..128,
                                      seed in 0u64..1_000_000, idx in 0usize..24) {
        let kernel = kernel_of(kidx);
        let space = space_for(kernel, a, a + 3, 8);
        let layout = encode::layout(&space);
        let s = ScheduleSampler::new(&space, seed).nth(idx).unwrap();
        let flat = encode::encode(&s, &space);
        assert_eq!(flat.len(), layout.total_len());
        assert!(flat.iter().all(|&v| v == 0.0 || v == 1.0));
        let mut off = 0usize;
        for seg in &layout.segments {
            match seg {
                Segment::Categorical { cardinality, name } => {
                    let ones = flat[off..off + cardinality]
                        .iter()
                        .filter(|&&v| v == 1.0)
                        .count();
                    assert_eq!(ones, 1, "{name} not one-hot");
                    off += cardinality;
                }
                Segment::Permutation { n, .. } => {
                    let ones = flat[off..off + n * n]
                        .iter()
                        .filter(|&&v| v == 1.0)
                        .count();
                    assert_eq!(ones, *n, "permutation matrix weight");
                    off += n * n;
                }
            }
        }
    }

    /// Mutation chains always stay valid and encodable.
    cases = 64,
    fn mutation_chains_stay_encodable(kidx in 0usize..4, seed in 0u64..1_000_000,
                                      steps in 1usize..30, idx in 0usize..12) {
        let kernel = kernel_of(kidx);
        let space = space_for(kernel, 64, 64, 16);
        let mut rng = Rng64::seed_from(seed);
        let mut s = ScheduleSampler::new(&space, seed).nth(idx).unwrap();
        for _ in 0..steps {
            s = s.mutate(&space, &mut rng);
        }
        assert!(s.validate(&space).is_ok());
        let flat = encode::encode(&s, &space);
        assert_eq!(flat.len(), encode::layout(&space).total_len());
    }
}
