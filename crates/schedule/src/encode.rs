//! Neural-network encoding of SuperSchedules (the program embedder's input).
//!
//! Following §4.1.2 of the paper, each **categorical** parameter (split
//! sizes, parallelized variable, thread count, chunk size, level formats)
//! becomes an index into a learnable lookup table, and each **permutation**
//! parameter (loop order, level order) becomes a permutation matrix fed
//! through linear-ReLU layers. [`layout`] describes the segments for a given
//! [`Space`]; [`encode_structured`] produces indices + matrices;
//! [`encode`] flattens everything to one `Vec<f32>` (one-hot categoricals)
//! for distance computations and tests.

use crate::{Space, SuperSchedule};
use waco_format::LevelFormat;

/// One input segment of the program embedder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// A categorical parameter with the given number of choices.
    Categorical {
        /// Parameter name (diagnostics).
        name: String,
        /// Number of categories.
        cardinality: usize,
    },
    /// A permutation of `n` items, presented as an `n × n` matrix.
    Permutation {
        /// Parameter name (diagnostics).
        name: String,
        /// Number of permuted items.
        n: usize,
    },
}

/// The encoding layout of a space: segment descriptions in a fixed order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// The segments, in encoding order.
    pub segments: Vec<Segment>,
}

impl Layout {
    /// Total flattened length (one-hots + permutation matrices).
    pub fn total_len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Categorical { cardinality, .. } => *cardinality,
                Segment::Permutation { n, .. } => n * n,
            })
            .sum()
    }

    /// Number of categorical segments.
    pub fn num_categorical(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Categorical { .. }))
            .count()
    }

    /// Number of permutation segments.
    pub fn num_permutations(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Permutation { .. }))
            .count()
    }
}

/// The structured encoding: categorical indices and permutation matrices, in
/// layout order.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoded {
    /// One index per categorical segment.
    pub categorical: Vec<usize>,
    /// One `position → item` mapping per permutation segment.
    pub permutations: Vec<Vec<usize>>,
}

/// Builds the encoding layout for a space.
///
/// Segment order: split (per splittable dim) · parallel var (+1 "serial"
/// category) · threads · chunk · level formats (per axis) · loop-order
/// permutation · level-order permutation.
pub fn layout(space: &Space) -> Layout {
    let kernel = space.kernel;
    let mut segments = Vec::new();
    for d in 0..kernel.ndims() {
        if kernel.is_splittable(d) {
            segments.push(Segment::Categorical {
                name: format!("split_{}", kernel.dim_names()[d]),
                cardinality: space.max_split_log2 as usize + 1,
            });
        }
    }
    segments.push(Segment::Categorical {
        name: "parallel_var".into(),
        cardinality: space.parallelizable_vars().len() + 1, // + serial
    });
    segments.push(Segment::Categorical {
        name: "threads".into(),
        cardinality: space.thread_options.len(),
    });
    segments.push(Segment::Categorical {
        name: "chunk".into(),
        cardinality: space.max_chunk_log2 as usize + 1,
    });
    for (l, axis) in space.a_axes().iter().enumerate() {
        segments.push(Segment::Categorical {
            name: format!("format_l{l}_{axis}"),
            cardinality: 2,
        });
    }
    segments.push(Segment::Permutation {
        name: "loop_order".into(),
        n: space.loop_vars().len(),
    });
    segments.push(Segment::Permutation {
        name: "level_order".into(),
        n: space.a_axes().len(),
    });
    Layout { segments }
}

fn log2_index(x: usize) -> usize {
    (usize::BITS - 1 - x.max(1).leading_zeros()) as usize
}

/// Encodes a schedule into categorical indices + permutations.
///
/// # Panics
///
/// Panics if the schedule does not belong to the space (call
/// [`SuperSchedule::validate`] first).
pub fn encode_structured(s: &SuperSchedule, space: &Space) -> Encoded {
    let kernel = space.kernel;
    let mut categorical = Vec::new();
    for d in 0..kernel.ndims() {
        if kernel.is_splittable(d) {
            categorical.push(log2_index(s.splits[d]).min(space.max_split_log2 as usize));
        }
    }
    let par_vars = space.parallelizable_vars();
    match &s.parallel {
        None => {
            categorical.push(0); // serial
            categorical.push(0);
            categorical.push(0);
        }
        Some(p) => {
            let var_idx = par_vars
                .iter()
                .position(|v| *v == p.var)
                .expect("parallel var must be parallelizable");
            categorical.push(var_idx + 1);
            let t_idx = space
                .thread_options
                .iter()
                .position(|&t| t == p.threads)
                .unwrap_or(0);
            categorical.push(t_idx);
            categorical.push(log2_index(p.chunk).min(space.max_chunk_log2 as usize));
        }
    }
    for fmt in &s.format.formats {
        categorical.push(match fmt {
            LevelFormat::Uncompressed => 0,
            LevelFormat::Compressed => 1,
        });
    }

    let canon_vars = space.loop_vars();
    let loop_perm: Vec<usize> = s
        .loop_order
        .iter()
        .map(|v| {
            canon_vars
                .iter()
                .position(|c| c == v)
                .expect("var in space")
        })
        .collect();
    let canon_axes = space.a_axes();
    let level_perm: Vec<usize> = s
        .format
        .order
        .iter()
        .map(|a| {
            canon_axes
                .iter()
                .position(|c| c == a)
                .expect("axis in space")
        })
        .collect();

    Encoded {
        categorical,
        permutations: vec![loop_perm, level_perm],
    }
}

/// Flattens a schedule into a single `f32` vector (one-hot categoricals +
/// flattened permutation matrices), matching [`Layout::total_len`].
pub fn encode(s: &SuperSchedule, space: &Space) -> Vec<f32> {
    let lay = layout(space);
    let enc = encode_structured(s, space);
    let mut out = Vec::with_capacity(lay.total_len());
    let mut cat_iter = enc.categorical.iter();
    let mut perm_iter = enc.permutations.iter();
    for seg in &lay.segments {
        match seg {
            Segment::Categorical { cardinality, .. } => {
                let idx = *cat_iter.next().expect("categorical count matches layout");
                debug_assert!(
                    idx < *cardinality,
                    "index {idx} < cardinality {cardinality}"
                );
                for i in 0..*cardinality {
                    out.push(if i == idx { 1.0 } else { 0.0 });
                }
            }
            Segment::Permutation { n, .. } => {
                let perm = perm_iter.next().expect("permutation count matches layout");
                debug_assert_eq!(perm.len(), *n);
                let mut matrix = vec![0.0f32; n * n];
                for (pos, &item) in perm.iter().enumerate() {
                    matrix[pos * n + item] = 1.0;
                }
                out.extend(matrix);
            }
        }
    }
    debug_assert_eq!(out.len(), lay.total_len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{named, Kernel};
    use waco_tensor::gen::Rng64;

    fn space() -> Space {
        Space::new(Kernel::SpMM, vec![64, 64], 16)
    }

    #[test]
    fn layout_shape_spmm() {
        let lay = layout(&space());
        // 3 splits + parallel var + threads + chunk + 4 formats = 10
        // categoricals; 2 permutations (6 vars, 4 axes).
        assert_eq!(lay.num_categorical(), 10);
        assert_eq!(lay.num_permutations(), 2);
        let expected = 16 * 3 + (4 + 1) + 2 + 9 + 2 * 4 + 36 + 16;
        assert_eq!(lay.total_len(), expected);
    }

    #[test]
    fn layout_mttkrp_skips_j_split() {
        let space = Space::new(Kernel::MTTKRP, vec![8, 8, 8], 4);
        let lay = layout(&space);
        // splits: i,k,l only (j unsplittable).
        let split_segs = lay
            .segments
            .iter()
            .filter(|s| matches!(s, Segment::Categorical { name, .. } if name.starts_with("split")))
            .count();
        assert_eq!(split_segs, 3);
    }

    #[test]
    fn encode_is_deterministic_and_sized() {
        let space = space();
        let mut rng = Rng64::seed_from(1);
        for _ in 0..50 {
            let s = SuperSchedule::sample(&space, &mut rng);
            let a = encode(&s, &space);
            let b = encode(&s, &space);
            assert_eq!(a, b);
            assert_eq!(a.len(), layout(&space).total_len());
        }
    }

    #[test]
    fn distinct_schedules_encode_differently() {
        let space = space();
        let mut rng = Rng64::seed_from(2);
        let a = SuperSchedule::sample(&space, &mut rng);
        let mut b = a.clone();
        b.splits[0] = if a.splits[0] == 1 { 2 } else { 1 };
        assert_ne!(encode(&a, &space), encode(&b, &space));
    }

    #[test]
    fn permutation_matrix_is_doubly_stochastic() {
        let space = space();
        let mut rng = Rng64::seed_from(3);
        let s = SuperSchedule::sample(&space, &mut rng);
        let enc = encode_structured(&s, &space);
        for perm in &enc.permutations {
            let mut seen = vec![false; perm.len()];
            for &p in perm {
                assert!(!seen[p], "permutation must be a bijection");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn serial_schedule_encodes() {
        let space = space();
        let mut s = named::default_csr(&space);
        s.parallel = None;
        let enc = encode_structured(&s, &space);
        // parallel var categorical (index 3 after 3 split segments) is 0.
        assert_eq!(enc.categorical[3], 0);
        let _ = encode(&s, &space);
    }

    #[test]
    fn log2_indices() {
        assert_eq!(log2_index(1), 0);
        assert_eq!(log2_index(2), 1);
        assert_eq!(log2_index(256), 8);
        assert_eq!(log2_index(0), 0, "clamped");
    }

    #[test]
    fn default_schedule_round_trip_indices() {
        let space = space();
        let s = named::default_csr(&space);
        let enc = encode_structured(&s, &space);
        // splits 1,1,1 → log2 indices 0,0,0.
        assert_eq!(&enc.categorical[..3], &[0, 0, 0]);
        // chunk 32 → index 5.
        assert_eq!(enc.categorical[5], 5);
        // formats U,C,U,U → 0,1,0,0.
        assert_eq!(&enc.categorical[6..10], &[0, 1, 0, 0]);
    }
}
