//! The dominance lattice of the candidate enumeration: schedules grouped by
//! iteration-domain structure.
//!
//! Stage 1 of the two-stage tuning pipeline ranks candidates by a symbolic
//! bound derived from the lowered plan IR. That bound only sees what shapes
//! the iteration domain — the *effective* loop order (parallel variable
//! hoisted outermost, exactly as lowering hoists it), the split sizes, and
//! the storage format. Thread counts and chunk sizes distribute the same
//! domain without changing its size, so schedules differing only in
//! parallelization share a [`StructureKey`]: one bound evaluation covers the
//! whole equivalence class, and dominance ("class A's bound is Θ-smaller
//! than class B's") is a statement about classes, not individual points.

use crate::{FormatSchedule, LoopVar, SuperSchedule};
use std::collections::HashMap;

/// A schedule's position in the dominance lattice: its iteration-domain
/// structure modulo parallelization.
///
/// Two schedules with equal keys lower to op sequences that differ at most
/// in `ParallelChunk` vs `DenseLoop` for the outermost op (and the thread /
/// chunk parameters carried on it) — the asymptotic bound is identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructureKey {
    /// Effective loop order: the parallelized variable hoisted outermost,
    /// matching what `ExecutionPlan::build` lowers.
    pub order: Vec<LoopVar>,
    /// Split size per kernel dimension.
    pub splits: Vec<usize>,
    /// Storage order and level formats of the sparse operand.
    pub format: FormatSchedule,
}

impl StructureKey {
    /// The key of one schedule.
    pub fn of(sched: &SuperSchedule) -> Self {
        let mut order = sched.loop_order.clone();
        if let Some(p) = &sched.parallel {
            if let Some(idx) = order.iter().position(|v| *v == p.var) {
                let v = order.remove(idx);
                order.insert(0, v);
            }
        }
        StructureKey {
            order,
            splits: sched.splits.clone(),
            format: sched.format.clone(),
        }
    }
}

/// Partitions `schedules` into structure classes. Returns
/// `(class_of, representatives)`: `class_of[i]` is the class id of schedule
/// `i`, and `representatives[c]` is the index of the first schedule seen in
/// class `c` (the member whose plan stands in for the class when bounding).
/// Class ids are assigned in first-seen order, so the partition is
/// deterministic in the input order.
pub fn structure_classes(schedules: &[SuperSchedule]) -> (Vec<usize>, Vec<usize>) {
    let mut ids: HashMap<StructureKey, usize> = HashMap::new();
    let mut class_of = Vec::with_capacity(schedules.len());
    let mut representatives = Vec::new();
    for (i, s) in schedules.iter().enumerate() {
        let key = StructureKey::of(s);
        let next = representatives.len();
        let id = *ids.entry(key).or_insert_with(|| {
            representatives.push(i);
            next
        });
        class_of.push(id);
    }
    (class_of, representatives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{named, Kernel, Parallelize, Space};

    #[test]
    fn parallelization_does_not_split_a_class() {
        let space = Space::new(Kernel::SpMV, vec![32, 32], 0);
        let with = named::default_csr(&space);
        assert!(with.parallel.is_some(), "default CSR parallelizes");
        let mut without = with.clone();
        without.parallel = None;
        // The default schedule's parallel var is already outermost, so the
        // effective orders coincide and the keys must too.
        assert_eq!(StructureKey::of(&with), StructureKey::of(&without));
        let mut rechunked = with.clone();
        if let Some(Parallelize { chunk, .. }) = &mut rechunked.parallel {
            *chunk = chunk.saturating_mul(2).max(1);
        }
        assert_eq!(StructureKey::of(&with), StructureKey::of(&rechunked));
    }

    #[test]
    fn hoisting_matches_lowering() {
        let space = Space::new(Kernel::SpMM, vec![16, 16], 4);
        let base = named::default_csr(&space);
        let mut hoisted = base.clone();
        // Move the parallel var away from the front of the written order;
        // the key must hoist it back.
        if let Some(p) = &hoisted.parallel {
            let var = p.var;
            let idx = hoisted.loop_order.iter().position(|v| *v == var).unwrap();
            let v = hoisted.loop_order.remove(idx);
            hoisted.loop_order.insert(1, v);
        }
        assert_eq!(StructureKey::of(&base).order, StructureKey::of(&hoisted).order);
    }

    #[test]
    fn splits_and_formats_split_classes() {
        let space = Space::new(Kernel::SpMV, vec![32, 32], 0);
        let a = named::default_csr(&space);
        let mut b = a.clone();
        b.splits = vec![4, 4];
        assert_ne!(StructureKey::of(&a), StructureKey::of(&b));
        let (class_of, reps) = structure_classes(&[a.clone(), b, a]);
        assert_eq!(class_of, vec![0, 1, 0]);
        assert_eq!(reps, vec![0, 1]);
    }
}
