//! Random sampling and mutation of SuperSchedules.
//!
//! Sampling is how the paper builds its training set ("randomly sampled 100
//! formats and schedules from the SuperSchedule" per matrix, §4.1.3) and how
//! the black-box baseline tuners explore. All randomness goes through
//! [`Rng64`] for reproducibility.

use crate::{FormatSchedule, Parallelize, Space, SuperSchedule};
use waco_format::LevelFormat;
use waco_tensor::gen::Rng64;

/// Largest split exponent actually useful for a dimension of extent `n`
/// within the space's menu.
fn split_log2_cap(space: &Space, dim: usize) -> u32 {
    let n = space.dim_extent(dim).max(1);
    let dim_cap = usize::BITS - 1 - n.leading_zeros().min(usize::BITS - 1);
    dim_cap.min(space.max_split_log2)
}

impl SuperSchedule {
    /// Draws a uniformly random point of the space: power-of-two splits, a
    /// random loop order, a random legal parallelization, a random format
    /// order and random level formats.
    pub fn sample(space: &Space, rng: &mut Rng64) -> Self {
        let kernel = space.kernel;
        let splits: Vec<usize> = (0..kernel.ndims())
            .map(|d| {
                if kernel.is_splittable(d) {
                    1usize << rng.below(split_log2_cap(space, d) as usize + 1)
                } else {
                    1
                }
            })
            .collect();

        let mut loop_order = space.loop_vars();
        rng.shuffle(&mut loop_order);

        let par_vars = space.parallelizable_vars();
        let parallel = Some(Parallelize {
            var: *rng.pick(&par_vars),
            threads: *rng.pick(&space.thread_options),
            chunk: 1usize << rng.below(space.max_chunk_log2 as usize + 1),
        });

        let mut order = space.a_axes();
        rng.shuffle(&mut order);
        let formats = (0..order.len())
            .map(|_| {
                if rng.chance(0.5) {
                    LevelFormat::Uncompressed
                } else {
                    LevelFormat::Compressed
                }
            })
            .collect();

        SuperSchedule {
            kernel,
            splits,
            loop_order,
            parallel,
            format: FormatSchedule { order, formats },
        }
    }

    /// Produces a neighbor by changing exactly one aspect of the schedule
    /// (used by the black-box baseline tuners).
    pub fn mutate(&self, space: &Space, rng: &mut Rng64) -> Self {
        let mut s = self.clone();
        match rng.below(5) {
            0 => {
                // Re-roll one split.
                let splittable: Vec<usize> = (0..s.kernel.ndims())
                    .filter(|&d| s.kernel.is_splittable(d))
                    .collect();
                let d = *rng.pick(&splittable);
                s.splits[d] = 1usize << rng.below(split_log2_cap(space, d) as usize + 1);
            }
            1 => {
                // Swap two loop variables.
                let n = s.loop_order.len();
                let (a, b) = (rng.below(n), rng.below(n));
                s.loop_order.swap(a, b);
            }
            2 => {
                // Re-roll parallelization.
                let par_vars = space.parallelizable_vars();
                s.parallel = Some(Parallelize {
                    var: *rng.pick(&par_vars),
                    threads: *rng.pick(&space.thread_options),
                    chunk: 1usize << rng.below(space.max_chunk_log2 as usize + 1),
                });
            }
            3 => {
                // Swap two format levels (order and format move together so
                // a level keeps its format when it moves).
                let n = s.format.order.len();
                let (a, b) = (rng.below(n), rng.below(n));
                s.format.order.swap(a, b);
                s.format.formats.swap(a, b);
            }
            _ => {
                // Flip one level format.
                let n = s.format.formats.len();
                let l = rng.below(n);
                s.format.formats[l] = match s.format.formats[l] {
                    LevelFormat::Uncompressed => LevelFormat::Compressed,
                    LevelFormat::Compressed => LevelFormat::Uncompressed,
                };
            }
        }
        s
    }

    /// Samples a schedule whose sparse-operand storage stays under
    /// `budget_words` for a matrix with the given prefix statistics, retrying
    /// up to `max_tries` times (the analog of the paper excluding
    /// configurations that run for over a minute).
    ///
    /// `probe` receives a candidate and returns `true` when it is acceptable.
    /// Returns the last candidate even if no candidate passed, flagged by the
    /// boolean.
    pub fn sample_where(
        space: &Space,
        rng: &mut Rng64,
        max_tries: usize,
        mut probe: impl FnMut(&SuperSchedule) -> bool,
    ) -> (SuperSchedule, bool) {
        let mut last = SuperSchedule::sample(space, rng);
        for _ in 0..max_tries {
            if probe(&last) {
                return (last, true);
            }
            last = SuperSchedule::sample(space, rng);
        }
        let ok = probe(&last);
        (last, ok)
    }
}

/// A deterministic, seeded stream of schedules shared by every suite that
/// sweeps the SuperSchedule space (`waco-verify`, the `exec` kernel tests,
/// and the encoding property tests), so all of them agree on coverage.
///
/// The stream front-loads a fixed set of coverage corners — the concordant
/// CSR/CSF default, its serial variant, all-compressed and all-uncompressed
/// level formats, maximal splits, and discordant loop/format orders — and
/// then continues with uniform [`SuperSchedule::sample`] draws. Two samplers
/// built from the same space and seed yield identical streams.
#[derive(Debug, Clone)]
pub struct ScheduleSampler {
    space: Space,
    rng: Rng64,
    emitted: usize,
}

impl ScheduleSampler {
    /// Number of deterministic coverage corners emitted before the random
    /// tail begins.
    pub const CORNERS: usize = 6;

    /// Builds a sampler over `space` with its own private RNG stream.
    pub fn new(space: &Space, seed: u64) -> Self {
        ScheduleSampler {
            space: space.clone(),
            rng: Rng64::seed_from(seed),
            emitted: 0,
        }
    }

    /// The space this sampler draws from.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The next schedule of the stream: corner `n` for the first
    /// [`Self::CORNERS`] calls, then uniform random points.
    pub fn next_schedule(&mut self) -> SuperSchedule {
        let i = self.emitted;
        self.emitted += 1;
        if i < Self::CORNERS {
            self.corner(i)
        } else {
            SuperSchedule::sample(&self.space, &mut self.rng)
        }
    }

    /// Draws the next `n` schedules.
    pub fn take_schedules(&mut self, n: usize) -> Vec<SuperSchedule> {
        (0..n).map(|_| self.next_schedule()).collect()
    }

    fn corner(&self, i: usize) -> SuperSchedule {
        let space = &self.space;
        let base = crate::named::default_csr(space);
        match i {
            // The paper's default: concordant CSR/CSF, parallel outer rows.
            0 => base,
            // Same point without parallelism (serial reference).
            1 => {
                let mut s = base;
                s.parallel = None;
                s
            }
            // Every level compressed (DCSR / all-C CSF), serial.
            2 => {
                let mut s = base;
                s.format.formats = vec![LevelFormat::Compressed; s.format.formats.len()];
                s.parallel = None;
                s
            }
            // Every level uncompressed (fully dense storage).
            3 => {
                let mut s = base;
                s.format.formats = vec![LevelFormat::Uncompressed; s.format.formats.len()];
                s
            }
            // Maximal legal split on every splittable dimension.
            4 => {
                let mut s = base;
                for d in 0..s.kernel.ndims() {
                    if s.kernel.is_splittable(d) {
                        s.splits[d] = 1usize << split_log2_cap(space, d);
                    }
                }
                s
            }
            // Discordant: loop order and format order both reversed
            // (independently), serial so the reversal is the only variable.
            _ => {
                let mut s = base;
                s.loop_order.reverse();
                s.format.order.reverse();
                s.format.formats.reverse();
                s.parallel = None;
                s
            }
        }
    }
}

impl Iterator for ScheduleSampler {
    type Item = SuperSchedule;

    fn next(&mut self) -> Option<SuperSchedule> {
        Some(self.next_schedule())
    }
}

/// Samples `count` schedules (convenience for dataset generation).
pub fn sample_many(space: &Space, count: usize, rng: &mut Rng64) -> Vec<SuperSchedule> {
    (0..count)
        .map(|_| SuperSchedule::sample(space, rng))
        .collect()
}

/// Deterministic seed-indexed sampling: schedule `i` of a virtual stream.
/// Used to build reproducible KNN-graph vertex sets.
pub fn sample_indexed(space: &Space, index: u64, base_seed: u64) -> SuperSchedule {
    let mut rng = Rng64::seed_from(base_seed ^ index.wrapping_mul(0x9E3779B97F4A7C15));
    SuperSchedule::sample(space, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;

    fn spaces() -> Vec<Space> {
        vec![
            Space::new(Kernel::SpMV, vec![128, 128], 0),
            Space::new(Kernel::SpMM, vec![64, 256], 32),
            Space::new(Kernel::SDDMM, vec![64, 64], 16),
            Space::new(Kernel::MTTKRP, vec![16, 16, 16], 8),
        ]
    }

    #[test]
    fn samples_are_valid() {
        for space in spaces() {
            let mut rng = Rng64::seed_from(7);
            for _ in 0..200 {
                let s = SuperSchedule::sample(&space, &mut rng);
                s.validate(&space)
                    .unwrap_or_else(|e| panic!("{e} in {}", s.describe(&space)));
            }
        }
    }

    #[test]
    fn mutations_stay_valid() {
        for space in spaces() {
            let mut rng = Rng64::seed_from(8);
            let mut s = SuperSchedule::sample(&space, &mut rng);
            for _ in 0..100 {
                s = s.mutate(&space, &mut rng);
                assert!(s.validate(&space).is_ok());
            }
        }
    }

    #[test]
    fn mutation_changes_something() {
        let space = Space::new(Kernel::SpMM, vec![64, 64], 16);
        let mut rng = Rng64::seed_from(9);
        let s = SuperSchedule::sample(&space, &mut rng);
        let mut changed = 0;
        for _ in 0..20 {
            if s.mutate(&space, &mut rng) != s {
                changed += 1;
            }
        }
        assert!(
            changed >= 15,
            "mutations should usually change the schedule"
        );
    }

    #[test]
    fn splits_respect_dimension() {
        let space = Space::new(Kernel::SpMV, vec![10, 1000], 0);
        let mut rng = Rng64::seed_from(10);
        for _ in 0..100 {
            let s = SuperSchedule::sample(&space, &mut rng);
            assert!(s.splits[0] <= 8, "split of dim extent 10 capped at 8");
            assert!(s.splits[1] <= 512);
        }
    }

    #[test]
    fn indexed_sampling_is_stable() {
        let space = Space::new(Kernel::SpMV, vec![64, 64], 0);
        assert_eq!(sample_indexed(&space, 5, 42), sample_indexed(&space, 5, 42));
        assert_ne!(sample_indexed(&space, 5, 42), sample_indexed(&space, 6, 42));
    }

    #[test]
    fn sample_where_filters() {
        let space = Space::new(Kernel::SpMV, vec![64, 64], 0);
        let mut rng = Rng64::seed_from(11);
        let (s, ok) = SuperSchedule::sample_where(&space, &mut rng, 500, |s| s.splits[0] == 1);
        assert!(ok);
        assert_eq!(s.splits[0], 1);
    }

    #[test]
    fn sampler_corners_and_tail_are_valid_and_deterministic() {
        for space in spaces() {
            let a = ScheduleSampler::new(&space, 99).take_schedules(ScheduleSampler::CORNERS + 20);
            let b = ScheduleSampler::new(&space, 99).take_schedules(ScheduleSampler::CORNERS + 20);
            assert_eq!(a, b, "same seed, same stream");
            for (i, s) in a.iter().enumerate() {
                s.validate(&space)
                    .unwrap_or_else(|e| panic!("stream item {i}: {e} in {}", s.describe(&space)));
            }
            // Corners hit the named coverage points.
            assert_eq!(a[0], crate::named::default_csr(&space));
            assert!(a[1].parallel.is_none());
            assert!(a[2]
                .format
                .formats
                .iter()
                .all(|&f| f == waco_format::LevelFormat::Compressed));
            assert!(a[3]
                .format
                .formats
                .iter()
                .all(|&f| f == waco_format::LevelFormat::Uncompressed));
            assert!(a[4].splits.iter().any(|&s| s > 1));
            assert_ne!(a[5].loop_order, a[0].loop_order);
        }
    }

    #[test]
    fn sampler_seed_changes_tail() {
        let space = Space::new(Kernel::SpMM, vec![64, 64], 16);
        let a = ScheduleSampler::new(&space, 1).take_schedules(ScheduleSampler::CORNERS + 10);
        let b = ScheduleSampler::new(&space, 2).take_schedules(ScheduleSampler::CORNERS + 10);
        assert_eq!(
            a[..ScheduleSampler::CORNERS],
            b[..ScheduleSampler::CORNERS],
            "corners are seed-independent"
        );
        assert_ne!(a, b, "random tail depends on the seed");
    }

    #[test]
    fn sample_many_counts() {
        let space = Space::new(Kernel::SpMM, vec![32, 32], 8);
        let mut rng = Rng64::seed_from(12);
        assert_eq!(sample_many(&space, 17, &mut rng).len(), 17);
    }
}
