//! Named reference schedules: TACO defaults and concordant schedules.

use crate::{FormatSchedule, Kernel, LoopVar, Parallelize, Space, SuperSchedule};
use waco_format::{Axis, LevelFormat};

/// The TACO default used by the paper's **Fixed CSR** baseline: CSR (CSF for
/// MTTKRP), unit splits, row-major concordant loops, parallelized over the
/// outer row loop with the paper's fixed chunk sizes (§5.1: 128 for SpMV, 32
/// for the rest) and the largest thread count in the menu.
pub fn default_csr(space: &Space) -> SuperSchedule {
    let kernel = space.kernel;
    let ndims = kernel.ndims();
    let nsparse = kernel.sparse_ndims();

    let splits = vec![1usize; ndims];

    // Outer vars in dimension order, then inner vars (which are trivial
    // because all splits are 1): the classic i → k → j nest.
    let mut loop_order: Vec<LoopVar> = (0..ndims).map(LoopVar::outer).collect();
    for d in 0..ndims {
        if kernel.is_splittable(d) {
            loop_order.push(LoopVar::inner(d));
        }
    }

    // Sparse levels: dense rows, compressed below — CSR for matrices
    // (U C), CSF-like (C C C) for the 3-D tensor.
    let mut order: Vec<Axis> = (0..nsparse).map(Axis::outer).collect();
    order.extend((0..nsparse).map(Axis::inner));
    let mut formats = Vec::with_capacity(order.len());
    for l in 0..order.len() {
        let fmt = if l < nsparse {
            if kernel == Kernel::MTTKRP {
                LevelFormat::Compressed // CSF: every outer level compressed
            } else if l == 0 {
                LevelFormat::Uncompressed
            } else {
                LevelFormat::Compressed
            }
        } else {
            LevelFormat::Uncompressed // trivial inner levels
        };
        formats.push(fmt);
    }

    let chunk = if kernel == Kernel::SpMV { 128 } else { 32 };
    let threads = *space
        .thread_options
        .iter()
        .max()
        .expect("non-empty thread menu");

    SuperSchedule {
        kernel,
        splits,
        loop_order,
        parallel: Some(Parallelize {
            var: LoopVar::outer(0),
            threads,
            chunk,
        }),
        format: FormatSchedule { order, formats },
    }
}

/// A schedule whose traversal order is *concordant* with the given format
/// schedule: sparse loops follow the storage order of `A`'s levels, dense
/// loops are appended innermost, and parallelization lands on the first
/// parallelizable loop.
///
/// This is the "F." (format-only tuning) configuration of Table 1: the format
/// varies, the traversal is whatever that format stores naturally.
pub fn concordant(
    space: &Space,
    splits: Vec<usize>,
    format: FormatSchedule,
    threads: usize,
    chunk: usize,
) -> SuperSchedule {
    let kernel = space.kernel;
    let nsparse = kernel.sparse_ndims();
    let mut loop_order: Vec<LoopVar> = format
        .order
        .iter()
        .map(|a| LoopVar {
            dim: a.dim,
            part: a.part,
        })
        .collect();
    // Dense-only dims innermost, outer part first.
    for d in nsparse..kernel.ndims() {
        loop_order.push(LoopVar::outer(d));
        if kernel.is_splittable(d) {
            loop_order.push(LoopVar::inner(d));
        }
    }
    let par_var = loop_order
        .iter()
        .copied()
        .find(|v| !kernel.is_reduction(v.dim));
    SuperSchedule {
        kernel,
        splits,
        loop_order,
        parallel: par_var.map(|var| Parallelize {
            var,
            threads,
            chunk,
        }),
        format,
    }
}

/// A format schedule in canonical (row-major, outer-then-inner) order with
/// the given per-level formats.
///
/// # Panics
///
/// Panics if `formats.len() != 2 * kernel.sparse_ndims()`.
pub fn canonical_format(kernel: Kernel, formats: Vec<LevelFormat>) -> FormatSchedule {
    let nsparse = kernel.sparse_ndims();
    assert_eq!(formats.len(), 2 * nsparse, "need one format per axis");
    let mut order: Vec<Axis> = (0..nsparse).map(Axis::outer).collect();
    order.extend((0..nsparse).map(Axis::inner));
    FormatSchedule { order, formats }
}

/// The five candidate formats used by the **BestFormat** baseline for 2-D
/// kernels: CSR, CSC, BCSR 16×16 (at the SIMD threshold), DCSR, and the
/// sparse-block format
/// (`k1(U) i1(U) k0(C)` with a large k split). Returned as
/// `(name, splits, format_schedule)` tuples; pair with [`concordant`] to get
/// runnable schedules.
pub fn best_format_candidates(space: &Space) -> Vec<(String, Vec<usize>, FormatSchedule)> {
    let kernel = space.kernel;
    let ndims = kernel.ndims();
    assert_eq!(
        kernel.sparse_ndims(),
        2,
        "2-D candidates requested for {kernel}"
    );
    let u = LevelFormat::Uncompressed;
    let c = LevelFormat::Compressed;
    let unit = vec![1usize; ndims];
    let mut blocked = vec![1usize; ndims];
    blocked[0] = 16;
    blocked[1] = 16;
    let mut ksplit = vec![1usize; ndims];
    ksplit[1] = (space.dim_extent(1) / 4).max(1).next_power_of_two();

    vec![
        (
            "CSR".into(),
            unit.clone(),
            canonical_format(kernel, vec![u, c, u, u]),
        ),
        (
            "CSC".into(),
            unit.clone(),
            FormatSchedule {
                order: vec![
                    Axis::outer(1),
                    Axis::outer(0),
                    Axis::inner(1),
                    Axis::inner(0),
                ],
                formats: vec![u, c, u, u],
            },
        ),
        (
            "BCSR16x16".into(),
            blocked,
            canonical_format(kernel, vec![u, c, u, u]),
        ),
        (
            "DCSR".into(),
            unit,
            canonical_format(kernel, vec![c, c, u, u]),
        ),
        (
            "SparseBlock".into(),
            ksplit,
            FormatSchedule {
                order: vec![
                    Axis::outer(1),
                    Axis::outer(0),
                    Axis::inner(1),
                    Axis::inner(0),
                ],
                formats: vec![u, u, c, u],
            },
        ),
    ]
}

/// Candidate formats for the 3-D MTTKRP (CSF mode orders + a blocked
/// variant), the SpTFS-style menu.
pub fn best_format_candidates_3d(space: &Space) -> Vec<(String, Vec<usize>, FormatSchedule)> {
    let kernel = space.kernel;
    assert_eq!(
        kernel.sparse_ndims(),
        3,
        "3-D candidates requested for {kernel}"
    );
    let u = LevelFormat::Uncompressed;
    let c = LevelFormat::Compressed;
    let unit = vec![1usize; kernel.ndims()];
    let csf = |perm: [usize; 3]| FormatSchedule {
        order: vec![
            Axis::outer(perm[0]),
            Axis::outer(perm[1]),
            Axis::outer(perm[2]),
            Axis::inner(perm[0]),
            Axis::inner(perm[1]),
            Axis::inner(perm[2]),
        ],
        formats: vec![c, c, c, u, u, u],
    };
    let mut blocked = unit.clone();
    blocked[2] = 4;
    vec![
        ("CSF-ikl".into(), unit.clone(), csf([0, 1, 2])),
        ("CSF-kil".into(), unit.clone(), csf([1, 0, 2])),
        ("CSF-lik".into(), unit.clone(), csf([2, 0, 1])),
        ("CSF-ilk".into(), unit, csf([0, 2, 1])),
        (
            "BlockedCSF".into(),
            blocked,
            FormatSchedule {
                order: vec![
                    Axis::outer(0),
                    Axis::outer(1),
                    Axis::outer(2),
                    Axis::inner(0),
                    Axis::inner(1),
                    Axis::inner(2),
                ],
                formats: vec![c, c, c, u, u, u],
            },
        ),
    ]
}

/// A structured portfolio of classic configurations: the TACO default plus
/// every BestFormat candidate under the full (threads × chunk) menu with
/// concordant loops. Used to densify both the training dataset and the KNN
/// graph with reasonable configurations — the paper's 100-random-schedules ×
/// 21k-matrices dataset achieves the same density by brute scale.
pub fn portfolio(space: &Space) -> Vec<SuperSchedule> {
    let mut out = vec![default_csr(space)];
    let cands = if space.kernel.sparse_ndims() == 2 {
        best_format_candidates(space)
    } else {
        best_format_candidates_3d(space)
    };
    for (_, splits, fmt) in cands {
        for &threads in &space.thread_options {
            for chunk in [1usize, 8, 32, 128, 256] {
                out.push(concordant(
                    space,
                    splits.clone(),
                    fmt.clone(),
                    threads,
                    chunk,
                ));
            }
        }
    }
    out.retain(|s| s.validate(space).is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portfolio_is_valid_and_diverse() {
        for kernel in Kernel::ALL {
            let dims = match kernel {
                Kernel::MTTKRP => vec![32, 32, 32],
                _ => vec![64, 64],
            };
            let space = Space::new(kernel, dims, 16);
            let p = portfolio(&space);
            assert!(p.len() > 20, "{kernel}: {}", p.len());
            for s in &p {
                s.validate(&space).unwrap();
            }
            // At least two distinct formats and two distinct chunk sizes.
            let formats: std::collections::HashSet<_> =
                p.iter().map(|s| s.format.clone()).collect();
            assert!(formats.len() >= 2);
        }
    }

    #[test]
    fn defaults_are_valid_for_all_kernels() {
        for kernel in Kernel::ALL {
            let dims = match kernel {
                Kernel::MTTKRP => vec![16, 16, 16],
                _ => vec![64, 64],
            };
            let space = Space::new(kernel, dims, 16);
            let s = default_csr(&space);
            s.validate(&space).unwrap();
            // Effective loops (unit splits) follow i → k → (j).
            assert_eq!(s.loop_order[0], LoopVar::outer(0));
            assert_eq!(s.parallel.unwrap().var, LoopVar::outer(0));
        }
    }

    #[test]
    fn default_csr_is_csr() {
        let space = Space::new(Kernel::SpMM, vec![64, 64], 16);
        let s = default_csr(&space);
        let spec = s.a_format_spec(&space).unwrap();
        assert_eq!(spec.describe(), "i1(U) k1(C) i0(U) k0(U)");
        assert_eq!(s.parallel.unwrap().chunk, 32);
        let spmv = default_csr(&Space::new(Kernel::SpMV, vec![64, 64], 0));
        assert_eq!(spmv.parallel.unwrap().chunk, 128);
    }

    #[test]
    fn default_mttkrp_is_csf() {
        let space = Space::new(Kernel::MTTKRP, vec![8, 8, 8], 4);
        let s = default_csr(&space);
        let spec = s.a_format_spec(&space).unwrap();
        assert!(spec.describe().starts_with("i1(C) k1(C) l1(C)"));
    }

    #[test]
    fn concordant_follows_format_order() {
        let space = Space::new(Kernel::SpMM, vec![64, 64], 16);
        let fmt = FormatSchedule {
            order: vec![
                Axis::outer(1),
                Axis::outer(0),
                Axis::inner(1),
                Axis::inner(0),
            ],
            formats: vec![
                LevelFormat::Uncompressed,
                LevelFormat::Compressed,
                LevelFormat::Uncompressed,
                LevelFormat::Uncompressed,
            ],
        };
        let s = concordant(&space, vec![1, 1, 1], fmt, 8, 16);
        s.validate(&space).unwrap();
        assert_eq!(s.loop_order[0], LoopVar::outer(1)); // k-major traversal
                                                        // k is a reduction dim, so parallelization falls to the next var (i).
        assert_eq!(s.parallel.unwrap().var, LoopVar::outer(0));
    }

    #[test]
    fn best_format_candidates_are_valid() {
        let space = Space::new(Kernel::SpMM, vec![64, 128], 16);
        let cands = best_format_candidates(&space);
        assert_eq!(cands.len(), 5);
        for (name, splits, fmt) in cands {
            let s = concordant(&space, splits, fmt, 8, 32);
            s.validate(&space).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn best_format_candidates_3d_are_valid() {
        let space = Space::new(Kernel::MTTKRP, vec![16, 16, 16], 8);
        let cands = best_format_candidates_3d(&space);
        assert_eq!(cands.len(), 5);
        for (name, splits, fmt) in cands {
            let s = concordant(&space, splits, fmt, 8, 32);
            s.validate(&space).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
