//! SuperSchedule: the unified format + schedule template of WACO.
//!
//! A [`SuperSchedule`] (paper §4.1.2, Figure 10, Table 3) jointly describes:
//!
//! * **splits** — every splittable dimension is split exactly once; a split
//!   size of 1 reduces the template to an unsplit loop, which is how one
//!   template covers all the derived algorithms,
//! * a **compute schedule** — the traversal order of all loop variables and a
//!   `parallelize(var, threads, chunk)` directive mirroring OpenMP's
//!   `schedule(dynamic, chunk)`,
//! * a **format schedule** — the storage order and per-level format (U/C) of
//!   the sparse operand's axes, sharing the same split sizes.
//!
//! The template is kernel-specific: [`Kernel`] enumerates the four kernels of
//! the paper and [`Space`] fixes the concrete dimensions and the tuning
//! ranges, mirroring Table 3 (splits in `1..=32768`, chunk sizes in
//! `1..=256`, a machine-dependent thread count menu).
//!
//! [`encode`] turns a SuperSchedule into the neural-network input of the
//! paper's program embedder: one-hot vectors for categorical parameters and
//! flattened permutation matrices for order parameters.
//!
//! # Example
//!
//! ```
//! use waco_schedule::{Kernel, Space, SuperSchedule};
//! use waco_tensor::gen::Rng64;
//!
//! let space = Space::new(Kernel::SpMM, vec![512, 512], 32);
//! let mut rng = Rng64::seed_from(1);
//! let s = SuperSchedule::sample(&space, &mut rng);
//! assert!(s.validate(&space).is_ok());
//! let feats = waco_schedule::encode::encode(&s, &space);
//! assert_eq!(feats.len(), waco_schedule::encode::layout(&space).total_len());
//! ```

pub mod dominance;
pub mod encode;
pub mod named;
pub mod sample;

pub use dominance::{structure_classes, StructureKey};
pub use sample::ScheduleSampler;

use waco_format::{Axis, AxisPart, FormatSpec, LevelFormat};

/// The sparse tensor algebra kernels: the four of the paper plus the
/// workspace family (SpGEMM and fused SDDMM+SpMM), which consume a second
/// sparse operand and lower through a dense-temporary `Workspace` plan op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// `C[i] = A[i,k] * B[k]` — sparse matrix × dense vector.
    SpMV,
    /// `C[i,j] = A[i,k] * B[k,j]` — sparse matrix × dense matrix.
    SpMM,
    /// `D[i,j] = A[i,j] * B[i,k] * C[k,j]` — sampled dense-dense matmul.
    SDDMM,
    /// `D[i,j] = A[i,k,l] * B[k,j] * C[l,j]` — matricized tensor times
    /// Khatri-Rao product.
    MTTKRP,
    /// `C[i,j] = A[i,k] * B[k,j]` with *sparse* `B` — row-wise Gustavson
    /// with a dense workspace row; output sparsity is data-dependent.
    SpGEMM,
    /// `E[i,t] = (A[i,j] * Σ_k B[i,k] C[k,j]) * F[j,t]` — SDDMM fused with
    /// the following SpMM in one pass over `A`, the workspace holding the
    /// intermediate SDDMM row.
    SddmmSpmm,
}

impl Kernel {
    /// The four kernels of the paper, in the paper's order. The workspace
    /// kernels ([`Kernel::SpGEMM`], [`Kernel::SddmmSpmm`]) are opt-in and
    /// deliberately excluded so training/table experiments are unchanged.
    pub const ALL: [Kernel; 4] = [Kernel::SpMV, Kernel::SpMM, Kernel::SDDMM, Kernel::MTTKRP];

    /// The kernels that lower through a `Workspace` plan op.
    pub const WORKSPACE: [Kernel; 2] = [Kernel::SpGEMM, Kernel::SddmmSpmm];

    /// Kernel dimension names, sparse-operand modes first, dense-only
    /// dimension (if any) last.
    pub fn dim_names(self) -> &'static [&'static str] {
        match self {
            Kernel::SpMV => &["i", "k"],
            Kernel::SpMM => &["i", "k", "j"],
            Kernel::SDDMM => &["i", "j", "k"],
            Kernel::MTTKRP => &["i", "k", "l", "j"],
            // j is B's column dimension (the workspace extent).
            Kernel::SpGEMM => &["i", "k", "j"],
            // k is the SDDMM contraction dimension (the dense extent); the
            // output dimension t comes from F at run time.
            Kernel::SddmmSpmm => &["i", "j", "k"],
        }
    }

    /// Number of modes of the sparse operand `A`.
    pub fn sparse_ndims(self) -> usize {
        match self {
            Kernel::SpMV | Kernel::SpMM | Kernel::SDDMM => 2,
            Kernel::MTTKRP => 3,
            Kernel::SpGEMM | Kernel::SddmmSpmm => 2,
        }
    }

    /// Total number of kernel dimensions (sparse modes + dense-only dim).
    pub fn ndims(self) -> usize {
        self.dim_names().len()
    }

    /// Whether this kernel consumes a second *sparse* operand (`B` for
    /// SpGEMM; `A` re-walked against dense `F` for the fused kernel's SpMM
    /// half). These are the kernels whose plans carry a `Workspace` op.
    pub fn uses_workspace(self) -> bool {
        matches!(self, Kernel::SpGEMM | Kernel::SddmmSpmm)
    }

    /// Whether kernel dimension `dim` is a reduction dimension (parallelizing
    /// over it would race on the output).
    pub fn is_reduction(self, dim: usize) -> bool {
        match self {
            Kernel::SpMV | Kernel::SpMM => dim == 1, // k
            Kernel::SDDMM => dim == 2,               // k
            Kernel::MTTKRP => dim == 1 || dim == 2,  // k, l
            Kernel::SpGEMM => dim == 1,              // k
            // j feeds the workspace scatter and k the SDDMM dot; only i
            // (independent output rows) is safe to parallelize.
            Kernel::SddmmSpmm => dim == 1 || dim == 2,
        }
    }

    /// Whether kernel dimension `dim` may be split. The MTTKRP rank dimension
    /// `j` is kept unsplit (it is small — 16 in the paper).
    pub fn is_splittable(self, dim: usize) -> bool {
        !(self == Kernel::MTTKRP && dim == 3)
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Kernel::SpMV => "SpMV",
            Kernel::SpMM => "SpMM",
            Kernel::SDDMM => "SDDMM",
            Kernel::MTTKRP => "MTTKRP",
            Kernel::SpGEMM => "SpGEMM",
            Kernel::SddmmSpmm => "SDDMM+SpMM",
        };
        write!(f, "{s}")
    }
}

/// A loop variable of the compute schedule: the outer or inner part of a
/// split kernel dimension. Unsplittable dimensions only use their outer part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopVar {
    /// Kernel dimension index (see [`Kernel::dim_names`]).
    pub dim: usize,
    /// Outer (`x1`) or inner (`x0`) part.
    pub part: AxisPart,
}

impl LoopVar {
    /// The outer loop variable of dimension `dim`.
    pub fn outer(dim: usize) -> Self {
        LoopVar {
            dim,
            part: AxisPart::Outer,
        }
    }

    /// The inner loop variable of dimension `dim`.
    pub fn inner(dim: usize) -> Self {
        LoopVar {
            dim,
            part: AxisPart::Inner,
        }
    }
}

/// The concrete tuning space for one kernel instance: dimensions plus the
/// Table 3 parameter menus.
#[derive(Debug, Clone, PartialEq)]
pub struct Space {
    /// Which kernel.
    pub kernel: Kernel,
    /// Extents of the sparse operand's modes (2 or 3 entries).
    pub sparse_dims: Vec<usize>,
    /// Extent of the dense-only dimension (`|j|` for SpMM/MTTKRP, `|k|` for
    /// SDDMM); ignored for SpMV.
    pub dense_extent: usize,
    /// Thread-count menu (paper: `[24, 48]` on the Xeon testbed).
    pub thread_options: Vec<usize>,
    /// Largest split size as a log2 exponent (paper: 15, i.e. 32768).
    pub max_split_log2: u32,
    /// Largest OpenMP chunk size as a log2 exponent (paper: 8, i.e. 256).
    pub max_chunk_log2: u32,
}

impl Space {
    /// A space with the paper's parameter menus and a default thread menu.
    ///
    /// # Panics
    ///
    /// Panics if `sparse_dims.len() != kernel.sparse_ndims()`.
    pub fn new(kernel: Kernel, sparse_dims: Vec<usize>, dense_extent: usize) -> Self {
        assert_eq!(
            sparse_dims.len(),
            kernel.sparse_ndims(),
            "expected {} sparse dims for {kernel}",
            kernel.sparse_ndims()
        );
        Self {
            kernel,
            sparse_dims,
            dense_extent,
            thread_options: vec![24, 48],
            max_split_log2: 15,
            max_chunk_log2: 8,
        }
    }

    /// Replaces the thread menu (e.g. `[8, 16]` for the EPYC-like machine).
    pub fn with_thread_options(mut self, options: Vec<usize>) -> Self {
        assert!(!options.is_empty(), "thread menu must be non-empty");
        self.thread_options = options;
        self
    }

    /// Extent of kernel dimension `dim`.
    pub fn dim_extent(&self, dim: usize) -> usize {
        if dim < self.sparse_dims.len() {
            self.sparse_dims[dim]
        } else {
            self.dense_extent
        }
    }

    /// All loop variables of this kernel's fully split template, in canonical
    /// order (outer then inner per dimension).
    pub fn loop_vars(&self) -> Vec<LoopVar> {
        let mut vars = Vec::new();
        for dim in 0..self.kernel.ndims() {
            vars.push(LoopVar::outer(dim));
            if self.kernel.is_splittable(dim) {
                vars.push(LoopVar::inner(dim));
            }
        }
        vars
    }

    /// Loop variables that may legally be parallelized (non-reduction dims).
    pub fn parallelizable_vars(&self) -> Vec<LoopVar> {
        self.loop_vars()
            .into_iter()
            .filter(|v| !self.kernel.is_reduction(v.dim))
            .collect()
    }

    /// Axes of the sparse operand `A` in canonical order.
    pub fn a_axes(&self) -> Vec<Axis> {
        let mut axes = Vec::new();
        for dim in 0..self.kernel.sparse_ndims() {
            axes.push(Axis::outer(dim));
            axes.push(Axis::inner(dim));
        }
        axes
    }

    /// The number of distinct configurations of the template (Table 3 size),
    /// as an `f64` because it overflows integers for real spaces.
    pub fn size_estimate(&self) -> f64 {
        let nvars = self.loop_vars().len() as f64;
        let naxes = self.a_axes().len() as f64;
        let splittable = (0..self.kernel.ndims())
            .filter(|&d| self.kernel.is_splittable(d))
            .count() as f64;
        let fact = |n: f64| (2..=n as u64).map(|x| x as f64).product::<f64>().max(1.0);
        let splits = ((self.max_split_log2 + 1) as f64).powf(splittable);
        let loop_orders = fact(nvars);
        let par = self.parallelizable_vars().len() as f64
            * self.thread_options.len() as f64
            * (self.max_chunk_log2 + 1) as f64;
        let level_orders = fact(naxes);
        let formats = 2f64.powf(naxes);
        splits * loop_orders * par * level_orders * formats
    }
}

/// The `parallelize` directive: which loop is distributed over threads and
/// how (OpenMP `schedule(dynamic, chunk)` semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelize {
    /// The parallelized loop variable (must be outermost in execution; the
    /// interpreter hoists it).
    pub var: LoopVar,
    /// Number of worker threads.
    pub threads: usize,
    /// Dynamic-scheduling chunk size (iterations per dispatch).
    pub chunk: usize,
}

/// The format schedule of the sparse operand: level order + level formats.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FormatSchedule {
    /// Storage order of `A`'s axes, outermost first (a permutation of
    /// [`Space::a_axes`]).
    pub order: Vec<Axis>,
    /// Level format per level, parallel to `order`.
    pub formats: Vec<LevelFormat>,
}

/// A complete point of the co-optimization space: format and schedule
/// together.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperSchedule {
    /// Which kernel this schedule is for.
    pub kernel: Kernel,
    /// Split size per kernel dimension (1 = unsplit). Length =
    /// `kernel.ndims()`.
    pub splits: Vec<usize>,
    /// Traversal order of all loop variables, outermost first (a permutation
    /// of [`Space::loop_vars`]).
    pub loop_order: Vec<LoopVar>,
    /// Parallelization directive, or `None` for serial execution.
    pub parallel: Option<Parallelize>,
    /// Format schedule of the sparse operand.
    pub format: FormatSchedule,
}

/// Schedule validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError(pub String);

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SuperSchedule: {}", self.0)
    }
}

impl std::error::Error for ScheduleError {}

impl SuperSchedule {
    /// Checks the schedule against its space: permutation-ness of orders,
    /// split ranges, parallelization legality.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] describing the first violation found.
    pub fn validate(&self, space: &Space) -> Result<(), ScheduleError> {
        if self.kernel != space.kernel {
            return Err(ScheduleError(format!(
                "kernel mismatch: schedule {} vs space {}",
                self.kernel, space.kernel
            )));
        }
        if self.splits.len() != space.kernel.ndims() {
            return Err(ScheduleError("split count != ndims".into()));
        }
        for (d, &s) in self.splits.iter().enumerate() {
            if s == 0 {
                return Err(ScheduleError(format!("split of dim {d} is zero")));
            }
            if !space.kernel.is_splittable(d) && s != 1 {
                return Err(ScheduleError(format!("dim {d} is not splittable")));
            }
            if s > (1usize << space.max_split_log2) {
                return Err(ScheduleError(format!("split {s} exceeds menu")));
            }
        }
        let mut want: Vec<LoopVar> = space.loop_vars();
        let mut got = self.loop_order.clone();
        want.sort();
        got.sort();
        if want != got {
            return Err(ScheduleError(
                "loop order is not a permutation of loop vars".into(),
            ));
        }
        let mut want_axes = space.a_axes();
        let mut got_axes = self.format.order.clone();
        want_axes.sort();
        got_axes.sort();
        if want_axes != got_axes {
            return Err(ScheduleError(
                "format order is not a permutation of A's axes".into(),
            ));
        }
        if self.format.formats.len() != self.format.order.len() {
            return Err(ScheduleError("format list length mismatch".into()));
        }
        if let Some(p) = &self.parallel {
            if space.kernel.is_reduction(p.var.dim) {
                return Err(ScheduleError(format!(
                    "cannot parallelize reduction dim {}",
                    space.kernel.dim_names()[p.var.dim]
                )));
            }
            if !self.loop_order.contains(&p.var) {
                return Err(ScheduleError("parallel var not in loop order".into()));
            }
            if p.threads == 0 || p.chunk == 0 {
                return Err(ScheduleError("threads and chunk must be positive".into()));
            }
            if p.chunk > (1usize << space.max_chunk_log2) {
                return Err(ScheduleError(format!("chunk {} exceeds menu", p.chunk)));
            }
        }
        Ok(())
    }

    /// The [`FormatSpec`] of the sparse operand under this schedule.
    ///
    /// Split sizes of the sparse modes carry over; the spec clamps splits to
    /// the dimension sizes.
    ///
    /// # Errors
    ///
    /// Propagates [`waco_format::FormatError`] for invalid orders (which
    /// [`SuperSchedule::validate`] would also have caught).
    pub fn a_format_spec(&self, space: &Space) -> waco_format::Result<FormatSpec> {
        let nsparse = space.kernel.sparse_ndims();
        FormatSpec::new(
            space.sparse_dims.clone(),
            self.splits[..nsparse].to_vec(),
            self.format.order.clone(),
            self.format.formats.clone(),
        )
    }

    /// Extent of a loop variable under this schedule's splits.
    pub fn loop_extent(&self, space: &Space, var: LoopVar) -> usize {
        let n = space.dim_extent(var.dim);
        let s = self.splits[var.dim].min(n);
        match var.part {
            AxisPart::Outer => n.div_ceil(s),
            AxisPart::Inner => s,
        }
    }

    /// A compact human-readable description.
    pub fn describe(&self, space: &Space) -> String {
        let names = self.kernel.dim_names();
        let var_name = |v: &LoopVar| {
            format!(
                "{}{}",
                names[v.dim],
                if v.part == AxisPart::Outer { "1" } else { "0" }
            )
        };
        let loops: Vec<String> = self.loop_order.iter().map(var_name).collect();
        let par = match &self.parallel {
            Some(p) => format!(" par({},t={},c={})", var_name(&p.var), p.threads, p.chunk),
            None => " serial".to_string(),
        };
        let fmt = self
            .a_format_spec(space)
            .map(|f| f.describe())
            .unwrap_or_else(|_| "<invalid>".into());
        format!(
            "{} splits={:?} loops=[{}]{} A=[{}]",
            self.kernel,
            self.splits,
            loops.join(","),
            par,
            fmt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_tensor::gen::Rng64;

    #[test]
    fn kernel_metadata() {
        assert_eq!(Kernel::SpMV.ndims(), 2);
        assert_eq!(Kernel::MTTKRP.sparse_ndims(), 3);
        assert!(Kernel::SpMM.is_reduction(1));
        assert!(!Kernel::SDDMM.is_reduction(1));
        assert!(Kernel::SDDMM.is_reduction(2));
        assert!(!Kernel::MTTKRP.is_splittable(3));
        assert!(Kernel::MTTKRP.is_reduction(2));
    }

    #[test]
    fn workspace_kernel_metadata() {
        // The workspace kernels are opt-in: ALL stays the paper's four.
        assert_eq!(Kernel::ALL.len(), 4);
        for k in Kernel::WORKSPACE {
            assert!(k.uses_workspace());
            assert_eq!(k.sparse_ndims(), 2);
            assert_eq!(k.ndims(), 3);
        }
        assert!(!Kernel::SpMM.uses_workspace());
        // SpGEMM mirrors SpMM's iteration shape (i, k reduction, j).
        assert!(Kernel::SpGEMM.is_reduction(1));
        assert!(!Kernel::SpGEMM.is_reduction(2));
        // The fused kernel only parallelizes over rows.
        assert!(Kernel::SddmmSpmm.is_reduction(1));
        assert!(Kernel::SddmmSpmm.is_reduction(2));
        assert!(!Kernel::SddmmSpmm.is_reduction(0));
        // Both sample and validate through the generic Space machinery.
        for k in Kernel::WORKSPACE {
            let space = Space::new(k, vec![64, 48], 24);
            let mut rng = Rng64::seed_from(9);
            for _ in 0..8 {
                let s = SuperSchedule::sample(&space, &mut rng);
                s.validate(&space).unwrap();
                assert!(s.a_format_spec(&space).is_ok());
            }
        }
    }

    #[test]
    fn space_loop_vars() {
        let s = Space::new(Kernel::SpMV, vec![100, 100], 0);
        assert_eq!(s.loop_vars().len(), 4);
        assert_eq!(s.parallelizable_vars().len(), 2);
        let m = Space::new(Kernel::MTTKRP, vec![32, 32, 32], 16);
        assert_eq!(m.loop_vars().len(), 7);
        assert_eq!(m.a_axes().len(), 6);
        // i1, i0, j are parallelizable for MTTKRP.
        assert_eq!(m.parallelizable_vars().len(), 3);
    }

    #[test]
    fn space_size_is_astronomical() {
        let s = Space::new(Kernel::SpMV, vec![1 << 17, 1 << 17], 0);
        // Table 3: 16² splits × 4! loops × (2·2·9) par × 4! levels × 2⁴
        // formats ≈ 8.5e7 — far beyond exhaustive search.
        assert!(s.size_estimate() > 5e7);
    }

    #[test]
    fn validate_catches_violations() {
        let space = Space::new(Kernel::SpMM, vec![64, 64], 32);
        let mut s = named::default_csr(&space);
        assert!(s.validate(&space).is_ok());

        let mut bad = s.clone();
        bad.splits[0] = 0;
        assert!(bad.validate(&space).is_err());

        let mut bad = s.clone();
        bad.loop_order.swap_remove(0);
        assert!(bad.validate(&space).is_err());

        let mut bad = s.clone();
        bad.parallel = Some(Parallelize {
            var: LoopVar::outer(1),
            threads: 4,
            chunk: 8,
        });
        assert!(bad.validate(&space).is_err(), "k is a reduction dim");

        s.parallel = None;
        assert!(s.validate(&space).is_ok());
    }

    #[test]
    fn loop_extents_follow_splits() {
        let space = Space::new(Kernel::SpMV, vec![100, 100], 0);
        let mut s = named::default_csr(&space);
        s.splits[0] = 8;
        assert_eq!(s.loop_extent(&space, LoopVar::outer(0)), 13);
        assert_eq!(s.loop_extent(&space, LoopVar::inner(0)), 8);
        assert_eq!(s.loop_extent(&space, LoopVar::outer(1)), 100);
        assert_eq!(s.loop_extent(&space, LoopVar::inner(1)), 1);
    }

    #[test]
    fn describe_is_readable() {
        let space = Space::new(Kernel::SpMV, vec![16, 16], 0);
        let mut rng = Rng64::seed_from(2);
        let s = SuperSchedule::sample(&space, &mut rng);
        let d = s.describe(&space);
        assert!(d.contains("SpMV"));
        assert!(d.contains("loops="));
    }

    #[test]
    fn format_spec_roundtrip() {
        let space = Space::new(Kernel::SpMM, vec![32, 48], 8);
        let s = named::default_csr(&space);
        let spec = s.a_format_spec(&space).unwrap();
        assert_eq!(spec.dims(), &[32, 48]);
        assert_eq!(spec.describe(), "i1(U) k1(C) i0(U) k0(U)");
    }
}
