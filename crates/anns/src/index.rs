//! The WACO schedule index: sampled SuperSchedules, their embeddings, an
//! HNSW graph, and cost-model-guided queries.

use crate::hnsw::Hnsw;
use waco_model::CostModel;
use waco_schedule::encode::{self, Encoded};
use waco_schedule::{sample, Space, SuperSchedule};
use waco_sparseconv::Pattern;

/// Timing breakdown of one WACO search (Figure 16b): the pattern feature is
/// extracted once; ANNS then evaluates only the predictor head per vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchBreakdown {
    /// Wall time of the (single) feature extraction.
    pub feature_seconds: f64,
    /// Wall time of the graph traversal + head evaluations.
    pub anns_seconds: f64,
    /// Number of cost evaluations performed by ANNS.
    pub evals: usize,
    /// Candidates discarded by the Stage-1 asymptotic pruner before the
    /// traversal ran (0 for an unpruned search).
    pub pruned: usize,
}

impl SearchBreakdown {
    /// Fraction of total search time spent evaluating costs (the §4.2
    /// metric where ANNS reaches ~94% vs ≤8% for black-box tuners —
    /// here the whole ANNS phase *is* cost evaluation plus cheap graph
    /// hops).
    pub fn eval_fraction(&self) -> f64 {
        let total = self.feature_seconds + self.anns_seconds;
        if total <= 0.0 {
            0.0
        } else {
            self.anns_seconds / total
        }
    }
}

/// A pre-built search structure over the SuperSchedule space of one kernel
/// (§4.2.2's "graph built with the SuperSchedules which appeared in our
/// training dataset"; here: a deterministic sample of the space).
#[derive(Debug)]
pub struct ScheduleIndex {
    /// The vertex schedules.
    pub schedules: Vec<SuperSchedule>,
    /// Their structured encodings.
    pub encodings: Vec<Encoded>,
    /// Their program embeddings under the model used at build time.
    pub embeddings: Vec<Vec<f32>>,
    /// The HNSW graph over the embeddings (l2).
    pub hnsw: Hnsw,
    space: Space,
}

impl ScheduleIndex {
    /// Samples `count` schedules of `space`, embeds them with `model`, and
    /// builds the graph. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn build(model: &CostModel, space: &Space, count: usize, seed: u64) -> Self {
        Self::build_with_extras(model, space, count, seed, Vec::new())
    }

    /// Like [`ScheduleIndex::build`], but additionally indexes the given
    /// schedules. The paper builds its graph from the SuperSchedules of the
    /// training dataset, which is naturally dense in reasonable
    /// configurations; `extras` lets callers reproduce that density by
    /// seeding a portfolio of classic formats and parallelizations next to
    /// the uniform samples.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`; invalid extras panic on encoding.
    pub fn build_with_extras(
        model: &CostModel,
        space: &Space,
        count: usize,
        seed: u64,
        extras: Vec<SuperSchedule>,
    ) -> Self {
        assert!(count > 0, "index needs at least one schedule");
        let total = count + extras.len();
        let mut schedules = Vec::with_capacity(total);
        let mut encodings = Vec::with_capacity(total);
        let mut embeddings = Vec::with_capacity(total);
        for i in 0..count {
            schedules.push(sample::sample_indexed(space, i as u64, seed));
        }
        schedules.extend(extras);
        for s in &schedules {
            let enc = encode::encode_structured(s, space);
            embeddings.push(model.embed(&enc));
            encodings.push(enc);
        }
        let m = 12.min(schedules.len().max(2) - 1).max(2);
        let hnsw = Hnsw::build(embeddings.clone(), m, 64, seed ^ 0xA5A5);
        Self {
            schedules,
            encodings,
            embeddings,
            hnsw,
            space: space.clone(),
        }
    }

    /// Reassembles an index from snapshot-loaded parts (see
    /// [`crate::persist`]); `build_with_extras` and the snapshot loader are
    /// the only constructors, so the field invariants (parallel lengths,
    /// graph over exactly these embeddings) hold by construction there.
    pub(crate) fn from_loaded_parts(
        schedules: Vec<SuperSchedule>,
        encodings: Vec<Encoded>,
        embeddings: Vec<Vec<f32>>,
        hnsw: Hnsw,
        space: &Space,
    ) -> Self {
        debug_assert_eq!(schedules.len(), embeddings.len());
        debug_assert_eq!(schedules.len(), encodings.len());
        Self {
            schedules,
            encodings,
            embeddings,
            hnsw,
            space: space.clone(),
        }
    }

    /// Number of indexed schedules.
    pub fn len(&self) -> usize {
        self.schedules.len()
    }

    /// Whether the index is empty (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.schedules.is_empty()
    }

    /// The space the index was built for.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Queries with a pre-extracted pattern feature: ANNS over the graph
    /// with `model.score(feat, embedding)` as the distance. Returns the
    /// top-k `(schedule index, predicted cost)` plus the best-so-far trace.
    pub fn query_with_feature(
        &self,
        model: &CostModel,
        feat: &[f32],
        k: usize,
        ef: usize,
    ) -> (Vec<(usize, f32)>, usize, Vec<f32>) {
        let _s = waco_obs::span("anns_traversal");
        let out = self
            .hnsw
            .search_generic(|n| model.score(feat, &self.embeddings[n]), k, ef);
        if waco_obs::enabled() {
            waco_obs::counter("anns.queries", 1);
            waco_obs::counter("anns.predictor_calls", out.1 as u64);
        }
        out
    }

    /// [`ScheduleIndex::query_with_feature`] restricted to the candidates
    /// flagged in `allowed` — Stage 2 of the two-stage tuning pipeline. The
    /// mask is computed by the caller (typically from
    /// `ExecutionPlan::asymptotic_bound` over the indexed schedules); the
    /// index itself stays pruning-agnostic. Masked vertices are traversed
    /// but never scored, so the returned eval count is the pruned-path
    /// measurement the `search_pruning` gate bounds.
    ///
    /// # Panics
    ///
    /// Panics if `allowed.len() != self.len()` or no candidate is allowed.
    pub fn query_with_feature_masked(
        &self,
        model: &CostModel,
        feat: &[f32],
        k: usize,
        ef: usize,
        allowed: &[bool],
    ) -> (Vec<(usize, f32)>, usize, Vec<f32>) {
        assert_eq!(allowed.len(), self.len(), "mask covers every candidate");
        assert!(
            allowed.iter().any(|&a| a),
            "pruner must leave at least one candidate"
        );
        let _s = waco_obs::span("anns_traversal");
        let out = self.hnsw.search_generic_masked(
            |n| model.score(feat, &self.embeddings[n]),
            k,
            ef,
            allowed,
        );
        if waco_obs::enabled() {
            waco_obs::counter("anns.queries", 1);
            waco_obs::counter("anns.predictor_calls", out.1 as u64);
            let pruned = allowed.iter().filter(|&&a| !a).count();
            waco_obs::counter("anns.pruned_candidates", pruned as u64);
        }
        out
    }

    /// Full WACO search: extract the feature, then ANNS — with the
    /// Figure 16b timing breakdown.
    pub fn query(
        &self,
        model: &mut CostModel,
        pattern: &Pattern,
        k: usize,
        ef: usize,
    ) -> (Vec<(usize, f32)>, SearchBreakdown) {
        let t0 = std::time::Instant::now();
        let feat = model.extract_feature(pattern);
        let feature_seconds = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let (res, evals, _) = self.query_with_feature(model, &feat, k, ef);
        let anns_seconds = t1.elapsed().as_secs_f64();
        (
            res,
            SearchBreakdown {
                feature_seconds,
                anns_seconds,
                evals,
                pruned: 0,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_model::CostModelConfig;
    use waco_schedule::Kernel;
    use waco_tensor::gen::{self, Rng64};

    fn setup() -> (Space, CostModel, ScheduleIndex) {
        let mut rng = Rng64::seed_from(1);
        let space = Space::new(Kernel::SpMV, vec![32, 32], 0);
        let layout = encode::layout(&space);
        let model = CostModel::for_kernel(Kernel::SpMV, &layout, CostModelConfig::tiny(), &mut rng);
        let index = ScheduleIndex::build(&model, &space, 120, 7);
        (space, model, index)
    }

    #[test]
    fn build_shapes() {
        let (_s, _m, index) = setup();
        assert_eq!(index.len(), 120);
        assert!(!index.is_empty());
        assert_eq!(index.embeddings.len(), 120);
        assert_eq!(index.hnsw.len(), 120);
    }

    #[test]
    fn query_returns_low_scores() {
        let (_s, mut model, index) = setup();
        let mut rng = Rng64::seed_from(2);
        let m = gen::uniform_random(32, 32, 0.1, &mut rng);
        let pattern = Pattern::from_matrix(&m);
        let (res, bd) = index.query(&mut model, &pattern, 5, 48);
        assert_eq!(res.len(), 5);
        assert!(bd.evals > 0 && bd.evals <= index.len());
        // ANNS result should be close to the brute-force best prediction.
        let feat = model.extract_feature(&pattern);
        let brute: f32 = index
            .embeddings
            .iter()
            .map(|e| model.score(&feat, e))
            .fold(f32::INFINITY, f32::min);
        let got = res[0].1;
        assert!(
            got <= brute + 0.3 * brute.abs().max(0.1),
            "ANNS best {got} vs brute {brute}"
        );
    }

    #[test]
    fn breakdown_fraction_sane() {
        let (_s, mut model, index) = setup();
        let mut rng = Rng64::seed_from(3);
        let m = gen::uniform_random(48, 48, 0.08, &mut rng);
        let (_res, bd) = index.query(&mut model, &Pattern::from_matrix(&m), 3, 32);
        let f = bd.eval_fraction();
        assert!((0.0..=1.0).contains(&f));
        assert!(bd.feature_seconds >= 0.0 && bd.anns_seconds >= 0.0);
    }

    #[test]
    fn masked_query_only_scores_survivors() {
        let (_s, mut model, index) = setup();
        let mut rng = Rng64::seed_from(4);
        let m = gen::uniform_random(32, 32, 0.1, &mut rng);
        let feat = model.extract_feature(&Pattern::from_matrix(&m));
        // Allow every third candidate.
        let allowed: Vec<bool> = (0..index.len()).map(|i| i % 3 == 0).collect();
        let (res, evals, _) = index.query_with_feature_masked(&model, &feat, 5, 48, &allowed);
        assert!(!res.is_empty());
        assert!(res.iter().all(|&(n, _)| allowed[n]));
        assert!(evals <= allowed.iter().filter(|&&a| a).count());
        // Determinism: the same mask and feature give the same answer.
        let (res2, evals2, _) = index.query_with_feature_masked(&model, &feat, 5, 48, &allowed);
        assert_eq!(res, res2);
        assert_eq!(evals, evals2);
    }

    #[test]
    fn deterministic_build() {
        let (space, model, index) = setup();
        let again = ScheduleIndex::build(&model, &space, 120, 7);
        assert_eq!(index.schedules[10], again.schedules[10]);
        assert_eq!(index.embeddings[10], again.embeddings[10]);
    }
}
