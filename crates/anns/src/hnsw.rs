//! A from-scratch HNSW graph (Malkov & Yashunin, 2018).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use waco_tensor::gen::Rng64;

/// Squared l2 distance.
fn l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f32,
    node: usize,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by distance; ties by node id for determinism.
        self.dist
            .total_cmp(&other.dist)
            .then(self.node.cmp(&other.node))
    }
}

/// A Hierarchical Navigable Small World graph over `f32` vectors.
///
/// Built with l2; searchable with l2 ([`Hnsw::search_l2`]) or with any
/// memoized scalar cost ([`Hnsw::search_generic`]) — the latter is how WACO
/// retrieves the schedule minimizing the *predicted runtime* while the graph
/// topology still comes from embedding proximity.
#[derive(Debug, Clone)]
pub struct Hnsw {
    vectors: Vec<Vec<f32>>,
    /// `links[node][level]` = neighbor list.
    links: Vec<Vec<Vec<usize>>>,
    levels: Vec<usize>,
    entry: usize,
    max_level: usize,
    m: usize,
}

/// Borrowed view of a graph's fields for serialization:
/// `(vectors, links, levels, entry, max_level, m)`.
pub(crate) type HnswParts<'a> = (
    &'a [Vec<f32>],
    &'a [Vec<Vec<usize>>],
    &'a [usize],
    usize,
    usize,
    usize,
);

impl Hnsw {
    /// Builds the graph with connectivity `m` and construction beam
    /// `ef_construction`.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or `m == 0`.
    pub fn build(vectors: Vec<Vec<f32>>, m: usize, ef_construction: usize, seed: u64) -> Self {
        assert!(!vectors.is_empty(), "cannot build an empty graph");
        assert!(m > 0, "connectivity must be positive");
        let n = vectors.len();
        let mut rng = Rng64::seed_from(seed);
        let ml = 1.0 / (m as f64).ln().max(0.7);
        let mut g = Hnsw {
            vectors,
            links: Vec::with_capacity(n),
            levels: Vec::with_capacity(n),
            entry: 0,
            max_level: 0,
            m,
        };
        for i in 0..n {
            let u = rng.unit_f64().max(1e-12);
            let level = ((-u.ln()) * ml).floor() as usize;
            g.insert(i, level, ef_construction);
        }
        g
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the graph is empty (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The stored vector of a node.
    pub fn vector(&self, node: usize) -> &[f32] {
        &self.vectors[node]
    }

    /// Layer-0 neighbors of a node (the KNN-graph view).
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.links[node][0]
    }

    /// Decomposes the graph for serialization:
    /// `(vectors, links, levels, entry, max_level, m)`.
    pub(crate) fn to_parts(&self) -> HnswParts<'_> {
        (
            &self.vectors,
            &self.links,
            &self.levels,
            self.entry,
            self.max_level,
            self.m,
        )
    }

    /// Reassembles a graph from serialized parts, validating every
    /// structural invariant ([`Hnsw::to_parts`] is the inverse).
    pub(crate) fn from_parts(
        vectors: Vec<Vec<f32>>,
        links: Vec<Vec<Vec<usize>>>,
        levels: Vec<usize>,
        entry: usize,
        max_level: usize,
        m: usize,
    ) -> Result<Self, String> {
        let n = vectors.len();
        if n == 0 {
            return Err("graph has no vectors".into());
        }
        if m == 0 {
            return Err("connectivity m is zero".into());
        }
        if links.len() != n || levels.len() != n {
            return Err(format!(
                "inconsistent lengths: {n} vectors, {} link lists, {} levels",
                links.len(),
                levels.len()
            ));
        }
        if entry >= n {
            return Err(format!("entry node {entry} out of range (n = {n})"));
        }
        if levels.iter().any(|&l| l > max_level) {
            return Err("node level exceeds max_level".into());
        }
        if levels[entry] != max_level {
            return Err("entry node is not at max_level".into());
        }
        for (node, (node_links, &level)) in links.iter().zip(&levels).enumerate() {
            if node_links.len() != level + 1 {
                return Err(format!(
                    "node {node}: {} link levels for level {level}",
                    node_links.len()
                ));
            }
            for layer in node_links {
                if layer.iter().any(|&nb| nb >= n) {
                    return Err(format!("node {node}: neighbor id out of range"));
                }
            }
        }
        Ok(Hnsw {
            vectors,
            links,
            levels,
            entry,
            max_level,
            m,
        })
    }

    fn insert(&mut self, id: usize, level: usize, ef_c: usize) {
        self.links.push(vec![Vec::new(); level + 1]);
        self.levels.push(level);
        debug_assert_eq!(self.links.len(), id + 1);
        if id == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }
        let q = self.vectors[id].clone();
        let mut cur = self.entry;
        // Greedy descent through levels above the new node's level.
        let top = self.max_level;
        for l in ((level + 1)..=top).rev() {
            cur = self.greedy_closest(&q, cur, l);
        }
        // Connect at each level from min(level, top) down to 0.
        for l in (0..=level.min(top)).rev() {
            let found = self.search_layer_l2(&q, &[cur], ef_c, l);
            let max_links = if l == 0 { 2 * self.m } else { self.m };
            let selected: Vec<usize> = found.iter().take(self.m).map(|&(_, n)| n).collect();
            for &nb in &selected {
                self.links[id][l].push(nb);
                self.links[nb][l].push(id);
                if self.links[nb][l].len() > max_links {
                    self.prune(nb, l, max_links);
                }
            }
            if let Some(&(_, best)) = found.first() {
                cur = best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = id;
        }
    }

    fn prune(&mut self, node: usize, level: usize, keep: usize) {
        let base = self.vectors[node].clone();
        let mut nbrs = std::mem::take(&mut self.links[node][level]);
        nbrs.sort_by(|&a, &b| {
            l2(&base, &self.vectors[a])
                .total_cmp(&l2(&base, &self.vectors[b]))
                .then(a.cmp(&b))
        });
        nbrs.dedup();
        nbrs.truncate(keep);
        self.links[node][level] = nbrs;
    }

    fn greedy_closest(&self, q: &[f32], mut cur: usize, level: usize) -> usize {
        let mut cur_d = l2(q, &self.vectors[cur]);
        loop {
            let mut improved = false;
            for &nb in &self.links[cur][level] {
                let d = l2(q, &self.vectors[nb]);
                if d < cur_d {
                    cur = nb;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    fn search_layer_l2(
        &self,
        q: &[f32],
        entries: &[usize],
        ef: usize,
        level: usize,
    ) -> Vec<(f32, usize)> {
        self.search_layer(&mut |n| l2(q, &self.vectors[n]), entries, ef, level, &mut 0)
    }

    /// Beam search on one layer with an arbitrary distance.
    fn search_layer(
        &self,
        dist: &mut impl FnMut(usize) -> f32,
        entries: &[usize],
        ef: usize,
        level: usize,
        evals: &mut usize,
    ) -> Vec<(f32, usize)> {
        let mut visited: HashSet<usize> = HashSet::new();
        let mut candidates: BinaryHeap<std::cmp::Reverse<HeapItem>> = BinaryHeap::new();
        let mut results: BinaryHeap<HeapItem> = BinaryHeap::new();
        for &e in entries {
            if visited.insert(e) {
                let d = dist(e);
                *evals += 1;
                candidates.push(std::cmp::Reverse(HeapItem { dist: d, node: e }));
                results.push(HeapItem { dist: d, node: e });
            }
        }
        while let Some(std::cmp::Reverse(c)) = candidates.pop() {
            let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
            if c.dist > worst && results.len() >= ef {
                break;
            }
            for &nb in &self.links[c.node][level] {
                if !visited.insert(nb) {
                    continue;
                }
                let d = dist(nb);
                *evals += 1;
                let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
                if results.len() < ef || d < worst {
                    candidates.push(std::cmp::Reverse(HeapItem { dist: d, node: nb }));
                    results.push(HeapItem { dist: d, node: nb });
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f32, usize)> = results.into_iter().map(|h| (h.dist, h.node)).collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// k-nearest neighbors by l2.
    pub fn search_l2(&self, q: &[f32], k: usize, ef: usize) -> Vec<(usize, f32)> {
        let mut cur = self.entry;
        for l in (1..=self.max_level).rev() {
            cur = self.greedy_closest(q, cur, l);
        }
        let found = self.search_layer_l2(q, &[cur], ef.max(k), 0);
        found.into_iter().take(k).map(|(d, n)| (n, d)).collect()
    }

    /// Retrieves the `k` nodes minimizing an arbitrary cost by traversing
    /// the graph (the auto-scheduling search of §4.2.2). The cost is
    /// memoized, so each node is evaluated at most once. Returns
    /// `(top-k (node, cost), number of cost evaluations, best-so-far trace
    /// per evaluation)`.
    pub fn search_generic(
        &self,
        mut cost: impl FnMut(usize) -> f32,
        k: usize,
        ef: usize,
    ) -> (Vec<(usize, f32)>, usize, Vec<f32>) {
        let mut memo: HashMap<usize, f32> = HashMap::new();
        let mut trace: Vec<f32> = Vec::new();
        let mut best = f32::INFINITY;
        let mut evals = 0usize;
        {
            let mut dist = |n: usize| -> f32 {
                if let Some(&d) = memo.get(&n) {
                    return d;
                }
                let d = cost(n);
                memo.insert(n, d);
                best = best.min(d);
                trace.push(best);
                d
            };
            let mut cur = self.entry;
            for l in (1..=self.max_level).rev() {
                // Greedy descent with the generic cost.
                let mut cur_d = dist(cur);
                loop {
                    let mut improved = false;
                    for &nb in &self.links[cur][l] {
                        let d = dist(nb);
                        if d < cur_d {
                            cur = nb;
                            cur_d = d;
                            improved = true;
                        }
                    }
                    if !improved {
                        break;
                    }
                }
            }
            let found = self.search_layer(&mut dist, &[cur], ef.max(k), 0, &mut evals);
            let evals_total = memo.len();
            let result: Vec<(usize, f32)> =
                found.into_iter().take(k).map(|(d, n)| (n, d)).collect();
            (result, evals_total, trace)
        }
    }

    /// [`Hnsw::search_generic`] restricted to the nodes flagged in `allowed`
    /// — the Stage-2 traversal of the two-stage tuning pipeline, where
    /// Stage 1 has already discarded asymptotically-dominated candidates.
    ///
    /// Masked nodes are *transparent waypoints*: the beam traverses their
    /// links (inheriting the discovering parent's distance, so connectivity
    /// through a pruned region is preserved) but never evaluates their cost
    /// and never returns them. The eval count therefore counts allowed-node
    /// evaluations only — the quantity the pruning gate bounds. The search
    /// runs entirely on layer 0 seeded from the graph entry (the graphs
    /// here are small; the upper-layer descent would evaluate masked nodes
    /// for navigation without tightening the result set).
    ///
    /// As long as one allowed node is reachable from the entry on layer 0,
    /// the result is nonempty: the termination test only fires once `ef`
    /// allowed results exist.
    pub fn search_generic_masked(
        &self,
        mut cost: impl FnMut(usize) -> f32,
        k: usize,
        ef: usize,
        allowed: &[bool],
    ) -> (Vec<(usize, f32)>, usize, Vec<f32>) {
        debug_assert_eq!(allowed.len(), self.len(), "mask covers every node");
        let is_allowed = |n: usize| allowed.get(n).copied().unwrap_or(true);
        let scored = std::cell::Cell::new(0usize);
        let memo: std::cell::RefCell<HashMap<usize, f32>> = std::cell::RefCell::new(HashMap::new());
        let mut trace: Vec<f32> = Vec::new();
        let mut best = f32::INFINITY;
        let mut dist = |n: usize| -> f32 {
            if let Some(&d) = memo.borrow().get(&n) {
                return d;
            }
            let d = cost(n);
            memo.borrow_mut().insert(n, d);
            scored.set(scored.get() + 1);
            best = best.min(d);
            trace.push(best);
            d
        };
        let ef = ef.max(k);
        // Stage-2 evaluation budget. The pruner already vouched for every
        // survivor's complexity class; this walk only has to pick a top-k,
        // so 4·ef scored survivors are enough — even when Stage 1 abstained
        // and the mask is full, which is exactly when the budget is the
        // only thing separating the staged search from the unpruned one.
        let max_evals = 4 * ef;
        // Greedy upper-layer descent over the allowed nodes, mirroring the
        // unmasked query: masked nodes cannot be scored, so the walk only
        // steps onto survivors. This matters under the eval budget — the
        // layer-0 beam starts in the model's neighborhood instead of
        // spending its budget walking in from the global entry.
        let mut cur = self.entry;
        let mut cur_d = if is_allowed(cur) {
            dist(cur)
        } else {
            f32::INFINITY
        };
        for l in (1..=self.max_level).rev() {
            loop {
                let mut improved = false;
                for &nb in &self.links[cur][l] {
                    if !is_allowed(nb) {
                        continue;
                    }
                    let d = dist(nb);
                    if d < cur_d {
                        cur = nb;
                        cur_d = d;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        let mut visited: HashSet<usize> = HashSet::new();
        let mut candidates: BinaryHeap<std::cmp::Reverse<HeapItem>> = BinaryHeap::new();
        let mut results: BinaryHeap<HeapItem> = BinaryHeap::new();
        visited.insert(cur);
        let seed_d = if is_allowed(cur) {
            let d = dist(cur);
            results.push(HeapItem { dist: d, node: cur });
            d
        } else {
            0.0
        };
        candidates.push(std::cmp::Reverse(HeapItem {
            dist: seed_d,
            node: cur,
        }));
        // Spend half the budget on a deterministic sample of the survivors
        // before the beam runs. The beam alone only probes the basin it
        // starts in; on a rugged (or nearly flat) cost surface that misses
        // the global argmin. The sample is a greedy *dominating set* of
        // the masked layer-0 graph — walk the survivors in id order and
        // pick every node not already adjacent to a pick — so each
        // survivor ends up at most one graph hop from a scored probe.
        // That is exactly the coverage the beam needs: expanding any
        // probe that scores well reaches its whole embedding cluster,
        // including interior nodes. (A farthest-point or strided sample
        // lacks this property: the one favors cluster *boundaries*, the
        // other aliases against the id lattice of parallelization
        // variants, and either can leave a rich cluster with no probe at
        // all.)
        let survivors: Vec<usize> = (0..self.len()).filter(|&n| is_allowed(n)).collect();
        let sample = (max_evals / 2).max(1).min(survivors.len());
        let mut picked: Vec<usize> = Vec::with_capacity(sample);
        let mut covered: HashSet<usize> = HashSet::new();
        for &n in &survivors {
            if picked.len() >= sample {
                break;
            }
            if covered.contains(&n) {
                continue;
            }
            picked.push(n);
            covered.insert(n);
            for &nb in &self.links[n][0] {
                covered.insert(nb);
            }
        }
        // Leftover sample budget (small graphs dominate quickly): fill
        // with the still-uncovered two-hop fringe, then first-come ids.
        if picked.len() < sample {
            for &n in &survivors {
                if picked.len() >= sample {
                    break;
                }
                if !picked.contains(&n) && self.links[n][0].iter().all(|nb| !picked.contains(nb)) {
                    picked.push(n);
                }
            }
        }
        for n in picked {
            if !visited.insert(n) {
                continue;
            }
            let d = dist(n);
            candidates.push(std::cmp::Reverse(HeapItem { dist: d, node: n }));
            results.push(HeapItem { dist: d, node: n });
            if results.len() > ef {
                results.pop();
            }
        }
        while let Some(std::cmp::Reverse(c)) = candidates.pop() {
            let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
            if c.dist > worst && results.len() >= ef {
                break;
            }
            if scored.get() >= max_evals {
                break;
            }
            // Expand every layer's links of the popped node, not just
            // layer 0: the upper layers are the graph's long-range
            // shortcuts, and under a tight budget the walk cannot afford
            // to reach distant basins one layer-0 hop at a time.
            for &nb in self.links[c.node].iter().flatten() {
                if !visited.insert(nb) {
                    continue;
                }
                if !is_allowed(nb) {
                    // Transparent: keep walking through the pruned node at
                    // the parent's priority, without scoring it — but only
                    // while the beam is still accepting. Without this gate
                    // the pruned nodes form zero-cost tunnels that drag
                    // the walk through the whole graph, scoring every
                    // survivor and erasing the pruning win.
                    let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
                    if results.len() < ef || c.dist < worst {
                        candidates.push(std::cmp::Reverse(HeapItem {
                            dist: c.dist,
                            node: nb,
                        }));
                    }
                    continue;
                }
                let d = dist(nb);
                let worst = results.peek().map(|r| r.dist).unwrap_or(f32::INFINITY);
                if results.len() < ef || d < worst {
                    candidates.push(std::cmp::Reverse(HeapItem { dist: d, node: nb }));
                    results.push(HeapItem { dist: d, node: nb });
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        // Under a budget every evaluation is precious: rank the top-k over
        // *all* scored nodes (descent waypoints included), not just the
        // ef-heap — the heap may have evicted a node the budgeted beam
        // never got to re-add. With a full mask keep the plain heap ranking
        // so the query stays byte-for-byte the unpruned one.
        let memo = memo.into_inner();
        let mut out: Vec<(f32, usize)> = if max_evals == usize::MAX {
            results.into_iter().map(|h| (h.dist, h.node)).collect()
        } else {
            memo.iter().map(|(&n, &d)| (d, n)).collect()
        };
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let result: Vec<(usize, f32)> = out.into_iter().take(k).map(|(d, n)| (n, d)).collect();
        (result, memo.len(), trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_vectors(n: usize) -> Vec<Vec<f32>> {
        // Points on a line: easy exact answers.
        (0..n).map(|i| vec![i as f32, 0.0]).collect()
    }

    #[test]
    fn exact_on_a_line() {
        let g = Hnsw::build(grid_vectors(200), 8, 64, 1);
        let res = g.search_l2(&[57.2, 0.0], 3, 32);
        let ids: Vec<usize> = res.iter().map(|&(n, _)| n).collect();
        assert_eq!(ids[0], 57);
        assert!(ids.contains(&58));
    }

    #[test]
    fn recall_on_random_vectors() {
        let mut rng = Rng64::seed_from(2);
        let vectors: Vec<Vec<f32>> = (0..300)
            .map(|_| (0..8).map(|_| rng.unit_f32()).collect())
            .collect();
        let g = Hnsw::build(vectors.clone(), 12, 96, 3);
        let mut hits = 0;
        let queries = 30;
        for qi in 0..queries {
            let q: Vec<f32> = (0..8).map(|_| rng.unit_f32()).collect();
            // Brute-force 5-NN.
            let mut all: Vec<(f32, usize)> = vectors
                .iter()
                .enumerate()
                .map(|(i, v)| (l2(&q, v), i))
                .collect();
            all.sort_by(|a, b| a.0.total_cmp(&b.0));
            let truth: HashSet<usize> = all[..5].iter().map(|&(_, i)| i).collect();
            let got = g.search_l2(&q, 5, 64);
            hits += got.iter().filter(|&&(n, _)| truth.contains(&n)).count();
            let _ = qi;
        }
        let recall = hits as f64 / (5 * queries) as f64;
        assert!(recall > 0.9, "recall {recall} too low");
    }

    #[test]
    fn generic_search_finds_low_cost_nodes() {
        let g = Hnsw::build(grid_vectors(300), 8, 64, 4);
        // Cost = |x - 123|: minimum at node 123; embeddings correlate with
        // cost, which is the WACO assumption.
        let (res, evals, trace) = g.search_generic(|n| (n as f32 - 123.0).abs(), 5, 48);
        assert_eq!(res[0].0, 123);
        assert!(evals < 300, "ANNS must not evaluate everything");
        assert!(!trace.is_empty());
        // Best-so-far trace is monotone nonincreasing.
        for w in trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn single_node_graph() {
        let g = Hnsw::build(vec![vec![1.0, 2.0]], 4, 8, 5);
        assert_eq!(g.len(), 1);
        let res = g.search_l2(&[0.0, 0.0], 3, 8);
        assert_eq!(res.len(), 1);
        let (r, _, _) = g.search_generic(|_| 7.0, 2, 8);
        assert_eq!(r[0], (0, 7.0));
    }

    #[test]
    fn deterministic_build_and_search() {
        let v = grid_vectors(100);
        let a = Hnsw::build(v.clone(), 6, 32, 9);
        let b = Hnsw::build(v, 6, 32, 9);
        assert_eq!(
            a.search_l2(&[40.1, 0.0], 4, 16),
            b.search_l2(&[40.1, 0.0], 4, 16)
        );
    }

    #[test]
    fn neighbors_exposed() {
        let g = Hnsw::build(grid_vectors(50), 4, 32, 11);
        assert!(!g.neighbors(25).is_empty());
        assert!(!g.is_empty());
    }

    #[test]
    fn masked_search_never_returns_or_evaluates_masked_nodes() {
        let g = Hnsw::build(grid_vectors(300), 8, 64, 4);
        // Mask out everything below 150 — including the cost argmin at 123.
        let allowed: Vec<bool> = (0..300).map(|n| n >= 150).collect();
        let mut scored: Vec<usize> = Vec::new();
        let (res, evals, _) = g.search_generic_masked(
            |n| {
                scored.push(n);
                (n as f32 - 123.0).abs()
            },
            5,
            48,
            &allowed,
        );
        assert!(!res.is_empty(), "survivors exist, result must be nonempty");
        assert!(res.iter().all(|&(n, _)| allowed[n]));
        assert!(scored.iter().all(|&n| allowed[n]));
        assert_eq!(evals, scored.len());
        // Best allowed node is 150; the beam must find it.
        assert_eq!(res[0].0, 150);
    }

    #[test]
    fn masked_search_with_full_mask_matches_unmasked_argmin() {
        let g = Hnsw::build(grid_vectors(300), 8, 64, 4);
        let allowed = vec![true; 300];
        let (res, evals, trace) =
            g.search_generic_masked(|n| (n as f32 - 123.0).abs(), 5, 48, &allowed);
        assert_eq!(res[0].0, 123);
        assert!(evals <= 300);
        for w in trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn masked_search_survives_a_single_survivor() {
        let g = Hnsw::build(grid_vectors(120), 6, 48, 7);
        let mut allowed = vec![false; 120];
        allowed[77] = true;
        let (res, evals, _) = g.search_generic_masked(|n| n as f32, 3, 16, &allowed);
        assert_eq!(res, vec![(77, 77.0)]);
        assert_eq!(evals, 1, "only the survivor is ever scored");
    }
}
