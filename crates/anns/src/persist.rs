//! Versioned-binary persistence for [`ScheduleIndex`] — warm-start support
//! for long-running servers.
//!
//! Building an index is the expensive part of a cold start: `count` model
//! embeddings plus an HNSW construction. Both are deterministic in
//! `(model, space, count, seed, extras)`, and the schedules themselves are
//! re-derivable from `(space, count, seed)` via
//! [`waco_schedule::sample::sample_indexed`]. So a snapshot stores only
//! what is expensive to recompute — the embeddings and the graph — and the
//! loader re-samples and re-encodes the schedules, which is cheap.
//!
//! Layout (integers little-endian, following the journal conventions of the
//! serving layer):
//!
//! ```text
//! "WACOANNS" | version u32 | tag u64 | count u64 | seed u64 | extras u64
//! | n u64 | dim u64 | embeddings n×dim f32
//! | m u64 | entry u64 | max_level u64 | levels n×u64
//! | links per node: per level: len u64, ids len×u64
//! | checksum u64   (FNV-1a 64 of everything after the magic)
//! ```
//!
//! The `tag` is caller-supplied and must cover everything the embeddings
//! depend on (model weights, space, index configuration); a snapshot whose
//! tag does not match is stale and the caller rebuilds. Corruption is
//! detected by the trailing checksum before any field is trusted.

use std::io::{Read, Write};

use waco_model::CostModel;
use waco_schedule::encode;
use waco_schedule::{sample, Space, SuperSchedule};

use crate::hnsw::Hnsw;
use crate::index::ScheduleIndex;

/// Snapshot magic.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"WACOANNS";
/// Snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Upper bound on node/vector counts accepted at load (corruption guard).
const MAX_N: u64 = 1 << 32;

/// Why a snapshot could not be written or used.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The bytes are not a valid snapshot (bad magic/version/checksum or
    /// structurally inconsistent graph).
    Format(String),
    /// The snapshot is valid but was built under a different tag (stale
    /// model weights or configuration); the caller should rebuild.
    TagMismatch {
        /// The tag the caller expected.
        expected: u64,
        /// The tag stored in the snapshot.
        found: u64,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "index snapshot I/O: {e}"),
            Self::Format(msg) => write!(f, "bad index snapshot: {msg}"),
            Self::TagMismatch { expected, found } => write!(
                f,
                "index snapshot tag {found:016x} does not match expected {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// FNV-1a 64 over a byte slice (integrity checksum; the same function the
/// serving layer uses for journal records).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A streaming FNV-1a 64 hasher for tag derivation from larger inputs
/// (e.g. serialized model weights).
#[derive(Debug, Clone, Copy)]
pub struct TagHasher(u64);

impl TagHasher {
    /// Starts from the FNV offset basis.
    pub fn new() -> Self {
        TagHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// Absorbs a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The tag.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for TagHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Write for TagHasher {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        TagHasher::write(self, buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Build parameters a snapshot must reproduce exactly; the loader
/// re-samples schedules from these.
#[derive(Debug, Clone)]
pub struct BuildParams {
    /// Number of uniformly sampled schedules.
    pub count: usize,
    /// Sampling seed (also the HNSW build seed, xor'd as in
    /// [`ScheduleIndex::build_with_extras`]).
    pub seed: u64,
    /// Portfolio schedules appended after the samples.
    pub extras: Vec<SuperSchedule>,
}

impl ScheduleIndex {
    /// Writes a snapshot of this index.
    ///
    /// `tag` must cover the model weights and configuration the embeddings
    /// were computed under; `params` must be the arguments this index was
    /// built with (they are stored for validation at load).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`].
    pub fn save_snapshot(
        &self,
        w: &mut impl Write,
        tag: u64,
        params: &BuildParams,
    ) -> Result<(), PersistError> {
        let _span = waco_obs::span("anns.snapshot_save");
        let mut body = Vec::new();
        push_u32(&mut body, SNAPSHOT_VERSION);
        push_u64(&mut body, tag);
        push_u64(&mut body, params.count as u64);
        push_u64(&mut body, params.seed);
        push_u64(&mut body, params.extras.len() as u64);

        let n = self.embeddings.len();
        let dim = self.embeddings.first().map_or(0, Vec::len);
        push_u64(&mut body, n as u64);
        push_u64(&mut body, dim as u64);
        for e in &self.embeddings {
            debug_assert_eq!(e.len(), dim);
            for &x in e {
                body.extend_from_slice(&x.to_le_bytes());
            }
        }

        let (_vectors, links, levels, entry, max_level, m) = self.hnsw.to_parts();
        push_u64(&mut body, m as u64);
        push_u64(&mut body, entry as u64);
        push_u64(&mut body, max_level as u64);
        for &l in levels {
            push_u64(&mut body, l as u64);
        }
        for node_links in links {
            for layer in node_links {
                push_u64(&mut body, layer.len() as u64);
                for &nb in layer {
                    push_u64(&mut body, nb as u64);
                }
            }
        }

        let checksum = fnv1a64(&body);
        w.write_all(SNAPSHOT_MAGIC)?;
        w.write_all(&body)?;
        w.write_all(&checksum.to_le_bytes())?;
        waco_obs::counter("anns.snapshots_saved", 1);
        Ok(())
    }

    /// Loads a snapshot, re-deriving schedules and encodings from `space` +
    /// the stored sampling parameters and skipping the expensive embedding
    /// and graph-construction passes.
    ///
    /// `expected_tag` must be computed exactly as at save time; `extras`
    /// must be the same portfolio (validated by length and by the stored
    /// checksum covering the graph built over them).
    ///
    /// # Errors
    ///
    /// [`PersistError::Format`] on corruption or structural mismatch,
    /// [`PersistError::TagMismatch`] when the snapshot is stale.
    pub fn load_snapshot(
        r: &mut impl Read,
        space: &Space,
        expected_tag: u64,
        extras: Vec<SuperSchedule>,
    ) -> Result<Self, PersistError> {
        let _span = waco_obs::span("anns.snapshot_load");
        let mut all = Vec::new();
        r.read_to_end(&mut all)?;
        if all.len() < 8 + 4 + 8 || &all[..8] != SNAPSHOT_MAGIC {
            return Err(PersistError::Format("missing WACOANNS magic".into()));
        }
        let body = &all[8..all.len() - 8];
        let stored_sum =
            u64::from_le_bytes(all[all.len() - 8..].try_into().expect("8 checksum bytes"));
        if fnv1a64(body) != stored_sum {
            return Err(PersistError::Format("checksum mismatch".into()));
        }

        let mut c = Cursor { buf: body, pos: 0 };
        let version = c.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(PersistError::Format(format!(
                "snapshot version {version}, expected {SNAPSHOT_VERSION}"
            )));
        }
        let tag = c.u64()?;
        if tag != expected_tag {
            return Err(PersistError::TagMismatch {
                expected: expected_tag,
                found: tag,
            });
        }
        let count = c.u64()?;
        let seed = c.u64()?;
        let n_extras = c.u64()?;
        if n_extras != extras.len() as u64 {
            return Err(PersistError::Format(format!(
                "snapshot has {n_extras} extras, caller supplied {}",
                extras.len()
            )));
        }
        let n = c.u64()?;
        let dim = c.u64()?;
        if n > MAX_N || dim > MAX_N || n != count + n_extras || n == 0 {
            return Err(PersistError::Format(format!(
                "inconsistent counts: n={n}, count={count}, extras={n_extras}, dim={dim}"
            )));
        }

        let mut embeddings = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let mut e = Vec::with_capacity(dim as usize);
            for _ in 0..dim {
                e.push(f32::from_le_bytes(c.bytes(4)?.try_into().expect("4")));
            }
            embeddings.push(e);
        }

        let m = c.u64()? as usize;
        let entry = c.u64()? as usize;
        let max_level = c.u64()? as usize;
        let mut levels = Vec::with_capacity(n as usize);
        for _ in 0..n {
            levels.push(c.usize_checked()?);
        }
        let mut links = Vec::with_capacity(n as usize);
        for &level in &levels {
            let mut node_links = Vec::with_capacity(level + 1);
            for _ in 0..=level {
                let len = c.u64()?;
                if len > MAX_N {
                    return Err(PersistError::Format("neighbor list too long".into()));
                }
                let mut layer = Vec::with_capacity(len as usize);
                for _ in 0..len {
                    layer.push(c.usize_checked()?);
                }
                node_links.push(layer);
            }
            links.push(node_links);
        }
        if c.pos != body.len() {
            return Err(PersistError::Format("trailing bytes in snapshot".into()));
        }

        let hnsw = Hnsw::from_parts(embeddings.clone(), links, levels, entry, max_level, m)
            .map_err(PersistError::Format)?;

        // Cheap deterministic re-derivation of what was not stored.
        let mut schedules = Vec::with_capacity(n as usize);
        for i in 0..count {
            schedules.push(sample::sample_indexed(space, i, seed));
        }
        schedules.extend(extras);
        let encodings = schedules
            .iter()
            .map(|s| encode::encode_structured(s, space))
            .collect();

        waco_obs::counter("anns.snapshots_loaded", 1);
        Ok(ScheduleIndex::from_loaded_parts(
            schedules, encodings, embeddings, hnsw, space,
        ))
    }
}

/// Derives a snapshot tag covering the model weights plus the index build
/// configuration. Serializing the model requires `&mut` (it flushes cached
/// scratch buffers), matching [`CostModel::save`].
pub fn snapshot_tag(
    model: &mut CostModel,
    space: &Space,
    count: usize,
    seed: u64,
) -> Result<u64, PersistError> {
    let mut h = TagHasher::new();
    model
        .save(&mut h)
        .map_err(|e| PersistError::Format(format!("serializing model for tag: {e}")))?;
    h.write_u64(count as u64);
    h.write_u64(seed);
    h.write_u64(space.kernel as u64);
    for &d in &space.sparse_dims {
        h.write_u64(d as u64);
    }
    h.write_u64(space.dense_extent as u64);
    for &t in &space.thread_options {
        h.write_u64(t as u64);
    }
    h.write_u64(space.max_split_log2 as u64);
    h.write_u64(space.max_chunk_log2 as u64);
    h.write_u64(SNAPSHOT_VERSION as u64);
    Ok(h.finish())
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| PersistError::Format("snapshot truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn usize_checked(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        if v > MAX_N {
            return Err(PersistError::Format(format!("index {v} out of range")));
        }
        Ok(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_model::{CostModel, CostModelConfig};
    use waco_schedule::Kernel;
    use waco_tensor::gen::Rng64;

    fn setup() -> (Space, CostModel, ScheduleIndex, BuildParams) {
        let mut rng = Rng64::seed_from(1);
        let space = Space::new(Kernel::SpMV, vec![32, 32], 0);
        let layout = encode::layout(&space);
        let model = CostModel::for_kernel(Kernel::SpMV, &layout, CostModelConfig::tiny(), &mut rng);
        let params = BuildParams {
            count: 80,
            seed: 7,
            extras: waco_schedule::named::portfolio(&space),
        };
        let index = ScheduleIndex::build_with_extras(
            &model,
            &space,
            params.count,
            params.seed,
            params.extras.clone(),
        );
        (space, model, index, params)
    }

    #[test]
    fn snapshot_roundtrip_is_identical() {
        let (space, mut model, index, params) = setup();
        let tag = snapshot_tag(&mut model, &space, params.count, params.seed).unwrap();
        let mut buf = Vec::new();
        index.save_snapshot(&mut buf, tag, &params).unwrap();

        let loaded =
            ScheduleIndex::load_snapshot(&mut &buf[..], &space, tag, params.extras.clone())
                .unwrap();
        assert_eq!(loaded.len(), index.len());
        assert_eq!(loaded.schedules, index.schedules);
        assert_eq!(loaded.embeddings, index.embeddings);
        assert_eq!(loaded.encodings.len(), index.encodings.len());

        // Identical query behavior, not just identical fields.
        let m = waco_tensor::gen::uniform_random(32, 32, 0.1, &mut Rng64::seed_from(5));
        let feat = model.extract_feature(&waco_sparseconv::Pattern::from_matrix(&m));
        let a = index.query_with_feature(&model, &feat, 5, 48);
        let b = loaded.query_with_feature(&model, &feat, 5, 48);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn stale_tag_is_rejected() {
        let (space, mut model, index, params) = setup();
        let tag = snapshot_tag(&mut model, &space, params.count, params.seed).unwrap();
        let mut buf = Vec::new();
        index.save_snapshot(&mut buf, tag, &params).unwrap();
        let err = ScheduleIndex::load_snapshot(&mut &buf[..], &space, tag ^ 1, params.extras)
            .unwrap_err();
        assert!(matches!(err, PersistError::TagMismatch { .. }));
    }

    #[test]
    fn corruption_is_detected() {
        let (space, mut model, index, params) = setup();
        let tag = snapshot_tag(&mut model, &space, params.count, params.seed).unwrap();
        let mut buf = Vec::new();
        index.save_snapshot(&mut buf, tag, &params).unwrap();

        // Flip a byte in the middle: checksum must catch it.
        let mut bad = buf.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(matches!(
            ScheduleIndex::load_snapshot(&mut &bad[..], &space, tag, params.extras.clone()),
            Err(PersistError::Format(_))
        ));

        // Truncation too.
        let cut = &buf[..buf.len() - 9];
        assert!(matches!(
            ScheduleIndex::load_snapshot(&mut &cut[..], &space, tag, params.extras.clone()),
            Err(PersistError::Format(_))
        ));

        // Wrong magic.
        let mut wrong = buf;
        wrong[0] = b'X';
        assert!(matches!(
            ScheduleIndex::load_snapshot(&mut &wrong[..], &space, tag, params.extras),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn tag_tracks_model_and_config() {
        let (space, mut model, _index, params) = setup();
        let t1 = snapshot_tag(&mut model, &space, params.count, params.seed).unwrap();
        let t2 = snapshot_tag(&mut model, &space, params.count, params.seed).unwrap();
        assert_eq!(t1, t2, "tag is deterministic");
        let t3 = snapshot_tag(&mut model, &space, params.count + 1, params.seed).unwrap();
        assert_ne!(t1, t3, "config changes the tag");
        let other_space = Space::new(Kernel::SpMV, vec![64, 32], 0);
        let t4 = snapshot_tag(&mut model, &other_space, params.count, params.seed).unwrap();
        assert_ne!(t1, t4, "space changes the tag");
    }
}
