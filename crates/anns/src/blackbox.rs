//! Black-box search-strategy baselines (Figure 16a): random search, a
//! TPE-style optimizer (HyperOpt stand-in), and a multi-armed-bandit
//! operator ensemble (OpenTuner stand-in).
//!
//! Each tuner minimizes an arbitrary objective over SuperSchedules and
//! reports a best-so-far trace plus how much wall time went to objective
//! evaluation versus tuner bookkeeping — the §4.2 observation that
//! Bayesian/bandit tuners spend most of their time on metadata, while ANNS
//! spends it on the cost model.

use waco_runtime::ThreadPool;
use waco_schedule::encode::{self};
use waco_schedule::{Space, SuperSchedule};
use waco_tensor::gen::Rng64;

/// Result of a black-box tuning run.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Best schedule found.
    pub best: SuperSchedule,
    /// Its objective value.
    pub best_score: f32,
    /// Best-so-far objective after each trial.
    pub trace: Vec<f32>,
    /// Number of objective evaluations performed (one per trial), so
    /// tuner comparisons can count evaluations instead of seconds.
    pub evals: usize,
    /// Total wall time of the run.
    pub seconds: f64,
    /// Wall time spent inside the objective.
    pub eval_seconds: f64,
}

impl TraceResult {
    /// Fraction of time spent evaluating the objective.
    pub fn eval_fraction(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            (self.eval_seconds / self.seconds).min(1.0)
        }
    }
}

struct Run<'a> {
    objective: &'a mut dyn FnMut(&SuperSchedule) -> f32,
    best: Option<(SuperSchedule, f32)>,
    trace: Vec<f32>,
    eval_seconds: f64,
}

impl<'a> Run<'a> {
    fn new(objective: &'a mut dyn FnMut(&SuperSchedule) -> f32) -> Self {
        Self {
            objective,
            best: None,
            trace: Vec::new(),
            eval_seconds: 0.0,
        }
    }

    fn eval(&mut self, s: &SuperSchedule) -> f32 {
        let t = std::time::Instant::now();
        let v = (self.objective)(s);
        self.eval_seconds += t.elapsed().as_secs_f64();
        match &self.best {
            Some((_, b)) if *b <= v => {}
            _ => self.best = Some((s.clone(), v)),
        }
        let best = self.best.as_ref().expect("just set").1;
        self.trace.push(best);
        v
    }

    fn finish(self, started: std::time::Instant) -> TraceResult {
        let (best, best_score) = self.best.expect("at least one trial");
        let evals = self.trace.len();
        TraceResult {
            best,
            best_score,
            trace: self.trace,
            evals,
            seconds: started.elapsed().as_secs_f64(),
            eval_seconds: self.eval_seconds,
        }
    }
}

/// Pure random search: `trials` independent samples.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn random_search(
    space: &Space,
    trials: usize,
    seed: u64,
    objective: &mut dyn FnMut(&SuperSchedule) -> f32,
) -> TraceResult {
    assert!(trials > 0, "need at least one trial");
    let started = std::time::Instant::now();
    let mut rng = Rng64::seed_from(seed);
    let mut run = Run::new(objective);
    for _ in 0..trials {
        let s = SuperSchedule::sample(space, &mut rng);
        run.eval(&s);
    }
    run.finish(started)
}

/// Random search with the objective evaluated in parallel batches on the
/// persistent pool — for thread-safe objectives such as the trained cost
/// model. Samples, best, and trace are identical to [`random_search`] with
/// the same seed; only wall time differs. `eval_seconds` sums per-thread
/// evaluation time, so it may exceed `seconds` under parallelism (and
/// [`TraceResult::eval_fraction`] saturates at 1).
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn random_search_batched(
    space: &Space,
    trials: usize,
    seed: u64,
    objective: &(dyn Fn(&SuperSchedule) -> f32 + Sync),
) -> TraceResult {
    assert!(trials > 0, "need at least one trial");
    let started = std::time::Instant::now();
    let mut rng = Rng64::seed_from(seed);
    let samples: Vec<SuperSchedule> = (0..trials)
        .map(|_| SuperSchedule::sample(space, &mut rng))
        .collect();
    let pool = ThreadPool::global();
    let scored = pool.map(&samples, pool.max_participants(), |s| {
        let t = std::time::Instant::now();
        let v = objective(s);
        (v, t.elapsed().as_secs_f64())
    });
    let mut best: Option<(usize, f32)> = None;
    let mut trace = Vec::with_capacity(trials);
    let mut eval_seconds = 0.0;
    for (i, (v, dt)) in scored.iter().enumerate() {
        eval_seconds += dt;
        if best.map(|(_, b)| *v < b).unwrap_or(true) {
            best = Some((i, *v));
        }
        trace.push(best.expect("just set").1);
    }
    let (best_idx, best_score) = best.expect("trials > 0");
    let evals = trace.len();
    TraceResult {
        best: samples[best_idx].clone(),
        best_score,
        trace,
        evals,
        seconds: started.elapsed().as_secs_f64(),
        eval_seconds,
    }
}

fn flat_distance(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// A TPE-style optimizer (the HyperOpt stand-in): keeps the observation
/// history, splits it at the γ-quantile into "good" and "bad" sets, proposes
/// candidates by mutating good configurations, and picks the candidate whose
/// flat encoding is closest to the good set and farthest from the bad set —
/// a density-ratio surrogate. The surrogate bookkeeping (distances over the
/// whole history per trial) is the "metadata" overhead of §4.2.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn tpe_like(
    space: &Space,
    trials: usize,
    seed: u64,
    objective: &mut dyn FnMut(&SuperSchedule) -> f32,
) -> TraceResult {
    assert!(trials > 0, "need at least one trial");
    let started = std::time::Instant::now();
    let mut rng = Rng64::seed_from(seed);
    let mut run = Run::new(objective);
    let gamma = 0.25;
    let startup = trials.min(10);
    let mut history: Vec<(SuperSchedule, Vec<f32>, f32)> = Vec::new();

    for t in 0..trials {
        let s = if t < startup {
            SuperSchedule::sample(space, &mut rng)
        } else {
            // Split history by the gamma quantile of scores.
            let mut scores: Vec<f32> = history.iter().map(|h| h.2).collect();
            scores.sort_by(|a, b| a.total_cmp(b));
            let cut = scores[((scores.len() as f64 * gamma) as usize).min(scores.len() - 1)];
            let good: Vec<&(SuperSchedule, Vec<f32>, f32)> =
                history.iter().filter(|h| h.2 <= cut).collect();
            let bad: Vec<&(SuperSchedule, Vec<f32>, f32)> =
                history.iter().filter(|h| h.2 > cut).collect();
            // Propose candidates from good mutations + fresh samples, then
            // score the batch in parallel: the surrogate's distance scans
            // over the whole history are the expensive "metadata" work, and
            // each candidate's scan is independent.
            let proposals: Vec<SuperSchedule> = (0..12)
                .map(|c| {
                    if c % 3 == 2 || good.is_empty() {
                        SuperSchedule::sample(space, &mut rng)
                    } else {
                        good[rng.below(good.len())].0.mutate(space, &mut rng)
                    }
                })
                .collect();
            let pool = ThreadPool::global();
            let acqs = pool.map(&proposals, pool.max_participants(), |cand| {
                let flat = encode::encode(cand, space);
                let d_good = good
                    .iter()
                    .map(|h| flat_distance(&flat, &h.1))
                    .fold(f32::INFINITY, f32::min);
                let d_bad = bad
                    .iter()
                    .map(|h| flat_distance(&flat, &h.1))
                    .fold(f32::INFINITY, f32::min);
                // Lower is better: near good, far from bad.
                d_good - 0.5 * d_bad
            });
            // First minimal candidate wins ties (the sequential fold's
            // strict-< semantics, kept for bit-identical search traces).
            let mut best_idx = 0;
            for (i, acq) in acqs.iter().enumerate().skip(1) {
                if *acq < acqs[best_idx] {
                    best_idx = i;
                }
            }
            proposals[best_idx].clone()
        };
        let v = run.eval(&s);
        let flat = encode::encode(&s, space);
        history.push((s, flat, v));
    }
    run.finish(started)
}

/// A multi-armed-bandit ensemble of search operators (the OpenTuner
/// stand-in): UCB1 over {random sample, mutate best, mutate random elite,
/// double mutation}, rewarded by improvement.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn bandit_ensemble(
    space: &Space,
    trials: usize,
    seed: u64,
    objective: &mut dyn FnMut(&SuperSchedule) -> f32,
) -> TraceResult {
    assert!(trials > 0, "need at least one trial");
    let started = std::time::Instant::now();
    let mut rng = Rng64::seed_from(seed);
    let mut run = Run::new(objective);
    const ARMS: usize = 4;
    let mut pulls = [0usize; ARMS];
    let mut rewards = [0.0f64; ARMS];
    let mut elites: Vec<(SuperSchedule, f32)> = Vec::new();

    for t in 0..trials {
        let arm = if t < ARMS {
            t
        } else {
            (0..ARMS)
                .max_by(|&a, &b| {
                    let ucb = |i: usize| {
                        rewards[i] / pulls[i] as f64
                            + (2.0 * (t as f64).ln() / pulls[i] as f64).sqrt()
                    };
                    ucb(a).total_cmp(&ucb(b))
                })
                .expect("ARMS > 0")
        };
        let s = match arm {
            0 => SuperSchedule::sample(space, &mut rng),
            1 if !elites.is_empty() => elites[0].0.mutate(space, &mut rng),
            2 if !elites.is_empty() => elites[rng.below(elites.len())].0.mutate(space, &mut rng),
            3 if !elites.is_empty() => elites[0].0.mutate(space, &mut rng).mutate(space, &mut rng),
            _ => SuperSchedule::sample(space, &mut rng),
        };
        let before = run.best.as_ref().map(|b| b.1).unwrap_or(f32::INFINITY);
        let v = run.eval(&s);
        let reward = if v < before { 1.0 } else { 0.0 };
        pulls[arm] += 1;
        rewards[arm] += reward;
        elites.push((s, v));
        elites.sort_by(|a, b| a.1.total_cmp(&b.1));
        elites.truncate(10);
    }
    run.finish(started)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_schedule::Kernel;

    fn space() -> Space {
        Space::new(Kernel::SpMV, vec![64, 64], 0)
    }

    /// A cheap synthetic objective with known structure: prefers split 8 on
    /// i, chunk 16, CSR-ish formats.
    fn objective(s: &SuperSchedule) -> f32 {
        let mut cost = 0.0f32;
        cost += (s.splits[0] as f32).log2().abs();
        if let Some(p) = &s.parallel {
            cost += ((p.chunk as f32).log2() - 4.0).abs();
        } else {
            cost += 5.0;
        }
        cost += s
            .format
            .formats
            .iter()
            .filter(|f| **f == waco_format::LevelFormat::Compressed)
            .count() as f32;
        cost
    }

    #[test]
    fn all_tuners_improve_over_first_trial() {
        let space = space();
        for (name, result) in [
            ("random", random_search(&space, 120, 1, &mut objective)),
            ("tpe", tpe_like(&space, 120, 1, &mut objective)),
            ("bandit", bandit_ensemble(&space, 120, 1, &mut objective)),
        ] {
            assert_eq!(result.trace.len(), 120, "{name}");
            assert_eq!(result.evals, 120, "{name} counts every trial");
            assert!(
                result.best_score <= result.trace[0],
                "{name} must improve or match"
            );
            // Trace is monotone nonincreasing.
            for w in result.trace.windows(2) {
                assert!(w[1] <= w[0], "{name} trace must be monotone");
            }
            assert!(result.seconds >= result.eval_seconds);
        }
    }

    #[test]
    fn guided_tuners_beat_or_match_random_on_structured_objective() {
        let space = space();
        let r = random_search(&space, 150, 3, &mut objective);
        let t = tpe_like(&space, 150, 3, &mut objective);
        let b = bandit_ensemble(&space, 150, 3, &mut objective);
        // With a smooth structured objective, guided search should not be
        // much worse than random.
        assert!(
            t.best_score <= r.best_score + 1.0,
            "tpe {} vs random {}",
            t.best_score,
            r.best_score
        );
        assert!(
            b.best_score <= r.best_score + 1.0,
            "bandit {} vs random {}",
            b.best_score,
            r.best_score
        );
    }

    #[test]
    fn batched_random_search_matches_sequential() {
        let space = space();
        let seq = random_search(&space, 100, 7, &mut objective);
        let par = random_search_batched(&space, 100, 7, &objective);
        assert_eq!(seq.best_score, par.best_score);
        assert_eq!(seq.trace, par.trace);
        assert_eq!(seq.best, par.best);
    }

    #[test]
    fn best_schedule_is_valid() {
        let space = space();
        let r = tpe_like(&space, 60, 5, &mut objective);
        assert!(r.best.validate(&space).is_ok());
        assert!((0.0..=1.0).contains(&r.eval_fraction()));
    }
}
