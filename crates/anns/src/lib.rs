//! Graph-based approximate nearest neighbor search and black-box tuners.
//!
//! WACO casts auto-scheduling as a nearest neighbor search (§4.2): the
//! dataset is the set of SuperSchedules, the query is the input matrix, and
//! the "distance" is the predicted cost `ŷ(m, s)`. This crate provides:
//!
//! * [`hnsw::Hnsw`] — a from-scratch Hierarchical Navigable Small World
//!   graph (Malkov & Yashunin), the hnswlib substitute. Built on the **l2
//!   distance between program embeddings**; searched with a **generic,
//!   memoized distance** — the paper's two-metric trick (§4.2.2).
//! * [`index::ScheduleIndex`] — the WACO search pipeline: sample the vertex
//!   set, embed every schedule once, build the graph, and answer queries by
//!   running ANNS with the cost model's predictor head as the distance,
//!   timing the feature-extraction and ANNS phases separately
//!   (Figure 16b).
//! * [`blackbox`] — the search-strategy baselines of Figure 16a: pure
//!   random search, a TPE-style optimizer (the HyperOpt stand-in), and a
//!   multi-armed-bandit ensemble (the OpenTuner stand-in), each reporting a
//!   best-so-far trace and the fraction of time spent actually evaluating
//!   the cost model.

pub mod blackbox;
pub mod hnsw;
pub mod index;
pub mod persist;

pub use hnsw::Hnsw;
pub use index::{ScheduleIndex, SearchBreakdown};
pub use persist::{snapshot_tag, BuildParams, PersistError};
