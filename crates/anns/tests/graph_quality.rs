//! Structural quality tests of the from-scratch HNSW.

use std::collections::HashSet;
use waco_anns::Hnsw;
use waco_tensor::gen::Rng64;

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::seed_from(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.unit_f32()).collect())
        .collect()
}

#[test]
fn layer0_graph_is_connected() {
    let g = Hnsw::build(random_vectors(400, 6, 1), 10, 64, 2);
    // BFS over layer-0 links from node 0.
    let mut seen: HashSet<usize> = HashSet::new();
    let mut stack = vec![0usize];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        for &nb in g.neighbors(n) {
            stack.push(nb);
        }
    }
    // Bidirectional insertion links keep the graph connected in practice;
    // require near-total reachability.
    assert!(
        seen.len() >= 398,
        "only {}/400 nodes reachable from node 0",
        seen.len()
    );
}

#[test]
fn degree_is_bounded() {
    let m = 8;
    let g = Hnsw::build(random_vectors(500, 4, 3), m, 48, 4);
    for n in 0..g.len() {
        assert!(
            g.neighbors(n).len() <= 2 * m + 1,
            "node {n} has degree {}",
            g.neighbors(n).len()
        );
    }
}

#[test]
fn generic_search_cost_monotone_with_ef() {
    // Bigger beams evaluate more candidates and never return a worse best.
    let g = Hnsw::build(random_vectors(600, 8, 5), 10, 64, 6);
    let cost = |n: usize| -> f32 {
        // An arbitrary smooth function of the stored vector.
        let v = g.vector(n);
        v.iter()
            .enumerate()
            .map(|(i, &x)| (x - 0.3 * i as f32).abs())
            .sum()
    };
    let (res_small, evals_small, _) = g.search_generic(cost, 3, 8);
    let (res_big, evals_big, _) = g.search_generic(cost, 3, 128);
    assert!(evals_big >= evals_small);
    assert!(res_big[0].1 <= res_small[0].1 + 1e-6);
}

#[test]
fn search_handles_duplicate_vectors() {
    // Many identical embeddings (plausible for degenerate schedules).
    let mut v = random_vectors(50, 4, 7);
    for vi in v.iter_mut().take(25) {
        *vi = vec![0.5; 4];
    }
    let g = Hnsw::build(v, 6, 32, 8);
    let res = g.search_l2(&[0.5, 0.5, 0.5, 0.5], 5, 32);
    assert_eq!(res.len(), 5);
    assert!(res[0].1 < 1e-9);
}
