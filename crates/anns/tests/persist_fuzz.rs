//! Corruption fuzz for the `WACOANNS` snapshot format: every single-byte
//! mutation and a truncation sweep must either be rejected cleanly or load
//! a bit-exact index — never panic, never hand back garbage.

use std::panic::{catch_unwind, AssertUnwindSafe};

use waco_anns::index::ScheduleIndex;
use waco_anns::persist::{snapshot_tag, BuildParams};
use waco_model::{CostModel, CostModelConfig};
use waco_schedule::{encode, Kernel, Space};
use waco_tensor::gen::Rng64;

fn small_snapshot() -> (Space, ScheduleIndex, Vec<u8>, u64) {
    let mut rng = Rng64::seed_from(17);
    let space = Space::new(Kernel::SpMV, vec![16, 16], 0);
    let layout = encode::layout(&space);
    let mut model = CostModel::for_kernel(Kernel::SpMV, &layout, CostModelConfig::tiny(), &mut rng);
    let params = BuildParams {
        count: 6,
        seed: 3,
        extras: Vec::new(),
    };
    let index = ScheduleIndex::build_with_extras(&model, &space, params.count, params.seed, vec![]);
    let tag = snapshot_tag(&mut model, &space, params.count, params.seed).unwrap();
    let mut buf = Vec::new();
    index.save_snapshot(&mut buf, tag, &params).unwrap();
    (space, index, buf, tag)
}

/// Loads candidate bytes and asserts the never-garbage contract: a clean
/// error, or an index identical to the original.
fn assert_load_is_safe(
    what: &str,
    bytes: &[u8],
    space: &Space,
    tag: u64,
    original: &ScheduleIndex,
) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        ScheduleIndex::load_snapshot(&mut &bytes[..], space, tag, vec![])
    }));
    match outcome {
        Err(_) => panic!("{what}: load panicked"),
        Ok(Err(_)) => {} // rejected cleanly — the caller rebuilds
        Ok(Ok(loaded)) => {
            assert_eq!(loaded.schedules, original.schedules, "{what}: schedules");
            assert_eq!(loaded.embeddings, original.embeddings, "{what}: embeddings");
            assert_eq!(
                loaded.encodings.len(),
                original.encodings.len(),
                "{what}: encodings"
            );
        }
    }
}

#[test]
fn every_single_byte_flip_is_rejected_or_bit_exact() {
    let (space, index, buf, tag) = small_snapshot();
    // The trailing FNV checksum covers everything after the magic, so any
    // single-bit flip anywhere must be caught (or, for flips that cancel
    // out — impossible for one bit — load the identical index).
    let mut mutated = buf.clone();
    for pos in 0..buf.len() {
        for mask in [0x01u8, 0x80, 0xff] {
            mutated[pos] ^= mask;
            assert_load_is_safe(
                &format!("byte {pos} ^ {mask:#04x}"),
                &mutated,
                &space,
                tag,
                &index,
            );
            mutated[pos] ^= mask; // restore
        }
    }
    // Sanity: the unmutated buffer still loads and matches.
    let loaded = ScheduleIndex::load_snapshot(&mut &buf[..], &space, tag, vec![]).unwrap();
    assert_eq!(loaded.schedules, index.schedules);
}

#[test]
fn every_truncation_is_rejected() {
    let (space, index, buf, tag) = small_snapshot();
    for cut in 0..buf.len() {
        assert_load_is_safe(
            &format!("truncated at {cut}"),
            &buf[..cut],
            &space,
            tag,
            &index,
        );
    }
}

#[test]
fn appended_garbage_is_rejected() {
    let (space, index, buf, tag) = small_snapshot();
    for extra in [1usize, 7, 64] {
        let mut grown = buf.clone();
        grown.extend(std::iter::repeat(0xAB).take(extra));
        assert_load_is_safe(&format!("{extra} extra bytes"), &grown, &space, tag, &index);
    }
}
