//! A sparse tensor stored in a concrete [`FormatSpec`].

use crate::build::{self, DEFAULT_BUDGET_WORDS};
use crate::level::{LevelIter, LevelStorage};
use crate::spec::{AxisPart, FormatSpec};
use crate::Result;
use waco_tensor::{CooMatrix, CooTensor3, Value};

/// A sparse tensor materialized in a hierarchical format.
///
/// Construction sorts the nonzeros into the spec's storage order and builds
/// each level (see [`crate::build`]). Access goes through
/// [`SparseStorage::iterate`] / [`SparseStorage::locate`] level by level;
/// position `p` after the last level indexes [`SparseStorage::vals`].
#[derive(Debug, Clone)]
pub struct SparseStorage {
    spec: FormatSpec,
    levels: Vec<LevelStorage>,
    vals: Vec<Value>,
    /// `parent_counts[l]` = number of positions entering level `l`.
    parent_counts: Vec<usize>,
}

impl SparseStorage {
    /// Builds storage for a 2-D matrix with the default size budget.
    ///
    /// # Errors
    ///
    /// [`crate::FormatError::DimMismatch`] when the matrix shape differs from
    /// the spec, [`crate::FormatError::StorageTooLarge`] when materialization
    /// would exceed [`DEFAULT_BUDGET_WORDS`].
    pub fn from_matrix(m: &CooMatrix, spec: &FormatSpec) -> Result<Self> {
        Self::from_matrix_with_budget(m, spec, DEFAULT_BUDGET_WORDS)
    }

    /// Builds storage for a 2-D matrix with an explicit word budget.
    ///
    /// # Errors
    ///
    /// See [`SparseStorage::from_matrix`].
    pub fn from_matrix_with_budget(
        m: &CooMatrix,
        spec: &FormatSpec,
        budget_words: u64,
    ) -> Result<Self> {
        if spec.dims() != [m.nrows(), m.ncols()] {
            return Err(crate::FormatError::DimMismatch {
                spec_dims: spec.dims().to_vec(),
                tensor_dims: vec![m.nrows(), m.ncols()],
            });
        }
        Self::from_nonzeros(
            spec,
            m.iter().map(|(r, c, v)| (vec![r, c], v)),
            budget_words,
        )
    }

    /// Builds storage for a 3-D tensor with the default budget.
    ///
    /// # Errors
    ///
    /// See [`SparseStorage::from_matrix`].
    pub fn from_tensor3(t: &CooTensor3, spec: &FormatSpec) -> Result<Self> {
        if spec.dims() != t.dims() {
            return Err(crate::FormatError::DimMismatch {
                spec_dims: spec.dims().to_vec(),
                tensor_dims: t.dims().to_vec(),
            });
        }
        Self::from_nonzeros(
            spec,
            t.iter().map(|(i, k, l, v)| (vec![i, k, l], v)),
            DEFAULT_BUDGET_WORDS,
        )
    }

    /// Builds storage from raw `(coordinate, value)` nonzeros.
    ///
    /// # Errors
    ///
    /// See [`SparseStorage::from_matrix`].
    pub fn from_nonzeros(
        spec: &FormatSpec,
        nonzeros: impl IntoIterator<Item = (Vec<usize>, Value)>,
        budget_words: u64,
    ) -> Result<Self> {
        let plan = build::plan(spec, nonzeros)?;
        let (levels, vals, parent_counts) = build::materialize(spec, &plan, budget_words)?;
        Ok(Self {
            spec: spec.clone(),
            levels,
            vals,
            parent_counts,
        })
    }

    /// The format this tensor is stored in.
    pub fn spec(&self) -> &FormatSpec {
        &self.spec
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Physical storage of level `l`.
    pub fn level(&self, l: usize) -> &LevelStorage {
        &self.levels[l]
    }

    /// Number of positions entering level `l` (`1` for the root).
    pub fn parent_count(&self, l: usize) -> usize {
        self.parent_counts[l]
    }

    /// The values array (one slot per position after the last level;
    /// uncompressed trailing levels imply explicit padding zeros).
    pub fn vals(&self) -> &[Value] {
        &self.vals
    }

    /// Value at final position `p`.
    #[inline]
    pub fn value(&self, p: usize) -> Value {
        self.vals[p]
    }

    /// Total storage words (index arrays + values) actually materialized.
    pub fn storage_words(&self) -> usize {
        let idx: usize = self
            .levels
            .iter()
            .map(|l| match l {
                LevelStorage::Uncompressed { .. } => 0,
                LevelStorage::Compressed { pos, crd } => pos.len() + crd.len(),
            })
            .sum();
        idx + self.vals.len()
    }

    /// Iterates the stored children of `parent_pos` at level `l`
    /// (concordant access).
    pub fn iterate(&self, l: usize, parent_pos: usize) -> LevelIter<'_> {
        self.levels[l].iterate(parent_pos)
    }

    /// Locates `coord` under `parent_pos` at level `l` (discordant access).
    pub fn locate(&self, l: usize, parent_pos: usize, coord: usize) -> Option<usize> {
        self.levels[l].locate(parent_pos, coord)
    }

    /// Visits every stored slot as `(axis_coords, final_position, value)`,
    /// including padding zeros introduced by uncompressed levels.
    pub fn for_each_slot(&self, mut f: impl FnMut(&[usize], usize, Value)) {
        let mut coords = vec![0usize; self.num_levels()];
        self.walk(0, 0, &mut coords, &mut f);
    }

    fn walk(
        &self,
        l: usize,
        parent_pos: usize,
        coords: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize], usize, Value),
    ) {
        if l == self.num_levels() {
            f(coords, parent_pos, self.vals[parent_pos]);
            return;
        }
        for (c, p) in self.iterate(l, parent_pos) {
            coords[l] = c;
            self.walk(l + 1, p, coords, f);
        }
    }

    /// Converts back to a COO list of `(original_coords, value)`, dropping
    /// padding zeros and out-of-range (partial block) slots.
    ///
    /// Stored values that are exactly `0.0` are indistinguishable from
    /// padding and are dropped as well.
    pub fn to_nonzeros(&self) -> Vec<(Vec<usize>, Value)> {
        let ndims = self.spec.ndims();
        let dims = self.spec.dims().to_vec();
        let order = self.spec.order().to_vec();
        let mut out = Vec::new();
        self.for_each_slot(|axis_coords, _, v| {
            if v == 0.0 {
                return;
            }
            let mut outer = vec![0usize; ndims];
            let mut inner = vec![0usize; ndims];
            for (l, axis) in order.iter().enumerate() {
                match axis.part {
                    AxisPart::Outer => outer[axis.dim] = axis_coords[l],
                    AxisPart::Inner => inner[axis.dim] = axis_coords[l],
                }
            }
            let orig: Vec<usize> = (0..ndims)
                .map(|d| self.spec.original_coord(d, outer[d], inner[d]))
                .collect();
            if orig.iter().zip(&dims).all(|(&c, &n)| c < n) {
                out.push((orig, v));
            }
        });
        out
    }

    /// Converts back to a [`CooMatrix`] (2-D specs only).
    ///
    /// # Panics
    ///
    /// Panics if the spec is not 2-D.
    pub fn to_matrix(&self) -> CooMatrix {
        assert_eq!(self.spec.ndims(), 2, "to_matrix requires a 2-D spec");
        let dims = self.spec.dims();
        CooMatrix::from_triplets(
            dims[0],
            dims[1],
            self.to_nonzeros().into_iter().map(|(c, v)| (c[0], c[1], v)),
        )
        .expect("reconstructed coords are in bounds")
    }

    /// Converts back to a [`CooTensor3`] (3-D specs only).
    ///
    /// # Panics
    ///
    /// Panics if the spec is not 3-D.
    pub fn to_tensor3(&self) -> CooTensor3 {
        assert_eq!(self.spec.ndims(), 3, "to_tensor3 requires a 3-D spec");
        let dims = self.spec.dims();
        CooTensor3::from_quads(
            [dims[0], dims[1], dims[2]],
            self.to_nonzeros()
                .into_iter()
                .map(|(c, v)| (c[0], c[1], c[2], v)),
        )
        .expect("reconstructed coords are in bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::LevelFormat;
    use crate::spec::Axis;
    use waco_tensor::gen::{self, Rng64};

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            6,
            6,
            vec![
                (0, 0, 1.0),
                (0, 5, 2.0),
                (2, 2, 3.0),
                (3, 1, 4.0),
                (5, 5, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn csr_roundtrip() {
        let m = sample();
        let s = SparseStorage::from_matrix(&m, &FormatSpec::csr(6, 6)).unwrap();
        assert_eq!(s.to_matrix(), m);
        assert_eq!(s.vals().len(), m.nnz());
    }

    #[test]
    fn bcsr_roundtrip_with_padding() {
        let m = sample();
        let s = SparseStorage::from_matrix(&m, &FormatSpec::bcsr(6, 6, 2, 3)).unwrap();
        assert!(s.vals().len() > m.nnz(), "BCSR pads blocks");
        assert_eq!(s.to_matrix(), m);
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let s = SparseStorage::from_matrix(&m, &FormatSpec::dense(6, 6)).unwrap();
        assert_eq!(s.vals().len(), 36);
        assert_eq!(s.to_matrix(), m);
    }

    #[test]
    fn csc_roundtrip() {
        let m = sample();
        let s = SparseStorage::from_matrix(&m, &FormatSpec::csc(6, 6)).unwrap();
        assert_eq!(s.to_matrix(), m);
    }

    #[test]
    fn dcsr_roundtrip() {
        let m = sample();
        let s = SparseStorage::from_matrix(&m, &FormatSpec::dcsr(6, 6)).unwrap();
        assert_eq!(s.to_matrix(), m);
        // Root level is compressed: only 4 occupied rows stored.
        match s.level(0) {
            LevelStorage::Compressed { crd, .. } => assert_eq!(crd, &vec![0, 2, 3, 5]),
            _ => panic!("DCSR root is compressed"),
        }
    }

    #[test]
    fn sparse_block_roundtrip() {
        let m = sample();
        let s = SparseStorage::from_matrix(&m, &FormatSpec::sparse_block(6, 6, 4)).unwrap();
        assert_eq!(s.to_matrix(), m);
    }

    #[test]
    fn random_spec_roundtrip_partial_blocks() {
        // Non-divisible splits exercise partial-block clamping.
        let mut rng = Rng64::seed_from(3);
        let m = gen::uniform_random(17, 13, 0.2, &mut rng);
        let spec = FormatSpec::new(
            vec![17, 13],
            vec![4, 3],
            vec![
                Axis::outer(1),
                Axis::outer(0),
                Axis::inner(0),
                Axis::inner(1),
            ],
            vec![
                LevelFormat::Uncompressed,
                LevelFormat::Compressed,
                LevelFormat::Uncompressed,
                LevelFormat::Uncompressed,
            ],
        )
        .unwrap();
        let s = SparseStorage::from_matrix(&m, &spec).unwrap();
        assert_eq!(s.to_matrix(), m);
    }

    #[test]
    fn csf3_roundtrip() {
        let mut rng = Rng64::seed_from(4);
        let t = gen::random_tensor3([8, 9, 10], 60, &mut rng);
        let s = SparseStorage::from_tensor3(&t, &FormatSpec::csf3([8, 9, 10])).unwrap();
        assert_eq!(s.to_tensor3(), t);
        assert_eq!(s.vals().len(), t.nnz());
    }

    #[test]
    fn dim_mismatch_rejected() {
        let m = sample();
        let r = SparseStorage::from_matrix(&m, &FormatSpec::csr(5, 6));
        assert!(matches!(r, Err(crate::FormatError::DimMismatch { .. })));
    }

    #[test]
    fn locate_matches_iterate() {
        let m = sample();
        let s = SparseStorage::from_matrix(&m, &FormatSpec::csr(6, 6)).unwrap();
        // Level 1 (k1 compressed): locate each iterated coord.
        for row in 0..6 {
            let parent = s.locate(0, 0, row).unwrap();
            for (c, p) in s.iterate(1, parent) {
                assert_eq!(s.locate(1, parent, c), Some(p));
            }
        }
    }

    #[test]
    fn storage_words_counts_arrays() {
        let m = sample();
        let s = SparseStorage::from_matrix(&m, &FormatSpec::csr(6, 6)).unwrap();
        // pos (7) + crd (5) + vals (5)
        assert_eq!(s.storage_words(), 7 + 5 + 5);
    }
}
