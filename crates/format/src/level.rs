//! Level formats and per-level physical storage.

/// The physical encoding of one level of a coordinate hierarchy.
///
/// The WACO search space uses the two workhorse level formats of TACO's
/// abstraction (the paper, §3.1, restricts itself to these as well).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LevelFormat {
    /// `U`: a dense coordinate interval `[0, N)`. Stores only the extent.
    Uncompressed,
    /// `C`: only coordinates that exist are stored, via `pos`/`crd` arrays.
    Compressed,
}

impl std::fmt::Display for LevelFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LevelFormat::Uncompressed => write!(f, "U"),
            LevelFormat::Compressed => write!(f, "C"),
        }
    }
}

/// Physical storage of one level.
///
/// Positions at level `l` identify distinct coordinate prefixes of length
/// `l + 1`. An **Uncompressed** level maps parent position `p` and coordinate
/// `c` to child position `p * extent + c` arithmetically. A **Compressed**
/// level stores, for each parent position `p`, the child range
/// `pos[p] .. pos[p+1]` with explicit coordinates `crd[q]`.
#[derive(Debug, Clone, PartialEq)]
pub enum LevelStorage {
    /// Dense interval storage.
    Uncompressed {
        /// The coordinate extent `N` of this level.
        extent: usize,
    },
    /// Explicit `pos`/`crd` storage.
    Compressed {
        /// `pos[p] .. pos[p+1]` bounds the children of parent position `p`;
        /// length is `#parents + 1`.
        pos: Vec<usize>,
        /// Stored coordinates, sorted within each parent range.
        crd: Vec<usize>,
    },
}

impl LevelStorage {
    /// The level format of this storage.
    pub fn format(&self) -> LevelFormat {
        match self {
            LevelStorage::Uncompressed { .. } => LevelFormat::Uncompressed,
            LevelStorage::Compressed { .. } => LevelFormat::Compressed,
        }
    }

    /// Number of child positions this level exposes, given the number of
    /// parent positions.
    pub fn child_count(&self, parent_count: usize) -> usize {
        match self {
            LevelStorage::Uncompressed { extent } => parent_count * extent,
            LevelStorage::Compressed { crd, .. } => crd.len(),
        }
    }

    /// Iterates the stored `(coordinate, child_position)` pairs under
    /// `parent_pos` — the cheap, *concordant* access path.
    ///
    /// For `U` this yields the full interval; for `C` only stored entries.
    ///
    /// # Panics
    ///
    /// Panics if `parent_pos` is out of range for a compressed level.
    pub fn iterate(&self, parent_pos: usize) -> LevelIter<'_> {
        match self {
            LevelStorage::Uncompressed { extent } => LevelIter::Dense {
                base: parent_pos * extent,
                coord: 0,
                extent: *extent,
            },
            LevelStorage::Compressed { pos, crd } => LevelIter::Sparse {
                crd,
                cur: pos[parent_pos],
                end: pos[parent_pos + 1],
            },
        }
    }

    /// Finds the child position of `coord` under `parent_pos` — the
    /// *discordant* access path (`O(1)` for `U`, binary search for `C`).
    ///
    /// Returns `None` when the coordinate is structurally absent, along with
    /// having cost `log₂(row population)` for compressed levels — the cost
    /// model in `waco-sim` charges for this.
    ///
    /// # Panics
    ///
    /// Panics if `parent_pos` is out of range for a compressed level, or the
    /// coordinate exceeds the extent of an uncompressed level (debug builds).
    pub fn locate(&self, parent_pos: usize, coord: usize) -> Option<usize> {
        match self {
            LevelStorage::Uncompressed { extent } => {
                debug_assert!(coord < *extent, "coordinate beyond level extent");
                Some(parent_pos * extent + coord)
            }
            LevelStorage::Compressed { pos, crd } => {
                let range = pos[parent_pos]..pos[parent_pos + 1];
                let slice = &crd[range.clone()];
                slice
                    .binary_search(&coord)
                    .ok()
                    .map(|off| range.start + off)
            }
        }
    }

    /// Like [`LevelStorage::locate`], but also reports how many probes the
    /// search performed (1 for uncompressed, ~`log₂(range)` for compressed) —
    /// the quantity the cost simulator charges for discordant traversal.
    ///
    /// # Panics
    ///
    /// Same conditions as [`LevelStorage::locate`].
    pub fn locate_counted(&self, parent_pos: usize, coord: usize) -> (Option<usize>, usize) {
        match self {
            LevelStorage::Uncompressed { extent } => {
                debug_assert!(coord < *extent, "coordinate beyond level extent");
                (Some(parent_pos * extent + coord), 1)
            }
            LevelStorage::Compressed { pos, crd } => {
                let range = pos[parent_pos]..pos[parent_pos + 1];
                let len = range.len();
                let probes = (usize::BITS - len.leading_zeros()) as usize + 1;
                let slice = &crd[range.clone()];
                (
                    slice
                        .binary_search(&coord)
                        .ok()
                        .map(|off| range.start + off),
                    probes,
                )
            }
        }
    }

    /// Number of search probes [`LevelStorage::locate`] performs for a parent
    /// with the given population (used by the cost simulator).
    pub fn locate_probes(&self, parent_population: usize) -> usize {
        match self {
            LevelStorage::Uncompressed { .. } => 1,
            LevelStorage::Compressed { .. } => {
                (parent_population.max(1) as f64).log2().ceil() as usize + 1
            }
        }
    }
}

/// Iterator over `(coordinate, child_position)` pairs of one level.
#[derive(Debug)]
pub enum LevelIter<'a> {
    /// Iteration over a dense interval (`U`).
    Dense {
        /// `parent_pos * extent`.
        base: usize,
        /// Next coordinate.
        coord: usize,
        /// Level extent.
        extent: usize,
    },
    /// Iteration over stored entries (`C`).
    Sparse {
        /// The coordinate array.
        crd: &'a [usize],
        /// Next position.
        cur: usize,
        /// One past the last position.
        end: usize,
    },
}

impl Iterator for LevelIter<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        match self {
            LevelIter::Dense {
                base,
                coord,
                extent,
            } => {
                if *coord < *extent {
                    let item = (*coord, *base + *coord);
                    *coord += 1;
                    Some(item)
                } else {
                    None
                }
            }
            LevelIter::Sparse { crd, cur, end } => {
                if *cur < *end {
                    let item = (crd[*cur], *cur);
                    *cur += 1;
                    Some(item)
                } else {
                    None
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            LevelIter::Dense { coord, extent, .. } => extent - coord,
            LevelIter::Sparse { cur, end, .. } => end - cur,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for LevelIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncompressed_iterate_and_locate() {
        let l = LevelStorage::Uncompressed { extent: 3 };
        let items: Vec<_> = l.iterate(2).collect();
        assert_eq!(items, vec![(0, 6), (1, 7), (2, 8)]);
        assert_eq!(l.locate(2, 1), Some(7));
        assert_eq!(l.child_count(4), 12);
    }

    #[test]
    fn compressed_iterate_and_locate() {
        let l = LevelStorage::Compressed {
            pos: vec![0, 2, 2, 5],
            crd: vec![1, 3, 0, 2, 4],
        };
        let row0: Vec<_> = l.iterate(0).collect();
        assert_eq!(row0, vec![(1, 0), (3, 1)]);
        assert_eq!(l.iterate(1).count(), 0);
        assert_eq!(l.locate(2, 2), Some(3));
        assert_eq!(l.locate(2, 3), None);
        assert_eq!(l.locate(0, 3), Some(1));
        assert_eq!(l.child_count(3), 5);
    }

    #[test]
    fn iterator_len() {
        let l = LevelStorage::Uncompressed { extent: 5 };
        let mut it = l.iterate(0);
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn locate_probe_counts() {
        let u = LevelStorage::Uncompressed { extent: 8 };
        assert_eq!(u.locate_probes(100), 1);
        let c = LevelStorage::Compressed {
            pos: vec![0, 0],
            crd: vec![],
        };
        assert_eq!(c.locate_probes(1), 1);
        assert_eq!(c.locate_probes(1024), 11);
    }

    #[test]
    fn format_display() {
        assert_eq!(format!("{}", LevelFormat::Uncompressed), "U");
        assert_eq!(format!("{}", LevelFormat::Compressed), "C");
    }
}
