//! TACO-style format abstraction for sparse tensors.
//!
//! This crate reimplements the part of the TACO compiler stack that WACO's
//! search space is built on (Chou et al., *Format abstraction for sparse
//! tensor algebra compilers*, OOPSLA 2018):
//!
//! * A sparse tensor is viewed as a **coordinate hierarchy** — a tree whose
//!   levels each store one (possibly *split*) index variable.
//! * Each level uses a **level format**: [`LevelFormat::Uncompressed`] (`U`,
//!   a dense interval `[0, N)`) or [`LevelFormat::Compressed`] (`C`, explicit
//!   `pos`/`crd` arrays).
//! * **Level splitting** divides an original dimension `i` of extent `N` into
//!   an outer axis `i1 = i / s` (extent `⌈N/s⌉`) and an inner axis
//!   `i0 = i % s` (extent `s`).
//! * **Level reordering** stores the axes in any permutation.
//!
//! The combination reproduces all the classic formats: CSR is
//! `[i1(U), k1(C)]` with unit splits, BCSR is `[i1(U), k1(C), i0(U), k0(U)]`
//! with block-sized splits, CSF is all-compressed, row-major vs column-major
//! is the order of the row/column axes, and so on (Figure 3 of the WACO
//! paper).
//!
//! [`FormatSpec`] describes a format; [`SparseStorage`] is a tensor stored in
//! one. Storage supports the two access capabilities the scheduled
//! interpreter in `waco-exec` needs: **iterate** (walk the stored children of
//! a position — cheap, "concordant") and **locate** (find a coordinate under
//! a position — `O(1)` for `U`, binary search for `C`, the "discordant"
//! path).
//!
//! # Example: CSR and BCSR
//!
//! ```
//! use waco_format::{FormatSpec, SparseStorage};
//! use waco_tensor::CooMatrix;
//!
//! let m = CooMatrix::from_triplets(4, 4, vec![(0, 1, 2.0), (2, 3, 4.0)]).unwrap();
//! let csr = FormatSpec::csr(4, 4);
//! let stored = SparseStorage::from_matrix(&m, &csr)?;
//! assert_eq!(stored.to_matrix(), m);
//!
//! let bcsr = FormatSpec::bcsr(4, 4, 2, 2);
//! let blocked = SparseStorage::from_matrix(&m, &bcsr)?;
//! assert_eq!(blocked.to_matrix(), m); // padding zeros are dropped on readback
//! # Ok::<(), waco_format::FormatError>(())
//! ```

pub mod build;
pub mod level;
pub mod spec;
pub mod storage;

pub use level::{LevelFormat, LevelStorage};
pub use spec::{Axis, AxisPart, FormatSpec};
pub use storage::SparseStorage;

/// Errors from format validation and storage construction.
#[derive(Debug)]
pub enum FormatError {
    /// The level order is not a permutation of the tensor's axes.
    InvalidOrder(String),
    /// A split size or dimension is invalid.
    InvalidSpec(String),
    /// Building this storage would exceed the configured size budget.
    StorageTooLarge {
        /// Estimated number of storage words required.
        estimated: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The input tensor does not match the spec's dimensions.
    DimMismatch {
        /// Dimensions declared by the spec.
        spec_dims: Vec<usize>,
        /// Dimensions of the supplied tensor.
        tensor_dims: Vec<usize>,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::InvalidOrder(msg) => write!(f, "invalid level order: {msg}"),
            FormatError::InvalidSpec(msg) => write!(f, "invalid format spec: {msg}"),
            FormatError::StorageTooLarge { estimated, budget } => {
                write!(
                    f,
                    "storage would need ~{estimated} words, budget is {budget}"
                )
            }
            FormatError::DimMismatch {
                spec_dims,
                tensor_dims,
            } => {
                write!(
                    f,
                    "spec dims {spec_dims:?} do not match tensor dims {tensor_dims:?}"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, FormatError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = FormatError::StorageTooLarge {
            estimated: 10,
            budget: 5,
        };
        assert!(format!("{e}").contains("10"));
    }
}
