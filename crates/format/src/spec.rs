//! Format specifications: splits, level order, level formats.

use crate::level::LevelFormat;
use crate::{FormatError, Result};

/// Which half of a split dimension an axis refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AxisPart {
    /// The outer (quotient) axis: `x1 = x / split`.
    Outer,
    /// The inner (remainder) axis: `x0 = x % split`.
    Inner,
}

/// One split axis of an original tensor dimension.
///
/// Dimension `dim` (0-based tensor mode) split by `s` yields
/// `Axis { dim, part: Outer }` with extent `⌈N/s⌉` and
/// `Axis { dim, part: Inner }` with extent `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Axis {
    /// Original tensor mode.
    pub dim: usize,
    /// Outer or inner part of the split.
    pub part: AxisPart,
}

impl Axis {
    /// The outer axis of mode `dim`.
    pub fn outer(dim: usize) -> Self {
        Axis {
            dim,
            part: AxisPart::Outer,
        }
    }

    /// The inner axis of mode `dim`.
    pub fn inner(dim: usize) -> Self {
        Axis {
            dim,
            part: AxisPart::Inner,
        }
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = ["i", "k", "l", "m", "n", "o"];
        let name = names.get(self.dim).copied().unwrap_or("d");
        match self.part {
            AxisPart::Outer => write!(f, "{name}1"),
            AxisPart::Inner => write!(f, "{name}0"),
        }
    }
}

/// A complete sparse format description for one tensor.
///
/// A `FormatSpec` fixes the tensor's dimensions, the per-dimension split
/// sizes, the storage order of the `2 × ndims` axes, and the level format of
/// each stored level. Together with a tensor's nonzeros it fully determines a
/// [`crate::SparseStorage`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FormatSpec {
    /// Original dimensions of the tensor, e.g. `[nrows, ncols]`.
    dims: Vec<usize>,
    /// Split size per dimension (`1` = effectively unsplit).
    splits: Vec<usize>,
    /// Storage order of the axes, outermost first. Always a permutation of
    /// all `2 × ndims` axes.
    order: Vec<Axis>,
    /// Level format of each level, parallel to `order`.
    formats: Vec<LevelFormat>,
}

impl FormatSpec {
    /// Creates a validated spec.
    ///
    /// # Errors
    ///
    /// * [`FormatError::InvalidSpec`] — zero dims/splits, or a split larger
    ///   than its dimension is clamped rather than rejected, but zero splits
    ///   are rejected; `formats.len() != order.len()` is rejected.
    /// * [`FormatError::InvalidOrder`] — `order` is not a permutation of all
    ///   axes.
    pub fn new(
        dims: Vec<usize>,
        splits: Vec<usize>,
        order: Vec<Axis>,
        formats: Vec<LevelFormat>,
    ) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(FormatError::InvalidSpec(format!("bad dims {dims:?}")));
        }
        if splits.len() != dims.len() || splits.contains(&0) {
            return Err(FormatError::InvalidSpec(format!(
                "splits {splits:?} must be positive and match ndims {}",
                dims.len()
            )));
        }
        let n_axes = 2 * dims.len();
        if order.len() != n_axes || formats.len() != n_axes {
            return Err(FormatError::InvalidOrder(format!(
                "expected {n_axes} axes, got order={} formats={}",
                order.len(),
                formats.len()
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for a in &order {
            if a.dim >= dims.len() {
                return Err(FormatError::InvalidOrder(format!("axis {a} out of range")));
            }
            if !seen.insert(*a) {
                return Err(FormatError::InvalidOrder(format!("axis {a} repeated")));
            }
        }
        // Clamp splits to the dimension size (splitting by more than N is
        // the same as not splitting).
        let splits = splits.iter().zip(&dims).map(|(&s, &d)| s.min(d)).collect();
        Ok(Self {
            dims,
            splits,
            order,
            formats,
        })
    }

    /// Number of original tensor modes.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Original dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Per-dimension split sizes.
    pub fn splits(&self) -> &[usize] {
        &self.splits
    }

    /// The storage order of axes, outermost first.
    pub fn order(&self) -> &[Axis] {
        &self.order
    }

    /// The per-level formats, parallel to [`FormatSpec::order`].
    pub fn formats(&self) -> &[LevelFormat] {
        &self.formats
    }

    /// Number of stored levels (`2 × ndims`).
    pub fn num_levels(&self) -> usize {
        self.order.len()
    }

    /// The extent of an axis under this spec's splits.
    pub fn axis_extent(&self, axis: Axis) -> usize {
        let n = self.dims[axis.dim];
        let s = self.splits[axis.dim];
        match axis.part {
            AxisPart::Outer => n.div_ceil(s),
            AxisPart::Inner => s,
        }
    }

    /// Splits an original coordinate along `axis`'s dimension into this
    /// axis's coordinate.
    #[inline]
    pub fn axis_coord(&self, axis: Axis, original: usize) -> usize {
        let s = self.splits[axis.dim];
        match axis.part {
            AxisPart::Outer => original / s,
            AxisPart::Inner => original % s,
        }
    }

    /// Reconstructs the original coordinate of dimension `dim` from its two
    /// axis coordinates.
    #[inline]
    pub fn original_coord(&self, dim: usize, outer: usize, inner: usize) -> usize {
        outer * self.splits[dim] + inner
    }

    /// Estimated storage cost in words, *without* building: `pos`/`crd`
    /// array sizes for compressed levels plus the values array.
    ///
    /// `nnz_prefixes[l]` must give the number of distinct coordinate prefixes
    /// of length `l + 1` in storage order (computable by one pass over sorted
    /// coordinates; see [`crate::build`]). Uncompressed levels multiply the
    /// position space; compressed levels reset it to the actual prefix count.
    pub fn storage_words(&self, nnz_prefixes: &[usize]) -> u64 {
        let mut words: u64 = 0;
        let mut pos_count: u64 = 1;
        for (l, fmt) in self.formats.iter().enumerate() {
            let extent = self.axis_extent(self.order[l]) as u64;
            match fmt {
                LevelFormat::Uncompressed => {
                    pos_count = pos_count.saturating_mul(extent);
                }
                LevelFormat::Compressed => {
                    // pos array (parent positions + 1) + crd array.
                    words = words
                        .saturating_add(pos_count + 1)
                        .saturating_add(nnz_prefixes[l] as u64);
                    pos_count = nnz_prefixes[l] as u64;
                }
            }
        }
        words.saturating_add(pos_count) // values array
    }

    /// Human-readable format string, e.g. `"i1(U) k1(C) i0(U) k0(U)"`.
    pub fn describe(&self) -> String {
        self.order
            .iter()
            .zip(&self.formats)
            .map(|(a, f)| format!("{a}({f})"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    // ---- Named classic formats -------------------------------------------

    /// CSR: row-major, compressed columns, unit splits (`UC` in the paper).
    pub fn csr(nrows: usize, ncols: usize) -> Self {
        Self::new(
            vec![nrows, ncols],
            vec![1, 1],
            vec![
                Axis::outer(0),
                Axis::outer(1),
                Axis::inner(0),
                Axis::inner(1),
            ],
            vec![
                LevelFormat::Uncompressed,
                LevelFormat::Compressed,
                LevelFormat::Uncompressed,
                LevelFormat::Uncompressed,
            ],
        )
        .expect("CSR spec is valid")
    }

    /// CSC: column-major CSR.
    pub fn csc(nrows: usize, ncols: usize) -> Self {
        Self::new(
            vec![nrows, ncols],
            vec![1, 1],
            vec![
                Axis::outer(1),
                Axis::outer(0),
                Axis::inner(1),
                Axis::inner(0),
            ],
            vec![
                LevelFormat::Uncompressed,
                LevelFormat::Compressed,
                LevelFormat::Uncompressed,
                LevelFormat::Uncompressed,
            ],
        )
        .expect("CSC spec is valid")
    }

    /// BCSR with `br × bc` dense blocks (`UCUU` in the paper).
    pub fn bcsr(nrows: usize, ncols: usize, br: usize, bc: usize) -> Self {
        Self::new(
            vec![nrows, ncols],
            vec![br, bc],
            vec![
                Axis::outer(0),
                Axis::outer(1),
                Axis::inner(0),
                Axis::inner(1),
            ],
            vec![
                LevelFormat::Uncompressed,
                LevelFormat::Compressed,
                LevelFormat::Uncompressed,
                LevelFormat::Uncompressed,
            ],
        )
        .expect("BCSR spec is valid")
    }

    /// Fully dense row-major storage (`UU`).
    pub fn dense(nrows: usize, ncols: usize) -> Self {
        Self::new(
            vec![nrows, ncols],
            vec![1, 1],
            vec![
                Axis::outer(0),
                Axis::outer(1),
                Axis::inner(0),
                Axis::inner(1),
            ],
            vec![LevelFormat::Uncompressed; 4],
        )
        .expect("dense spec is valid")
    }

    /// DCSR (doubly compressed rows): `CC`, for hypersparse matrices.
    pub fn dcsr(nrows: usize, ncols: usize) -> Self {
        Self::new(
            vec![nrows, ncols],
            vec![1, 1],
            vec![
                Axis::outer(0),
                Axis::outer(1),
                Axis::inner(0),
                Axis::inner(1),
            ],
            vec![
                LevelFormat::Compressed,
                LevelFormat::Compressed,
                LevelFormat::Uncompressed,
                LevelFormat::Uncompressed,
            ],
        )
        .expect("DCSR spec is valid")
    }

    /// The "sparse block" format the paper highlights for SpMM locality
    /// (§5.2.1): `k1(U) → i(U) → k0(C)` with a large `k` split.
    pub fn sparse_block(nrows: usize, ncols: usize, ksplit: usize) -> Self {
        Self::new(
            vec![nrows, ncols],
            vec![1, ksplit],
            vec![
                Axis::outer(1),
                Axis::outer(0),
                Axis::inner(1),
                Axis::inner(0),
            ],
            vec![
                LevelFormat::Uncompressed,
                LevelFormat::Uncompressed,
                LevelFormat::Compressed,
                LevelFormat::Uncompressed,
            ],
        )
        .expect("sparse-block spec is valid")
    }

    /// CSF for a 3-D tensor (`CCC` over unit splits, mode order i→k→l).
    pub fn csf3(dims: [usize; 3]) -> Self {
        Self::new(
            dims.to_vec(),
            vec![1, 1, 1],
            vec![
                Axis::outer(0),
                Axis::outer(1),
                Axis::outer(2),
                Axis::inner(0),
                Axis::inner(1),
                Axis::inner(2),
            ],
            vec![
                LevelFormat::Compressed,
                LevelFormat::Compressed,
                LevelFormat::Compressed,
                LevelFormat::Uncompressed,
                LevelFormat::Uncompressed,
                LevelFormat::Uncompressed,
            ],
        )
        .expect("CSF spec is valid")
    }
}

impl std::fmt::Display for FormatSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_shape() {
        let s = FormatSpec::csr(10, 20);
        assert_eq!(s.num_levels(), 4);
        assert_eq!(s.axis_extent(Axis::outer(0)), 10);
        assert_eq!(s.axis_extent(Axis::inner(0)), 1);
        assert_eq!(s.describe(), "i1(U) k1(C) i0(U) k0(U)");
    }

    #[test]
    fn bcsr_extents() {
        let s = FormatSpec::bcsr(10, 20, 4, 8);
        assert_eq!(s.axis_extent(Axis::outer(0)), 3); // ceil(10/4)
        assert_eq!(s.axis_extent(Axis::inner(0)), 4);
        assert_eq!(s.axis_extent(Axis::outer(1)), 3); // ceil(20/8)
        assert_eq!(s.axis_extent(Axis::inner(1)), 8);
    }

    #[test]
    fn coord_split_roundtrip() {
        let s = FormatSpec::bcsr(100, 100, 8, 8);
        for x in [0usize, 7, 8, 63, 99] {
            let outer = s.axis_coord(Axis::outer(0), x);
            let inner = s.axis_coord(Axis::inner(0), x);
            assert_eq!(s.original_coord(0, outer, inner), x);
        }
    }

    #[test]
    fn rejects_bad_order() {
        let r = FormatSpec::new(
            vec![4, 4],
            vec![1, 1],
            vec![
                Axis::outer(0),
                Axis::outer(0),
                Axis::inner(0),
                Axis::inner(1),
            ],
            vec![LevelFormat::Uncompressed; 4],
        );
        assert!(matches!(r, Err(FormatError::InvalidOrder(_))));
    }

    #[test]
    fn rejects_zero_split() {
        let r = FormatSpec::new(
            vec![4, 4],
            vec![0, 1],
            vec![
                Axis::outer(0),
                Axis::outer(1),
                Axis::inner(0),
                Axis::inner(1),
            ],
            vec![LevelFormat::Uncompressed; 4],
        );
        assert!(matches!(r, Err(FormatError::InvalidSpec(_))));
    }

    #[test]
    fn split_clamped_to_dim() {
        let s = FormatSpec::new(
            vec![4, 4],
            vec![100, 1],
            vec![
                Axis::outer(0),
                Axis::outer(1),
                Axis::inner(0),
                Axis::inner(1),
            ],
            vec![LevelFormat::Uncompressed; 4],
        )
        .unwrap();
        assert_eq!(s.splits()[0], 4);
        assert_eq!(s.axis_extent(Axis::outer(0)), 1);
    }

    #[test]
    fn dense_storage_words() {
        let s = FormatSpec::dense(8, 8);
        // Prefix counts are irrelevant for all-U formats.
        assert_eq!(s.storage_words(&[0, 0, 0, 0]), 64);
    }

    #[test]
    fn csr_storage_words() {
        let s = FormatSpec::csr(4, 4);
        // 5 nonzeros, all in distinct (row) prefixes except two sharing a row.
        // prefixes: after level0 (i1): 3 rows touched; level1 (k1): 5; then
        // unit splits keep 5.
        let words = s.storage_words(&[3, 5, 5, 5]);
        // pos: 4+1, crd: 5, vals: 5.
        assert_eq!(words, 5 + 5 + 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", Axis::outer(1)), "k1");
        assert_eq!(format!("{}", Axis::inner(2)), "l0");
        let s = FormatSpec::csf3([4, 4, 4]);
        assert!(format!("{s}").starts_with("i1(C) k1(C) l1(C)"));
    }
}
