//! Building hierarchical storage from coordinate lists.
//!
//! The builder mirrors TACO's assembly: nonzeros are mapped to their split
//! axis coordinates, sorted in storage order, and then each level is
//! materialized top-down — uncompressed levels by arithmetic, compressed
//! levels by emitting `pos`/`crd` arrays over the distinct coordinate
//! prefixes.

use crate::level::{LevelFormat, LevelStorage};
use crate::spec::FormatSpec;
use crate::{FormatError, Result};
use waco_tensor::Value;

/// Default storage budget in words (indices + values). Building a format
/// whose materialization would exceed this fails with
/// [`FormatError::StorageTooLarge`] — the analog of the paper excluding
/// configurations that take over a minute.
pub const DEFAULT_BUDGET_WORDS: u64 = 1 << 24;

/// Intermediate result of the planning pass: sorted axis-coordinate tuples
/// and distinct-prefix counts per level.
#[derive(Debug)]
pub struct BuildPlan {
    /// Axis-coordinate tuples in storage order, sorted lexicographically,
    /// paired with their values.
    pub tuples: Vec<(Vec<usize>, Value)>,
    /// `prefix_counts[l]` = number of distinct prefixes of length `l + 1`.
    pub prefix_counts: Vec<usize>,
    /// Estimated storage words for the spec over these nonzeros.
    pub words: u64,
}

/// Plans a build: computes sorted tuples and the storage estimate.
///
/// # Errors
///
/// [`FormatError::DimMismatch`] if a coordinate's arity differs from the
/// spec's; out-of-range coordinates panic in debug builds (the caller is the
/// crate-internal conversion from validated tensors).
pub fn plan(
    spec: &FormatSpec,
    nonzeros: impl IntoIterator<Item = (Vec<usize>, Value)>,
) -> Result<BuildPlan> {
    let nlev = spec.num_levels();
    let mut tuples: Vec<(Vec<usize>, Value)> = Vec::new();
    for (coord, val) in nonzeros {
        if coord.len() != spec.ndims() {
            return Err(FormatError::DimMismatch {
                spec_dims: spec.dims().to_vec(),
                tensor_dims: vec![coord.len()],
            });
        }
        let tuple: Vec<usize> = spec
            .order()
            .iter()
            .map(|&axis| spec.axis_coord(axis, coord[axis.dim]))
            .collect();
        tuples.push((tuple, val));
    }
    tuples.sort_by(|a, b| a.0.cmp(&b.0));

    let mut prefix_counts = vec![0usize; nlev];
    for l in 0..nlev {
        let mut count = 0usize;
        let mut prev: Option<&[usize]> = None;
        for (t, _) in &tuples {
            let pfx = &t[..=l];
            if prev != Some(pfx) {
                count += 1;
                prev = Some(pfx);
            }
        }
        prefix_counts[l] = count;
    }
    let words = spec.storage_words(&prefix_counts);
    Ok(BuildPlan {
        tuples,
        prefix_counts,
        words,
    })
}

/// Materializes the levels and values array from a plan.
///
/// Returns `(levels, vals, parent_counts)` where `parent_counts[l]` is the
/// number of positions *entering* level `l` (so `parent_counts[0] == 1`).
///
/// # Errors
///
/// [`FormatError::StorageTooLarge`] when the plan exceeds `budget_words`.
pub fn materialize(
    spec: &FormatSpec,
    plan: &BuildPlan,
    budget_words: u64,
) -> Result<(Vec<LevelStorage>, Vec<Value>, Vec<usize>)> {
    if plan.words > budget_words {
        return Err(FormatError::StorageTooLarge {
            estimated: plan.words,
            budget: budget_words,
        });
    }
    let nlev = spec.num_levels();
    let n = plan.tuples.len();
    let mut levels = Vec::with_capacity(nlev);
    let mut parent_counts = Vec::with_capacity(nlev);
    // Per-nonzero position at the previous level.
    let mut pos_prev: Vec<usize> = vec![0; n];
    let mut parent_count = 1usize;

    for l in 0..nlev {
        parent_counts.push(parent_count);
        let extent = spec.axis_extent(spec.order()[l]);
        match spec.formats()[l] {
            LevelFormat::Uncompressed => {
                for (i, (t, _)) in plan.tuples.iter().enumerate() {
                    pos_prev[i] = pos_prev[i] * extent + t[l];
                }
                levels.push(LevelStorage::Uncompressed { extent });
                parent_count *= extent;
            }
            LevelFormat::Compressed => {
                // Entries = distinct (parent_pos, coord) pairs, in sorted
                // order (the tuples are sorted, and parent positions are
                // monotone in tuple order).
                let mut pos = vec![0usize; parent_count + 1];
                let mut crd = Vec::with_capacity(plan.prefix_counts[l]);
                let mut prev: Option<(usize, usize)> = None;
                for (pp, (t, _)) in pos_prev.iter_mut().zip(plan.tuples.iter()) {
                    let key = (*pp, t[l]);
                    if prev != Some(key) {
                        crd.push(key.1);
                        pos[key.0 + 1] += 1;
                        prev = Some(key);
                    }
                    *pp = crd.len() - 1;
                }
                for p in 0..parent_count {
                    pos[p + 1] += pos[p];
                }
                parent_count = crd.len();
                levels.push(LevelStorage::Compressed { pos, crd });
            }
        }
    }

    let mut vals = vec![0.0 as Value; parent_count];
    for (i, (_, v)) in plan.tuples.iter().enumerate() {
        vals[pos_prev[i]] += v;
    }
    Ok((levels, vals, parent_counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FormatSpec;

    fn nz(coords: &[(usize, usize)]) -> Vec<(Vec<usize>, Value)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| (vec![r, c], (i + 1) as Value))
            .collect()
    }

    #[test]
    fn plan_counts_prefixes() {
        let spec = FormatSpec::csr(4, 4);
        let plan = plan(&spec, nz(&[(0, 1), (0, 3), (2, 2)])).unwrap();
        // Level 0 = i1: rows {0, 2} → 2. Level 1 = k1: 3 distinct (row, col).
        assert_eq!(plan.prefix_counts, vec![2, 3, 3, 3]);
    }

    #[test]
    fn csr_materialization_matches_classic() {
        let spec = FormatSpec::csr(4, 4);
        let plan = plan(&spec, nz(&[(0, 1), (0, 3), (2, 2)])).unwrap();
        let (levels, vals, parents) = materialize(&spec, &plan, DEFAULT_BUDGET_WORDS).unwrap();
        assert_eq!(parents, vec![1, 4, 3, 3]);
        match &levels[1] {
            LevelStorage::Compressed { pos, crd } => {
                assert_eq!(pos, &vec![0, 2, 2, 3, 3]);
                assert_eq!(crd, &vec![1, 3, 2]);
            }
            _ => panic!("level 1 of CSR must be compressed"),
        }
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn bcsr_pads_blocks() {
        let spec = FormatSpec::bcsr(4, 4, 2, 2);
        let plan = plan(&spec, nz(&[(0, 0), (1, 1)])).unwrap();
        let (levels, vals, _) = materialize(&spec, &plan, DEFAULT_BUDGET_WORDS).unwrap();
        // One stored block of 2x2 = 4 value slots, two nonzero.
        assert_eq!(vals.len(), 4);
        assert_eq!(vals.iter().filter(|v| **v != 0.0).count(), 2);
        match &levels[1] {
            LevelStorage::Compressed { crd, .. } => assert_eq!(crd, &vec![0]),
            _ => panic!("BCSR level 1 compressed"),
        }
    }

    #[test]
    fn budget_is_enforced() {
        let spec = FormatSpec::dense(1024, 1024);
        let plan = plan(&spec, nz(&[(0, 0)])).unwrap();
        assert!(plan.words >= 1024 * 1024);
        let r = materialize(&spec, &plan, 1000);
        assert!(matches!(r, Err(FormatError::StorageTooLarge { .. })));
    }

    #[test]
    fn column_major_orders_by_column() {
        let spec = FormatSpec::csc(4, 4);
        let plan = plan(&spec, nz(&[(0, 3), (3, 0)])).unwrap();
        // Sorted by (k1, i1, ...): column 0 entry first.
        assert_eq!(plan.tuples[0].0[0], 0);
        assert_eq!(plan.tuples[1].0[0], 3);
    }

    #[test]
    fn duplicate_coords_are_summed() {
        let spec = FormatSpec::csr(2, 2);
        let plan = plan(&spec, vec![(vec![0, 0], 1.0), (vec![0, 0], 2.0)]).unwrap();
        let (_, vals, _) = materialize(&spec, &plan, DEFAULT_BUDGET_WORDS).unwrap();
        assert_eq!(vals, vec![3.0]);
    }
}
