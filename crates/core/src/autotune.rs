//! Oracle tuners over restricted spaces — the motivation experiments.
//!
//! Tables 1 and 2 of the paper compare tuning spaces: format-only (`F.`),
//! schedule-only (`S.`), and joint (`F.+S.`). These helpers implement those
//! restricted searches directly against the simulator (oracle evaluation,
//! no model), which isolates what each *space* can express from how well a
//! particular search navigates it.
//!
//! Restriction semantics in our SuperSchedule representation:
//!
//! * **Format-only** (`F.`): sample splits + level order + level formats;
//!   loops are the concordant traversal of the sampled format;
//!   parallelization stays at the baseline's — the paper's "keeping the
//!   iteration order identical to the baseline, except … concordant with
//!   how the tuned format is aligned".
//! * **Schedule-only** (`S.`): the format stays CSR/CSF (and therefore unit
//!   splits — a representational restriction documented in DESIGN.md);
//!   loop order and `parallelize(var, threads, chunk)` vary.
//! * **Joint** (`F.+S.`): a true co-optimizer. It explores both single-axis
//!   candidate sets, raw joint samples, concordant-loop variants with
//!   sampled parallelization, and finally sweeps the parallelization menu
//!   on the best format found — the coupling step that produces the
//!   out-sized wins of Table 1 (e.g. TSOPF's 2.02×). A joint tuner can
//!   always evaluate single-axis candidates, so `F.+S. ≥ max(F., S.)` holds
//!   structurally; its tuning bill is correspondingly larger.

use crate::{Result, WacoError};
use waco_baselines::TunedResult;
use waco_runtime::ThreadPool;
use waco_schedule::{named, Kernel, Parallelize, Space, SuperSchedule};
use waco_sim::Simulator;
use waco_tensor::gen::Rng64;
use waco_tensor::{CooMatrix, CooTensor3};

/// Which subspace a restricted search may explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Restriction {
    /// The full co-optimization space (`F.+S.`).
    Joint,
    /// Format only (`F.`): concordant loops, baseline parallelization.
    FormatOnly,
    /// Schedule only (`S.`): CSR/CSF format, loops and parallelization vary.
    ScheduleOnly,
}

fn project_format_only(space: &Space, sampled: SuperSchedule) -> SuperSchedule {
    let base = named::default_csr(space);
    let p = base.parallel.expect("default is parallel");
    named::concordant(space, sampled.splits, sampled.format, p.threads, p.chunk)
}

fn project_schedule_only(space: &Space, sampled: SuperSchedule) -> SuperSchedule {
    let base = named::default_csr(space);
    SuperSchedule {
        kernel: base.kernel,
        splits: base.splits.clone(),
        loop_order: sampled.loop_order,
        parallel: sampled.parallel,
        format: base.format,
    }
}

/// A running oracle search: measures candidates, tracks the best and the
/// accumulated tuning bill.
///
/// Candidates are measured in parallel batches on the persistent pool, but
/// folded in generation order, so the chosen schedule and the tuning bill
/// are bit-identical to a sequential search.
struct Oracle<'a, F: Fn(&SuperSchedule) -> waco_sim::Result<(f64, f64)> + Sync> {
    space: &'a Space,
    time: F,
    best: Option<(f64, f64, SuperSchedule)>,
    tuning: f64,
}

impl<'a, F: Fn(&SuperSchedule) -> waco_sim::Result<(f64, f64)> + Sync> Oracle<'a, F> {
    fn new(space: &'a Space, time: F) -> Self {
        Self {
            space,
            time,
            best: None,
            tuning: 0.0,
        }
    }

    fn try_candidate(&mut self, cand: &SuperSchedule) {
        self.try_batch(std::slice::from_ref(cand));
    }

    /// Evaluates a batch of candidates (the oracle-search fan-out) on the
    /// pool and folds the measurements in candidate order.
    fn try_batch(&mut self, cands: &[SuperSchedule]) {
        let valid: Vec<&SuperSchedule> = cands
            .iter()
            .filter(|c| c.validate(self.space).is_ok())
            .collect();
        let pool = ThreadPool::global();
        let time = &self.time;
        let timed = pool.map(&valid, pool.max_participants(), |c| time(c).ok());
        for (cand, res) in valid.iter().zip(timed) {
            if let Some((seconds, convert)) = res {
                self.tuning += seconds + convert;
                if self
                    .best
                    .as_ref()
                    .map(|(b, _, _)| seconds < *b)
                    .unwrap_or(true)
                {
                    self.best = Some((seconds, convert, (*cand).clone()));
                }
            }
        }
    }

    fn finish(self, name: String) -> Result<TunedResult> {
        let (seconds, convert, sched) = self.best.ok_or_else(|| {
            WacoError::Infeasible(
                "no candidate (nor the default format) simulated within budget".into(),
            )
        })?;
        let baseline = named::default_csr(self.space);
        let is_default =
            sched.a_format_spec(self.space).ok() == baseline.a_format_spec(self.space).ok();
        Ok(TunedResult {
            name,
            sched,
            kernel_seconds: seconds,
            tuning_seconds: self.tuning,
            convert_seconds: if is_default { 0.0 } else { convert },
        })
    }
}

fn run_search(
    space: &Space,
    trials: usize,
    seed: u64,
    restriction: Restriction,
    time: impl Fn(&SuperSchedule) -> waco_sim::Result<(f64, f64)> + Sync,
) -> Result<TunedResult> {
    let mut rng = Rng64::seed_from(seed);
    let mut oracle = Oracle::new(space, time);
    let baseline = named::default_csr(space);
    oracle.try_candidate(&baseline);

    match restriction {
        Restriction::FormatOnly => {
            let cands: Vec<SuperSchedule> = (0..trials)
                .map(|_| project_format_only(space, SuperSchedule::sample(space, &mut rng)))
                .collect();
            oracle.try_batch(&cands);
        }
        Restriction::ScheduleOnly => {
            let cands: Vec<SuperSchedule> = (0..trials)
                .map(|_| project_schedule_only(space, SuperSchedule::sample(space, &mut rng)))
                .collect();
            oracle.try_batch(&cands);
        }
        Restriction::Joint => {
            // Both single-axis candidate sets (same seed → superset of what
            // the restricted searches see)…
            let mut cands = Vec::with_capacity(trials * 3);
            for _ in 0..trials {
                let s = SuperSchedule::sample(space, &mut rng);
                cands.push(project_format_only(space, s.clone()));
                cands.push(project_schedule_only(space, s.clone()));
                cands.push(s);
            }
            oracle.try_batch(&cands);
            // …then couple: sweep parallelization on the best format found.
            if let Some((_, _, best)) = oracle.best.clone() {
                let par_vars = space.parallelizable_vars();
                if par_vars.is_empty() {
                    return oracle.finish(format!("{restriction:?}"));
                }
                let mut sweep = Vec::new();
                for &threads in &space.thread_options.clone() {
                    for chunk in [1usize, 8, 32, 128, 256] {
                        for var in [par_vars[0], par_vars[par_vars.len() - 1]] {
                            let mut cand = best.clone();
                            cand.parallel = Some(Parallelize {
                                var,
                                threads,
                                chunk,
                            });
                            sweep.push(cand);
                        }
                    }
                }
                oracle.try_batch(&sweep);
            }
        }
    }
    oracle.finish(format!("{restriction:?}"))
}

/// Oracle random search over a (restricted) space for a 2-D kernel.
///
/// # Errors
///
/// [`WacoError::WrongKernel`] if `kernel` is MTTKRP (use [`tune_tensor3`]);
/// [`WacoError::Infeasible`] when not even the TACO default simulates.
pub fn tune_matrix(
    sim: &Simulator,
    kernel: Kernel,
    m: &CooMatrix,
    dense_extent: usize,
    trials: usize,
    seed: u64,
    restriction: Restriction,
) -> Result<TunedResult> {
    if kernel == Kernel::MTTKRP {
        return Err(WacoError::WrongKernel {
            kernel,
            expected: "tune_tensor3",
        });
    }
    let space = sim.space_for(kernel, vec![m.nrows(), m.ncols()], dense_extent);
    run_search(&space, trials, seed, restriction, |sched| {
        sim.time_matrix(m, sched, &space)
            .map(|r| (r.seconds, r.convert_seconds))
    })
}

/// Oracle random search over a (restricted) space for MTTKRP.
///
/// # Errors
///
/// [`WacoError::Infeasible`] when not even the CSF default simulates.
pub fn tune_tensor3(
    sim: &Simulator,
    t: &CooTensor3,
    rank: usize,
    trials: usize,
    seed: u64,
    restriction: Restriction,
) -> Result<TunedResult> {
    let space = sim.space_for(Kernel::MTTKRP, t.dims().to_vec(), rank);
    run_search(&space, trials, seed, restriction, |sched| {
        sim.time_tensor3(t, sched, &space)
            .map(|r| (r.seconds, r.convert_seconds))
    })
}

/// Re-times a schedule tuned for one matrix on a different matrix of the
/// same shape (the Table 2 transfer experiment).
///
/// # Errors
///
/// [`WacoError::Sim`] on simulation failures.
pub fn transfer_matrix(
    sim: &Simulator,
    kernel: Kernel,
    target: &CooMatrix,
    dense_extent: usize,
    sched: &SuperSchedule,
) -> Result<f64> {
    let space = sim.space_for(kernel, vec![target.nrows(), target.ncols()], dense_extent);
    Ok(sim.time_matrix(target, sched, &space)?.seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_sim::MachineConfig;
    use waco_tensor::gen::{self};

    #[test]
    fn joint_dominates_restricted_spaces() {
        // The Table 1 shape: F.+S. ≥ max(F., S.).
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(1);
        let m = gen::blocked(128, 128, 16, 30, 0.95, &mut rng);
        let base = waco_baselines::fixed::fixed_csr_matrix(&sim, Kernel::SpMM, &m, 16).unwrap();
        let f = tune_matrix(&sim, Kernel::SpMM, &m, 16, 60, 5, Restriction::FormatOnly).unwrap();
        let s = tune_matrix(&sim, Kernel::SpMM, &m, 16, 60, 5, Restriction::ScheduleOnly).unwrap();
        let fs = tune_matrix(&sim, Kernel::SpMM, &m, 16, 60, 5, Restriction::Joint).unwrap();
        assert!(f.kernel_seconds <= base.kernel_seconds * 1.0001);
        assert!(s.kernel_seconds <= base.kernel_seconds * 1.0001);
        let best_single = f.kernel_seconds.min(s.kernel_seconds);
        assert!(
            fs.kernel_seconds <= best_single * 1.0001,
            "joint {} vs best single {}",
            fs.kernel_seconds,
            best_single
        );
    }

    #[test]
    fn schedule_only_keeps_csr() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(2);
        let m = gen::powerlaw_rows(128, 128, 8.0, 1.3, &mut rng);
        let s = tune_matrix(&sim, Kernel::SpMV, &m, 0, 40, 3, Restriction::ScheduleOnly).unwrap();
        let space = sim.space_for(Kernel::SpMV, vec![128, 128], 0);
        let spec = s.sched.a_format_spec(&space).unwrap();
        assert_eq!(spec.describe(), "i1(U) k1(C) i0(U) k0(U)");
        assert_eq!(s.convert_seconds, 0.0);
    }

    #[test]
    fn format_only_is_concordant() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(3);
        let m = gen::banded(96, 4, 0.6, &mut rng);
        let f = tune_matrix(&sim, Kernel::SpMV, &m, 0, 40, 3, Restriction::FormatOnly).unwrap();
        if f.name == "FormatOnly"
            && f.sched != named::default_csr(&sim.space_for(Kernel::SpMV, vec![96, 96], 0))
        {
            let loops = &f.sched.loop_order[..f.sched.format.order.len()];
            for (lv, ax) in loops.iter().zip(&f.sched.format.order) {
                assert_eq!((lv.dim, lv.part), (ax.dim, ax.part));
            }
        }
    }

    #[test]
    fn transfer_runs() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(4);
        let a = gen::uniform_random(64, 64, 0.05, &mut rng);
        let b = gen::blocked(64, 64, 8, 10, 0.9, &mut rng);
        let tuned = tune_matrix(&sim, Kernel::SpMV, &a, 0, 30, 5, Restriction::Joint).unwrap();
        let cross = transfer_matrix(&sim, Kernel::SpMV, &b, 0, &tuned.sched).unwrap();
        assert!(cross > 0.0);
    }

    #[test]
    fn mttkrp_joint_tuning() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(5);
        let t = gen::random_tensor3([16, 16, 16], 150, &mut rng);
        let base = waco_baselines::fixed::fixed_csf_tensor(&sim, &t, 8).unwrap();
        let fs = tune_tensor3(&sim, &t, 8, 40, 6, Restriction::Joint).unwrap();
        assert!(fs.kernel_seconds <= base.kernel_seconds * 1.0001);
    }
}
