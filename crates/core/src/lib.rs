//! WACO: Workload-Aware Co-optimization of the format and schedule of
//! sparse tensor programs.
//!
//! This crate is the top of the workspace — the end-to-end pipeline of the
//! paper (Figure 1):
//!
//! 1. **Train** a cost model on `(pattern, SuperSchedule, runtime)` tuples
//!    ([`Waco::train_2d`] / [`Waco::train_3d`]; ground truth from the
//!    deterministic machine simulator in `waco-sim`).
//! 2. **Build** a KNN graph over program embeddings of sampled
//!    SuperSchedules (lazily, per workload shape).
//! 3. **Tune**: given an input matrix, extract its WACONet feature once,
//!    run ANNS with the predictor head as the distance, measure the top-k
//!    candidates, and return the fastest ([`Waco::tune_matrix`] /
//!    [`Waco::tune_tensor3`]) — exactly §5.2's "among the top-10
//!    SuperSchedules selected by WACO according to the cost model, we
//!    report the fastest after we measured them".
//!
//! [`autotune`] additionally provides the restricted oracle tuners
//! (format-only / schedule-only / joint random search) behind the
//! motivation Tables 1 and 2.
//!
//! # Example
//!
//! ```
//! use waco_core::{Waco, WacoConfig};
//! use waco_schedule::Kernel;
//! use waco_sim::{MachineConfig, Simulator};
//! use waco_tensor::gen;
//!
//! let sim = Simulator::new(MachineConfig::xeon_like());
//! let corpus = gen::corpus(4, 24, 3);
//! let (mut waco, _stats) =
//!     Waco::train_2d(sim, Kernel::SpMV, &corpus, 0, WacoConfig::tiny()).unwrap();
//! let (name, m) = &corpus[0];
//! let tuned = waco.tune_matrix(m).unwrap();
//! let space = waco.space_for_matrix(m);
//! println!("{name}: {} in {:.3e}s", tuned.result.sched.describe(&space), tuned.result.kernel_seconds);
//! ```

pub mod autotune;
pub mod error;
pub mod pipeline;

pub use error::WacoError;
pub use pipeline::{prune_margin, PruneStats, SearchMode, SearchPipeline, PRUNE_MARGIN};

use std::collections::HashMap;
use std::path::Path;
use waco_anns::{ScheduleIndex, SearchBreakdown};
use waco_exec::AsymptoticProfile;
use waco_baselines::TunedResult;
use waco_model::dataset::{self, DataGenConfig};
use waco_model::train::{self, TrainConfig, TrainStats};
use waco_model::{CostModel, CostModelConfig};
use waco_schedule::{Kernel, Space, SuperSchedule};
use waco_sim::{SimError, Simulator};
use waco_sparseconv::Pattern;
use waco_tensor::gen::Rng64;
use waco_tensor::{CooMatrix, CooTensor3};

/// The result type of the public WACO API.
pub type Result<T> = std::result::Result<T, WacoError>;

/// Simulated feature-extraction cost per nonzero (sparse convolution is
/// linear in nnz — §5.4), used to express WACO's tuning overhead in the
/// same simulated clock as kernel times.
pub const SIM_FEATURE_SECONDS_PER_NNZ: f64 = 1e-7;

/// Simulated cost per ANNS cost-model evaluation (predictor head + graph
/// hop).
pub const SIM_SECONDS_PER_EVAL: f64 = 2e-6;

/// End-to-end WACO configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WacoConfig {
    /// Cost model architecture.
    pub model: CostModelConfig,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Dataset generation parameters.
    pub datagen: DataGenConfig,
    /// Number of SuperSchedules in the KNN graph.
    pub index_size: usize,
    /// Candidates measured on the (simulated) hardware per query
    /// (paper: top-10).
    pub topk: usize,
    /// ANNS beam width.
    pub ef: usize,
    /// Master seed.
    pub seed: u64,
}

impl WacoConfig {
    /// Laptop-scale defaults.
    pub fn small() -> Self {
        Self {
            model: CostModelConfig::small(),
            train: TrainConfig::small(),
            datagen: DataGenConfig::default(),
            index_size: 400,
            topk: 10,
            ef: 64,
            seed: 2023,
        }
    }

    /// Test-scale defaults.
    pub fn tiny() -> Self {
        Self {
            model: CostModelConfig::tiny(),
            train: TrainConfig::tiny(),
            datagen: DataGenConfig {
                schedules_per_matrix: 8,
                ..Default::default()
            },
            index_size: 80,
            topk: 5,
            ef: 32,
            seed: 2023,
        }
    }
}

impl Default for WacoConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Builder for [`WacoConfig`]; `build` validates the search parameters
/// (the nested model/train/datagen configs have builders of their own:
/// [`CostModelConfig`], [`TrainConfig::builder`],
/// [`DataGenConfig::builder`], [`waco_sparseconv::waconet::WacoNetConfig::builder`]).
#[derive(Debug, Clone)]
pub struct WacoConfigBuilder {
    cfg: WacoConfig,
}

impl WacoConfig {
    /// Starts a validated builder seeded with the laptop-scale defaults.
    pub fn builder() -> WacoConfigBuilder {
        WacoConfigBuilder { cfg: Self::small() }
    }
}

impl WacoConfigBuilder {
    /// Cost model architecture.
    pub fn model(mut self, model: CostModelConfig) -> Self {
        self.cfg.model = model;
        self
    }

    /// Training hyper-parameters.
    pub fn train(mut self, train: TrainConfig) -> Self {
        self.cfg.train = train;
        self
    }

    /// Dataset generation parameters.
    pub fn datagen(mut self, datagen: DataGenConfig) -> Self {
        self.cfg.datagen = datagen;
        self
    }

    /// KNN-graph size.
    pub fn index_size(mut self, n: usize) -> Self {
        self.cfg.index_size = n;
        self
    }

    /// Candidates measured per query.
    pub fn topk(mut self, n: usize) -> Self {
        self.cfg.topk = n;
        self
    }

    /// ANNS beam width.
    pub fn ef(mut self, n: usize) -> Self {
        self.cfg.ef = n;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// The index, top-k, and beam width must be nonzero; top-k cannot
    /// exceed the index size, and the beam must be at least top-k (HNSW
    /// returns at most `ef` candidates).
    pub fn build(self) -> Result<WacoConfig> {
        let c = &self.cfg;
        if c.index_size == 0 {
            return Err(WacoError::InvalidConfig(
                "index_size must be at least 1".into(),
            ));
        }
        if c.topk == 0 {
            return Err(WacoError::InvalidConfig("topk must be at least 1".into()));
        }
        if c.topk > c.index_size {
            return Err(WacoError::InvalidConfig(format!(
                "topk ({}) cannot exceed index_size ({})",
                c.topk, c.index_size
            )));
        }
        if c.ef < c.topk {
            return Err(WacoError::InvalidConfig(format!(
                "ef ({}) must be at least topk ({})",
                c.ef, c.topk
            )));
        }
        Ok(self.cfg)
    }
}

/// A WACO tuning outcome: the co-optimized format + schedule with full
/// overhead accounting, plus the search breakdown.
#[derive(Debug, Clone)]
pub struct WacoTuned {
    /// The tuned result (name, schedule, kernel/tuning/conversion times).
    pub result: TunedResult,
    /// Feature-vs-ANNS wall-time breakdown of the query (Figure 16b).
    pub breakdown: SearchBreakdown,
    /// How many top-k candidates were actually measured.
    pub candidates_measured: usize,
    /// Measured kernel time of the shipped default-CSR schedule — the
    /// floor both search modes pay one measurement for. `INFINITY` when
    /// the default itself failed to simulate.
    pub baseline_seconds: f64,
}

/// The trained WACO auto-tuner.
pub struct Waco {
    /// Which kernel this tuner optimizes.
    pub kernel: Kernel,
    /// The simulated machine (ground truth and measurement device).
    pub sim: Simulator,
    /// The trained cost model.
    pub model: CostModel,
    /// Dense-dimension extent of the kernel (|j| / |k| / rank).
    pub dense_extent: usize,
    cfg: WacoConfig,
    indices: HashMap<Vec<usize>, ScheduleIndex>,
    /// Stage-1 pipeline (lowered candidate plans + structure classes) per
    /// shape, parallel to `indices`.
    pipelines: HashMap<Vec<usize>, SearchPipeline>,
    /// Whether tuning runs the two-stage (pruned) or the full search.
    search_mode: SearchMode,
    /// Snapshot directory for per-shape index persistence, when enabled.
    index_cache: Option<std::path::PathBuf>,
}

impl std::fmt::Debug for Waco {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waco")
            .field("kernel", &self.kernel)
            .field("machine", &self.sim.machine.name)
            .field("model", &self.model)
            .finish()
    }
}

impl Waco {
    /// Trains a WACO tuner for a 2-D kernel on a matrix corpus.
    ///
    /// # Errors
    ///
    /// [`WacoError::WrongKernel`] if `kernel` is MTTKRP (use
    /// [`Waco::train_3d`]); [`WacoError::EmptyCorpus`] on an empty corpus.
    pub fn train_2d(
        sim: Simulator,
        kernel: Kernel,
        corpus: &[(String, CooMatrix)],
        dense_extent: usize,
        cfg: WacoConfig,
    ) -> Result<(Self, TrainStats)> {
        let ds = dataset::generate_2d(&sim, kernel, corpus, dense_extent, &cfg.datagen)?;
        let mut rng = Rng64::seed_from(cfg.seed);
        let mut model = CostModel::for_kernel(kernel, &ds.layout, cfg.model, &mut rng);
        let stats = train::train(&mut model, &ds, &cfg.train, &mut rng);
        Ok((
            Self {
                kernel,
                sim,
                model,
                dense_extent,
                cfg,
                indices: HashMap::new(),
                pipelines: HashMap::new(),
                search_mode: SearchMode::default(),
                index_cache: None,
            },
            stats,
        ))
    }

    /// Trains a WACO tuner for MTTKRP on a tensor corpus.
    ///
    /// # Errors
    ///
    /// [`WacoError::EmptyCorpus`] on an empty corpus.
    pub fn train_3d(
        sim: Simulator,
        corpus: &[(String, CooTensor3)],
        rank: usize,
        cfg: WacoConfig,
    ) -> Result<(Self, TrainStats)> {
        let ds = dataset::generate_3d(&sim, corpus, rank, &cfg.datagen)?;
        let mut rng = Rng64::seed_from(cfg.seed);
        let mut model = CostModel::for_kernel(Kernel::MTTKRP, &ds.layout, cfg.model, &mut rng);
        let stats = train::train(&mut model, &ds, &cfg.train, &mut rng);
        Ok((
            Self {
                kernel: Kernel::MTTKRP,
                sim,
                model,
                dense_extent: rank,
                cfg,
                indices: HashMap::new(),
                pipelines: HashMap::new(),
                search_mode: SearchMode::default(),
                index_cache: None,
            },
            stats,
        ))
    }

    /// Writes the trained cost model to `path` (text checkpoint).
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] on filesystem failures.
    pub fn save_checkpoint(&mut self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let mut file = std::fs::File::create(path)
            .map_err(|e| WacoError::io(format!("creating checkpoint {}", path.display()), e))?;
        self.model.save(&mut file)?;
        Ok(())
    }

    /// Replaces this tuner's model parameters with a checkpoint written by
    /// [`Waco::save_checkpoint`]. The checkpoint must match the model
    /// architecture (same config the tuner was trained with).
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] when the file cannot be read,
    /// [`WacoError::Checkpoint`] when it does not parse, and
    /// [`WacoError::ShapeMismatch`] when the architectures differ.
    pub fn load_checkpoint(&mut self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let file = std::fs::File::open(path)
            .map_err(|e| WacoError::io(format!("opening checkpoint {}", path.display()), e))?;
        self.model.load(std::io::BufReader::new(file))?;
        // Cached per-shape indices embed schedules under the old weights,
        // and the pipelines mirror the indices' candidate lists.
        self.indices.clear();
        self.pipelines.clear();
        Ok(())
    }

    /// Selects the search mode: [`SearchMode::Staged`] (the default) prunes
    /// asymptotically-dominated candidates before the ANNS traversal;
    /// [`SearchMode::Full`] runs the original unpruned search. The
    /// `search_pruning` verify suite holds the two modes to
    /// equal-or-better results at ≥2× fewer cost-model evaluations.
    pub fn set_search_mode(&mut self, mode: SearchMode) {
        self.search_mode = mode;
    }

    /// The active search mode.
    pub fn search_mode(&self) -> SearchMode {
        self.search_mode
    }

    /// The schedule space for a matrix under this tuner's machine.
    pub fn space_for_matrix(&self, m: &CooMatrix) -> Space {
        self.sim
            .space_for(self.kernel, vec![m.nrows(), m.ncols()], self.dense_extent)
    }

    /// Enables on-disk persistence of per-shape KNN indices under `dir`:
    /// `index_for` will load a matching snapshot instead of rebuilding, and
    /// write one after each build. Snapshots are keyed by a tag covering
    /// the model weights and index configuration, so stale files (e.g.
    /// after [`Waco::load_checkpoint`]) are ignored and replaced.
    pub fn set_index_cache(&mut self, dir: impl Into<std::path::PathBuf>) {
        self.index_cache = Some(dir.into());
    }

    fn index_for(&mut self, space: &Space) -> &ScheduleIndex {
        let key: Vec<usize> = space
            .sparse_dims
            .iter()
            .copied()
            .chain([space.dense_extent])
            .collect();
        if !self.indices.contains_key(&key) {
            let index = self
                .load_cached_index(space)
                .unwrap_or_else(|| self.build_and_cache_index(space));
            self.indices.insert(key.clone(), index);
        }
        &self.indices[&key]
    }

    /// Tries the snapshot cache; `None` means "build it" (missing file,
    /// stale tag, or corruption — all non-fatal by design).
    fn load_cached_index(&mut self, space: &Space) -> Option<ScheduleIndex> {
        let path = self.index_snapshot_path(space)?;
        let file = std::fs::File::open(&path).ok()?;
        let tag =
            waco_anns::snapshot_tag(&mut self.model, space, self.cfg.index_size, self.cfg.seed)
                .ok()?;
        let mut reader = std::io::BufReader::new(file);
        match ScheduleIndex::load_snapshot(&mut reader, space, tag, portfolio(space)) {
            Ok(index) => {
                waco_obs::counter("index.cache.loads", 1);
                Some(index)
            }
            Err(_) => {
                // Stale or damaged snapshot: rebuild (and overwrite below).
                waco_obs::counter("index.cache.stale", 1);
                None
            }
        }
    }

    fn build_and_cache_index(&mut self, space: &Space) -> ScheduleIndex {
        let index = ScheduleIndex::build_with_extras(
            &self.model,
            space,
            self.cfg.index_size,
            self.cfg.seed,
            portfolio(space),
        );
        if let Some(path) = self.index_snapshot_path(space) {
            let params = waco_anns::BuildParams {
                count: self.cfg.index_size,
                seed: self.cfg.seed,
                extras: portfolio(space),
            };
            let saved =
                waco_anns::snapshot_tag(&mut self.model, space, self.cfg.index_size, self.cfg.seed)
                    .ok()
                    .and_then(|tag| {
                        let mut file = std::io::BufWriter::new(std::fs::File::create(&path).ok()?);
                        index.save_snapshot(&mut file, tag, &params).ok()
                    });
            if saved.is_some() {
                waco_obs::counter("index.cache.saves", 1);
            }
        }
        index
    }

    /// Snapshot path for a space under the cache dir, or `None` when
    /// caching is disabled. The filename carries the shape; the tag inside
    /// the file carries everything else.
    fn index_snapshot_path(&self, space: &Space) -> Option<std::path::PathBuf> {
        let dir = self.index_cache.as_ref()?;
        let dims: Vec<String> = space.sparse_dims.iter().map(|d| d.to_string()).collect();
        let name = format!(
            "index-{}-{}x{}.anns",
            self.kernel,
            dims.join("x"),
            space.dense_extent
        );
        std::fs::create_dir_all(dir).ok()?;
        Some(dir.join(name))
    }

    /// Tunes the format and schedule for a matrix (Figure 1c): one feature
    /// extraction, ANNS over the KNN graph, then measurement of the top-k
    /// candidates on the simulated machine.
    ///
    /// # Errors
    ///
    /// [`WacoError::Infeasible`] when not even the fallback CSR default can
    /// be simulated.
    pub fn tune_matrix(&mut self, m: &CooMatrix) -> Result<WacoTuned> {
        let space = self.space_for_matrix(m);
        let pattern = Pattern::from_matrix(m);
        let profile = AsymptoticProfile::from_matrix(m);
        self.tune_inner(space, pattern, profile, |sim, sched, space| {
            sim.time_matrix(m, sched, space)
                .map(|r| (r.seconds, r.convert_seconds))
        })
    }

    /// Tunes the format and schedule for a 3-D tensor (MTTKRP).
    ///
    /// # Errors
    ///
    /// [`WacoError::Infeasible`] when not even the fallback CSF default can
    /// be simulated.
    pub fn tune_tensor3(&mut self, t: &CooTensor3) -> Result<WacoTuned> {
        let space = self
            .sim
            .space_for(self.kernel, t.dims().to_vec(), self.dense_extent);
        let pattern = Pattern::from_tensor3(t);
        let profile = AsymptoticProfile::from_tensor3(t);
        self.tune_inner(space, pattern, profile, |sim, sched, space| {
            sim.time_tensor3(t, sched, space)
                .map(|r| (r.seconds, r.convert_seconds))
        })
    }

    fn tune_inner(
        &mut self,
        space: Space,
        pattern: Pattern,
        profile: AsymptoticProfile,
        mut measure: impl FnMut(
            &Simulator,
            &SuperSchedule,
            &Space,
        ) -> std::result::Result<(f64, f64), SimError>,
    ) -> Result<WacoTuned> {
        let _tune_span = waco_obs::span("tune");
        let topk = self.cfg.topk;
        let ef = self.cfg.ef;
        let nnz = profile.nnz;
        // Borrow dance: build/cache the index (and its Stage-1 pipeline)
        // first, then query.
        self.index_for(&space);
        let key: Vec<usize> = space
            .sparse_dims
            .iter()
            .copied()
            .chain([space.dense_extent])
            .collect();
        if self.search_mode == SearchMode::Staged && !self.pipelines.contains_key(&key) {
            let built = SearchPipeline::new(&self.indices[&key]);
            self.pipelines.insert(key.clone(), built);
        }
        let index = &self.indices[&key];
        let t0 = std::time::Instant::now();
        let feat = self.model.extract_feature(&pattern);
        let feature_seconds = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let (hits, evals, pruned) = match self.search_mode {
            SearchMode::Full => {
                let (hits, evals, _) = index.query_with_feature(&self.model, &feat, topk, ef);
                (hits, evals, 0)
            }
            SearchMode::Staged => {
                // Stage 1: fold the cached candidate plans against the
                // workload profile and drop dominated candidates.
                let pipe = &self.pipelines[&key];
                let (allowed, stats) = pipe.prune(&profile, topk, prune_margin(self.kernel));
                // Stage 2: the learned model only ranks the survivors.
                // Pruning concentrated the set into one complexity class,
                // so the beam narrows with it: a quarter of the full-mode
                // `ef` (floored at 2·top-k) engages the masked query's
                // 4·ef evaluation budget — the margin the `search_pruning`
                // suite's ≥2× gate is built on. The narrowed beam applies
                // even when Stage 1 abstained (degenerate workload): the
                // budgeted stratified walk is what keeps the staged search
                // cheap there, since the mask alone prunes nothing.
                let ef_staged = (ef / 4).clamp(2 * topk.max(1), ef.max(1));
                let (hits, evals, _) =
                    index.query_with_feature_masked(&self.model, &feat, topk, ef_staged, &allowed);
                (hits, evals, stats.pruned())
            }
        };
        let anns_seconds = t1.elapsed().as_secs_f64();
        let breakdown = SearchBreakdown {
            feature_seconds,
            anns_seconds,
            evals,
            pruned,
        };

        // Measure the top-k plus the TACO default on the simulated
        // hardware; keep the fastest (measuring the default costs one extra
        // run and guarantees the tuner never regresses below the shipped
        // baseline).
        let mut measured = 0usize;
        let mut measure_cost = 0.0f64;
        let mut best: Option<(f64, f64, SuperSchedule)> = None;
        let mut baseline_seconds = f64::INFINITY;
        let default = waco_schedule::named::default_csr(&space);
        let candidates = hits
            .iter()
            .map(|&(idx, _)| index.schedules[idx].clone())
            .chain([default.clone()]);
        {
            let _measure_span = waco_obs::span("tune/measure");
            for sched in candidates {
                match measure(&self.sim, &sched, &space) {
                    Ok((seconds, convert)) => {
                        measured += 1;
                        measure_cost += seconds + convert;
                        if sched == default {
                            baseline_seconds = seconds;
                        }
                        if best.as_ref().map(|(b, _, _)| seconds < *b).unwrap_or(true) {
                            best = Some((seconds, convert, sched));
                        }
                    }
                    Err(_) => continue,
                }
            }
        }
        let (seconds, convert, sched) = best.ok_or_else(|| {
            WacoError::Infeasible(
                "no candidate (nor the default format) simulated within budget".into(),
            )
        })?;
        let convert = if sched.a_format_spec(&space).ok() == default.a_format_spec(&space).ok() {
            0.0 // the input already arrives in the default format
        } else {
            convert
        };
        let tuning = nnz as f64 * SIM_FEATURE_SECONDS_PER_NNZ
            + evals as f64 * SIM_SECONDS_PER_EVAL
            + measure_cost;
        if waco_obs::enabled() {
            waco_obs::counter("tune.calls", 1);
            waco_obs::counter("tune.candidates_measured", measured as u64);
            waco_obs::counter("tune.evals", evals as u64);
            waco_obs::counter("tune.pruned", pruned as u64);
            waco_obs::record("tune.tuning_seconds", tuning);
            waco_obs::record("tune.convert_seconds", convert);
            waco_obs::record("tune.kernel_seconds", seconds);
        }
        Ok(WacoTuned {
            result: TunedResult {
                name: "WACO".into(),
                sched,
                kernel_seconds: seconds,
                tuning_seconds: tuning,
                convert_seconds: convert,
            },
            breakdown,
            candidates_measured: measured,
            baseline_seconds,
        })
    }

    /// Access the (possibly cached) schedule index for a space — exposed
    /// for the search-strategy experiments (Figure 16).
    pub fn index(&mut self, space: &Space) -> &ScheduleIndex {
        self.index_for(space)
    }

    /// The configuration this tuner was built with.
    pub fn config(&self) -> &WacoConfig {
        &self.cfg
    }
}

/// Trains just the cost model for a 2-D kernel — the library entry behind
/// `waco-cli train`, for callers that want a checkpoint rather than a
/// ready [`Waco`] tuner.
///
/// # Errors
///
/// See [`Waco::train_2d`].
pub fn train_cost_model(
    sim: Simulator,
    kernel: Kernel,
    corpus: &[(String, CooMatrix)],
    dense_extent: usize,
    cfg: WacoConfig,
) -> Result<(CostModel, TrainStats)> {
    let (waco, stats) = Waco::train_2d(sim, kernel, corpus, dense_extent, cfg)?;
    Ok((waco.model, stats))
}

/// The classic-configuration portfolio seeded into the KNN graph next to
/// the uniform samples (the paper builds its graph from the training
/// dataset's SuperSchedules, which is likewise dense in reasonable
/// configurations). Shared with dataset generation.
fn portfolio(space: &Space) -> Vec<SuperSchedule> {
    waco_schedule::named::portfolio(space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_baselines::fixed::fixed_csr_matrix;
    use waco_sim::MachineConfig;
    use waco_tensor::gen;

    fn trained() -> (Waco, Vec<(String, CooMatrix)>) {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let corpus = gen::corpus(6, 24, 9);
        let (waco, _) = Waco::train_2d(sim, Kernel::SpMV, &corpus, 0, WacoConfig::tiny()).unwrap();
        (waco, corpus)
    }

    #[test]
    fn tune_returns_valid_schedule() {
        let (mut waco, corpus) = trained();
        let m = &corpus[0].1;
        let tuned = waco.tune_matrix(m).unwrap();
        let space = waco.space_for_matrix(m);
        assert!(tuned.result.sched.validate(&space).is_ok());
        assert!(tuned.result.kernel_seconds > 0.0);
        assert!(tuned.result.tuning_seconds > 0.0);
        assert!(tuned.candidates_measured > 0);
    }

    #[test]
    fn tuned_not_much_worse_than_fixed_csr() {
        // Even a tiny model measuring its top-k should land in the same
        // ballpark as the default (measurement protects against a bad
        // model).
        let (mut waco, corpus) = trained();
        let mut wins = 0usize;
        let mut total = 0usize;
        for (_, m) in corpus.iter().take(4) {
            let tuned = waco.tune_matrix(m).unwrap();
            let fixed = fixed_csr_matrix(&waco.sim, Kernel::SpMV, m, 0).unwrap();
            total += 1;
            if tuned.result.kernel_seconds <= fixed.kernel_seconds * 1.25 {
                wins += 1;
            }
        }
        assert!(
            wins * 2 >= total,
            "tuned lost badly too often: {wins}/{total}"
        );
    }

    #[test]
    fn index_is_cached_per_shape() {
        let (mut waco, corpus) = trained();
        let m = &corpus[0].1;
        let _ = waco.tune_matrix(m).unwrap();
        let n_after_first = waco.indices.len();
        let _ = waco.tune_matrix(m).unwrap();
        assert_eq!(waco.indices.len(), n_after_first, "same shape reuses index");
    }

    #[test]
    fn staged_search_prunes_and_stays_competitive() {
        let (mut waco, corpus) = trained();
        let m = &corpus[1].1;
        assert_eq!(waco.search_mode(), SearchMode::Staged);
        let staged = waco.tune_matrix(m).unwrap();
        assert!(staged.breakdown.pruned > 0, "nothing was pruned");
        waco.set_search_mode(SearchMode::Full);
        let full = waco.tune_matrix(m).unwrap();
        assert_eq!(full.breakdown.pruned, 0);
        // Pruned Stage 2 must evaluate strictly fewer candidates, and the
        // measured winner must not regress (the default-CSR floor is
        // measured in both modes).
        assert!(
            staged.breakdown.evals < full.breakdown.evals,
            "staged {} !< full {}",
            staged.breakdown.evals,
            full.breakdown.evals
        );
        assert!(staged.result.kernel_seconds <= full.result.kernel_seconds * 1.5);
        // Staged tuning is deterministic for a fixed workload.
        waco.set_search_mode(SearchMode::Staged);
        let again = waco.tune_matrix(m).unwrap();
        assert_eq!(staged.result.sched, again.result.sched);
        assert_eq!(staged.breakdown.evals, again.breakdown.evals);
    }

    #[test]
    fn tune_tensor3_works() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(4);
        let corpus: Vec<(String, CooTensor3)> = (0..3)
            .map(|i| {
                (
                    format!("t{i}"),
                    gen::random_tensor3([12, 12, 12], 100, &mut rng),
                )
            })
            .collect();
        let (mut waco, _) = Waco::train_3d(sim, &corpus, 4, WacoConfig::tiny()).unwrap();
        let tuned = waco.tune_tensor3(&corpus[0].1).unwrap();
        assert!(tuned.result.kernel_seconds > 0.0);
    }

    #[test]
    fn debug_impl() {
        let (waco, _) = trained();
        assert!(format!("{waco:?}").contains("SpMV"));
    }
}
