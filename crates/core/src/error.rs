//! The unified error type of the public WACO API.
//!
//! Every fallible entry point in `waco-core` returns
//! `Result<_, WacoError>`. Lower crates keep their own lightweight error
//! types (`waco_model::ModelError`, `waco_sparseconv::ConfigError`,
//! `waco_nn::serialize::SerializeError`, `waco_sim::SimError`); the `From`
//! impls here let `?` lift all of them, so callers match on one enum and
//! `waco-cli` can map any failure to a one-line message and exit code 2.

use waco_model::ModelError;
use waco_nn::serialize::SerializeError;
use waco_schedule::Kernel;
use waco_sim::SimError;

/// An error from the WACO tuning pipeline.
#[derive(Debug)]
pub enum WacoError {
    /// An I/O operation failed; `context` names what was being done
    /// (e.g. the checkpoint path).
    Io {
        /// What was being read or written.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A checkpoint did not parse as a WACO model.
    Checkpoint(String),
    /// A checkpoint parsed but its tensor shapes do not match this model's
    /// architecture.
    ShapeMismatch(String),
    /// A schedule is invalid for its space.
    InvalidSchedule(String),
    /// A configuration value was rejected by a builder.
    InvalidConfig(String),
    /// The training corpus contained no workloads.
    EmptyCorpus,
    /// An entry point was called with a kernel it does not handle.
    WrongKernel {
        /// The kernel that was passed.
        kernel: Kernel,
        /// What to call instead.
        expected: &'static str,
    },
    /// Tuning found no feasible candidate: not even the fallback default
    /// format could be simulated for this workload.
    Infeasible(String),
    /// The machine simulator rejected a measurement.
    Sim(SimError),
}

impl std::fmt::Display for WacoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { context, source } => write!(f, "{context}: {source}"),
            Self::Checkpoint(msg) => write!(f, "bad checkpoint: {msg}"),
            Self::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            Self::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::EmptyCorpus => write!(f, "empty training corpus"),
            Self::WrongKernel { kernel, expected } => {
                write!(f, "kernel {kernel} is not supported here; use {expected}")
            }
            Self::Infeasible(msg) => write!(f, "no feasible schedule: {msg}"),
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for WacoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl WacoError {
    /// Wraps an I/O error with what was being attempted.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Self::Io {
            context: context.into(),
            source,
        }
    }
}

impl From<SimError> for WacoError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<ModelError> for WacoError {
    fn from(e: ModelError) -> Self {
        match e {
            ModelError::EmptyCorpus => Self::EmptyCorpus,
            ModelError::WrongKernel { kernel, expected } => Self::WrongKernel { kernel, expected },
            ModelError::InvalidConfig(msg) => Self::InvalidConfig(msg),
        }
    }
}

impl From<waco_sparseconv::ConfigError> for WacoError {
    fn from(e: waco_sparseconv::ConfigError) -> Self {
        Self::InvalidConfig(e.0)
    }
}

impl From<SerializeError> for WacoError {
    fn from(e: SerializeError) -> Self {
        match e {
            SerializeError::Io(source) => Self::io("checkpoint I/O", source),
            SerializeError::Parse(msg) if msg.contains("shape mismatch") => {
                Self::ShapeMismatch(msg)
            }
            SerializeError::Parse(msg) => Self::Checkpoint(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line() {
        let cases: Vec<WacoError> = vec![
            WacoError::io("reading matrix foo.smtx", std::io::Error::other("boom")),
            WacoError::Checkpoint("bad header".into()),
            WacoError::ShapeMismatch("checkpoint tensor shape mismatch".into()),
            WacoError::InvalidSchedule("split size 0".into()),
            WacoError::InvalidConfig("train.epochs must be at least 1".into()),
            WacoError::EmptyCorpus,
            WacoError::WrongKernel {
                kernel: Kernel::MTTKRP,
                expected: "tune_tensor3",
            },
            WacoError::Infeasible("work limit 0".into()),
            WacoError::Sim(SimError::TooExpensive {
                estimate: 1.0,
                limit: 0.5,
            }),
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.contains('\n'), "one-line messages only: {msg:?}");
        }
    }

    #[test]
    fn serialize_error_routing() {
        let shape: WacoError =
            SerializeError::Parse("checkpoint tensor shape mismatch".into()).into();
        assert!(matches!(shape, WacoError::ShapeMismatch(_)));
        let parse: WacoError = SerializeError::Parse("bad checkpoint header".into()).into();
        assert!(matches!(parse, WacoError::Checkpoint(_)));
        let io: WacoError = SerializeError::Io(std::io::Error::other("x")).into();
        assert!(matches!(io, WacoError::Io { .. }));
    }
}
