//! The staged search pipeline: asymptotic pruning (Stage 1) in front of the
//! learned-model ANNS traversal (Stage 2).
//!
//! The monolithic tune path scored every graph vertex the beam touched.
//! Following Ahrens & Kjolstad's asymptotic cost model (and SparseAuto's
//! prune-then-search staging), Stage 1 lowers each indexed candidate once,
//! derives its symbolic iteration-domain bound from the plan IR
//! ([`ExecutionPlan::asymptotic_bound`]), and discards candidates whose
//! bound is Θ-dominated — more than [`PRUNE_MARGIN`]× the best bound. The
//! learned model then only ranks the survivors, which is where its
//! workload sensitivity actually matters: asymptotics decide *which
//! complexity class* to search, the model decides *where inside it*.
//!
//! Bounds are computed per structure class ([`waco_schedule::dominance`]):
//! schedules differing only in parallelization share one bound evaluation.
//! Soundness knobs: the pruner always keeps at least `min_keep` candidates
//! (backfilled in bound order), so the survivor set can never be empty and
//! Stage 2 always has a full top-k to measure.

use waco_anns::ScheduleIndex;
use waco_exec::{AsymptoticProfile, ExecutionPlan};
use waco_schedule::dominance::structure_classes;

/// How the tuner searches its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Two-stage search: asymptotic pruning, then masked ANNS over the
    /// survivors (the default).
    #[default]
    Staged,
    /// Single-stage search: the original unpruned ANNS traversal.
    Full,
}

/// Dominance margin of Stage 1: a candidate survives when its asymptotic
/// bound is within this factor of the best candidate's bound. The margin
/// absorbs the bound's modeling error (constant factors, cache effects the
/// simulator charges but the bound cannot see); outside it the candidate is
/// in a worse complexity class for this workload and the learned model
/// never needs to score it. Calibrated against the `search_pruning` verify
/// suite: large enough that the pruned search stays equal-or-better on the
/// structure corpus overall (geomean of staged/full time ≤ 1, with a hard
/// per-case collapse ceiling), small enough to cut cost-model evaluations
/// ≥2×.
pub const PRUNE_MARGIN: f64 = 6.0;

/// The dominance margin for a kernel. Most kernels use [`PRUNE_MARGIN`];
/// two get a wider band because their bounds carry more modeling error:
/// MTTKRP's order-3 bound folds per-mode slice histograms that average
/// away fiber structure, and SpMM's bound scales the traversal term by the
/// dense column extent, overweighting layouts that amortize it — measured
/// winners for both sit up to ~10–15× above the minimum bound while still
/// being in the best complexity class.
pub fn prune_margin(kernel: waco_schedule::Kernel) -> f64 {
    match kernel {
        waco_schedule::Kernel::MTTKRP | waco_schedule::Kernel::SpMM => 4.0 * PRUNE_MARGIN,
        _ => PRUNE_MARGIN,
    }
}

/// Stats of one Stage-1 pruning pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneStats {
    /// Indexed candidates considered.
    pub candidates: usize,
    /// Candidates that survived into Stage 2.
    pub survivors: usize,
    /// Distinct structure classes among the candidates (bound evaluations
    /// performed).
    pub classes: usize,
    /// The best (smallest) asymptotic bound seen.
    pub min_bound: f64,
}

impl PruneStats {
    /// Candidates discarded by the pass.
    pub fn pruned(&self) -> usize {
        self.candidates - self.survivors
    }
}

/// Stage 1 of the search, pre-lowered for one `(index, space)` pair.
///
/// Construction lowers every indexed schedule once (plans are operand-free
/// and reusable across every workload of the shape); each [`Self::prune`]
/// call then only folds the cached plans against a workload profile.
/// Deterministic throughout: same index + same profile → same mask.
#[derive(Debug)]
pub struct SearchPipeline {
    /// Lowered plan per candidate (`None` when lowering fails — such a
    /// candidate can never be measured, so it never survives on merit).
    plans: Vec<Option<ExecutionPlan>>,
    /// Structure class of each candidate.
    class_of: Vec<usize>,
    /// Number of structure classes.
    classes: usize,
}

impl SearchPipeline {
    /// Lowers the index's candidates and groups them into structure classes.
    pub fn new(index: &ScheduleIndex) -> Self {
        let space = index.space();
        let plans: Vec<Option<ExecutionPlan>> = index
            .schedules
            .iter()
            .map(|s| ExecutionPlan::build(s, space).ok())
            .collect();
        let (class_of, representatives) = structure_classes(&index.schedules);
        Self {
            plans,
            class_of,
            classes: representatives.len(),
        }
    }

    /// The cached plan of candidate `i`, if it lowered.
    pub fn plan(&self, i: usize) -> Option<&ExecutionPlan> {
        self.plans.get(i).and_then(|p| p.as_ref())
    }

    /// Runs Stage 1 for one workload: returns the survivor mask (parallel
    /// to the index's candidates) and the pass stats.
    ///
    /// Survivors are the candidates whose class bound is within `margin` of
    /// the minimum; when fewer than `min_keep` qualify, the next-best
    /// candidates (by `(bound, index)` order) are backfilled so Stage 2
    /// always has a full top-k to choose from. At least one candidate
    /// always survives.
    pub fn prune(
        &self,
        profile: &AsymptoticProfile,
        min_keep: usize,
        margin: f64,
    ) -> (Vec<bool>, PruneStats) {
        let n = self.plans.len();
        // One bound per structure class, computed from the first member
        // that lowered (class members share their iteration-domain shape).
        let mut class_bound = vec![f64::INFINITY; self.classes];
        for (i, plan) in self.plans.iter().enumerate() {
            let c = self.class_of[i];
            if class_bound[c].is_infinite() {
                if let Some(p) = plan {
                    class_bound[c] = p.asymptotic_bound(profile).work;
                }
            }
        }
        let bound_of = |i: usize| class_bound[self.class_of[i]];
        let min_bound = (0..n)
            .filter(|&i| self.plans[i].is_some())
            .map(bound_of)
            .fold(f64::INFINITY, f64::min);
        // Asymptotic dominance is only meaningful when the sparse term can
        // dominate. With fewer nonzeros than the longest dimension, every
        // candidate's cost is mostly constant dense-loop overhead the bound
        // ranks poorly (measured winners on such workloads sit up to ~95×
        // above the minimum bound), so Stage 1 abstains: every lowered
        // candidate survives and only Stage 2's evaluation budget separates
        // the staged search from the unpruned one. Likewise a non-positive
        // or non-finite minimum carries no ranking information at all.
        let degenerate = profile.nnz <= profile.dims.iter().copied().max().unwrap_or(0);
        let cutoff = if degenerate || !min_bound.is_finite() || min_bound <= 0.0 {
            f64::INFINITY
        } else {
            min_bound * margin
        };
        let mut allowed: Vec<bool> = (0..n)
            .map(|i| self.plans[i].is_some() && bound_of(i) <= cutoff)
            .collect();
        let mut survivors = allowed.iter().filter(|&&a| a).count();
        if survivors < min_keep.max(1) {
            // Backfill deterministically by (bound, index).
            let mut rest: Vec<usize> = (0..n).filter(|&i| !allowed[i]).collect();
            rest.sort_by(|&a, &b| bound_of(a).total_cmp(&bound_of(b)).then(a.cmp(&b)));
            for i in rest {
                if survivors >= min_keep.max(1) {
                    break;
                }
                allowed[i] = true;
                survivors += 1;
            }
        }
        let stats = PruneStats {
            candidates: n,
            survivors,
            classes: self.classes,
            min_bound,
        };
        (allowed, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_model::{CostModel, CostModelConfig};
    use waco_schedule::{encode, Kernel, Space};
    use waco_tensor::gen::Rng64;

    fn pipeline() -> (ScheduleIndex, SearchPipeline) {
        let mut rng = Rng64::seed_from(1);
        let space = Space::new(Kernel::SpMV, vec![32, 32], 0);
        let layout = encode::layout(&space);
        let model = CostModel::for_kernel(Kernel::SpMV, &layout, CostModelConfig::tiny(), &mut rng);
        let index = ScheduleIndex::build(&model, &space, 150, 7);
        let pipeline = SearchPipeline::new(&index);
        (index, pipeline)
    }

    #[test]
    fn prune_is_deterministic_and_nonempty() {
        let (index, pipeline) = pipeline();
        let profile = AsymptoticProfile::uniform(&[32, 32], 128);
        let (mask, stats) = pipeline.prune(&profile, 5, PRUNE_MARGIN);
        let (mask2, stats2) = pipeline.prune(&profile, 5, PRUNE_MARGIN);
        assert_eq!(mask, mask2);
        assert_eq!(stats, stats2);
        assert_eq!(mask.len(), index.len());
        assert!(stats.survivors >= 5);
        assert!(stats.survivors + stats.pruned() == stats.candidates);
        assert!(stats.min_bound.is_finite());
    }

    #[test]
    fn tight_margin_still_keeps_min_keep() {
        let (_index, pipeline) = pipeline();
        let profile = AsymptoticProfile::uniform(&[32, 32], 128);
        // A margin below 1.0 admits nobody on merit; backfill must rescue
        // exactly min_keep survivors.
        let (mask, stats) = pipeline.prune(&profile, 7, 0.0);
        assert_eq!(stats.survivors, 7);
        assert_eq!(mask.iter().filter(|&&a| a).count(), 7);
    }

    #[test]
    fn degenerate_workloads_keep_every_lowered_candidate() {
        let (_index, pipeline) = pipeline();
        // One nonzero in a 32x32 space: every candidate's cost is dense
        // overhead, so Stage 1 must abstain rather than guess.
        let profile = AsymptoticProfile::uniform(&[32, 32], 1);
        let (mask, stats) = pipeline.prune(&profile, 5, PRUNE_MARGIN);
        let (mask2, stats2) = pipeline.prune(&profile, 5, PRUNE_MARGIN);
        assert_eq!(mask, mask2, "abstention is deterministic");
        assert_eq!(stats, stats2);
        let lowered = (0..mask.len()).filter(|&i| pipeline.plan(i).is_some()).count();
        assert_eq!(stats.survivors, lowered, "abstention keeps all lowered");
        assert_eq!(mask.iter().filter(|&&a| a).count(), lowered);
    }

    #[test]
    fn surviving_bounds_dominate_pruned_ones() {
        let (_index, pipeline) = pipeline();
        let profile = AsymptoticProfile::uniform(&[32, 32], 200);
        let (mask, _) = pipeline.prune(&profile, 1, 2.0);
        let bound = |i: usize| {
            pipeline
                .plan(i)
                .map(|p| p.asymptotic_bound(&profile).work)
                .unwrap_or(f64::INFINITY)
        };
        let worst_survivor = (0..mask.len())
            .filter(|&i| mask[i])
            .map(bound)
            .fold(0.0f64, f64::max);
        let best_pruned = (0..mask.len())
            .filter(|&i| !mask[i])
            .map(bound)
            .fold(f64::INFINITY, f64::min);
        // Merit survivors sit under the cutoff; anything pruned is above it.
        assert!(worst_survivor <= best_pruned.max(worst_survivor));
        assert!((0..mask.len()).any(|i| !mask[i]), "something was pruned");
    }
}
