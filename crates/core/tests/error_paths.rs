//! Every user-reachable [`WacoError`] variant, triggered for real through
//! the public API — no variant may be constructible only in theory.

use waco_core::{Waco, WacoConfig, WacoError};
use waco_model::dataset::DataGenConfig;
use waco_model::train::TrainConfig;
use waco_model::CostModelConfig;
use waco_schedule::Kernel;
use waco_sim::{MachineConfig, Simulator};
use waco_tensor::gen;

fn sim() -> Simulator {
    Simulator::new(MachineConfig::xeon_like())
}

fn tiny_waco() -> Waco {
    let corpus = gen::corpus(3, 24, 1);
    let (waco, _) = Waco::train_2d(sim(), Kernel::SpMV, &corpus, 0, WacoConfig::tiny())
        .expect("tiny training succeeds");
    waco
}

fn tmpfile(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("waco-core-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn empty_corpus_is_reported() {
    let err = Waco::train_2d(sim(), Kernel::SpMV, &[], 0, WacoConfig::tiny()).unwrap_err();
    assert!(matches!(err, WacoError::EmptyCorpus));
    assert_eq!(err.to_string(), "empty training corpus");
}

#[test]
fn wrong_kernel_is_reported() {
    let corpus = gen::corpus(2, 24, 1);
    let err = Waco::train_2d(sim(), Kernel::MTTKRP, &corpus, 0, WacoConfig::tiny()).unwrap_err();
    match err {
        WacoError::WrongKernel { kernel, expected } => {
            assert_eq!(kernel, Kernel::MTTKRP);
            assert!(expected.contains("3"), "points at the 3-D API: {expected}");
        }
        other => panic!("expected WrongKernel, got {other}"),
    }
}

#[test]
fn missing_checkpoint_is_io() {
    let mut waco = tiny_waco();
    let err = waco
        .load_checkpoint("/nonexistent/waco-model.ckpt")
        .unwrap_err();
    match &err {
        WacoError::Io { context, .. } => assert!(context.contains("opening checkpoint")),
        other => panic!("expected Io, got {other}"),
    }
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn garbage_checkpoint_is_checkpoint_error() {
    let path = tmpfile("garbage.ckpt");
    std::fs::write(&path, "this is not a checkpoint\n").unwrap();
    let mut waco = tiny_waco();
    let err = waco.load_checkpoint(&path).unwrap_err();
    assert!(
        matches!(err, WacoError::Checkpoint(_)),
        "expected Checkpoint, got {err}"
    );
}

#[test]
fn architecture_mismatch_is_shape_mismatch() {
    let path = tmpfile("tiny.ckpt");
    let mut wider_arch = {
        let corpus = gen::corpus(3, 24, 1);
        // Same tensor count as tiny (same layer structure), different
        // widths — the per-tensor shape check must fire, not the count one.
        let model = CostModelConfig {
            predictor_hidden: CostModelConfig::tiny().predictor_hidden * 2,
            ..CostModelConfig::tiny()
        };
        let cfg = WacoConfig::builder()
            .model(model)
            .train(TrainConfig::tiny())
            .datagen(
                DataGenConfig::builder()
                    .schedules_per_matrix(8)
                    .build()
                    .unwrap(),
            )
            .index_size(80)
            .topk(5)
            .ef(32)
            .build()
            .unwrap();
        let (waco, _) =
            Waco::train_2d(sim(), Kernel::SpMV, &corpus, 0, cfg).expect("training succeeds");
        waco
    };
    tiny_waco().save_checkpoint(&path).unwrap();
    let err = wider_arch.load_checkpoint(&path).unwrap_err();
    assert!(
        matches!(err, WacoError::ShapeMismatch(_)),
        "expected ShapeMismatch, got {err}"
    );
}

#[test]
fn checkpoint_roundtrip_succeeds() {
    let path = tmpfile("roundtrip.ckpt");
    let mut waco = tiny_waco();
    waco.save_checkpoint(&path).unwrap();
    waco.load_checkpoint(&path).unwrap();
}

#[test]
fn zero_work_budget_is_infeasible() {
    let mut waco = tiny_waco();
    // A machine that rejects every kernel: even the fallback CSR default
    // cannot simulate within a zero work budget.
    waco.sim = sim().with_work_limit(0.0);
    let mut rng = waco_tensor::gen::Rng64::seed_from(5);
    let m = gen::uniform_random(32, 32, 0.1, &mut rng);
    let err = waco.tune_matrix(&m).unwrap_err();
    assert!(
        matches!(err, WacoError::Infeasible(_)),
        "expected Infeasible, got {err}"
    );
}

#[test]
fn builder_rejections_are_invalid_config() {
    for err in [
        WacoConfig::builder().index_size(0).build().unwrap_err(),
        WacoConfig::builder().topk(0).build().unwrap_err(),
        WacoConfig::builder()
            .index_size(10)
            .topk(20)
            .build()
            .unwrap_err(),
        WacoConfig::builder()
            .topk(8)
            .ef(4)
            .index_size(80)
            .build()
            .unwrap_err(),
    ] {
        assert!(
            matches!(err, WacoError::InvalidConfig(_)),
            "expected InvalidConfig, got {err}"
        );
    }
    assert!(TrainConfig::builder().epochs(0).build().is_err());
    assert!(TrainConfig::builder().lr(f32::NAN).build().is_err());
    assert!(TrainConfig::builder().lr(-0.5).build().is_err());
    assert!(TrainConfig::builder().val_fraction(1.0).build().is_err());
    assert!(DataGenConfig::builder()
        .schedules_per_matrix(0)
        .build()
        .is_err());
    assert!(DataGenConfig::builder()
        .max_tries_factor(0)
        .build()
        .is_err());
}

// The builder invariants, property-tested: `build()` succeeds exactly when
// the documented constraints hold, and the built config echoes its inputs.
waco_check::props! {
    cases = 128,
    fn waco_config_builder_validates(index_size in 0usize..64, topk in 0usize..64, ef in 0usize..64) {
        let valid = index_size >= 1 && topk >= 1 && topk <= index_size && ef >= topk;
        let built = WacoConfig::builder()
            .index_size(index_size)
            .topk(topk)
            .ef(ef)
            .build();
        assert_eq!(built.is_ok(), valid, "index {index_size}, topk {topk}, ef {ef}");
        if let Ok(cfg) = built {
            assert_eq!(
                (cfg.index_size, cfg.topk, cfg.ef),
                (index_size, topk, ef)
            );
        }
    }
}

waco_check::props! {
    cases = 128,
    fn train_config_builder_validates(epochs in 0usize..8, batch in 0usize..8, lr_milli in 0u32..2000) {
        let lr = lr_milli as f32 * 1e-3;
        let valid = epochs >= 1 && batch >= 2 && lr > 0.0;
        let built = TrainConfig::builder().epochs(epochs).batch(batch).lr(lr).build();
        assert_eq!(built.is_ok(), valid, "epochs {epochs}, batch {batch}, lr {lr}");
    }
}

waco_check::props! {
    cases = 64,
    fn datagen_builder_validates(schedules in 0usize..6, tries in 0usize..6) {
        let built = DataGenConfig::builder()
            .schedules_per_matrix(schedules)
            .max_tries_factor(tries)
            .build();
        assert_eq!(built.is_ok(), schedules >= 1 && tries >= 1);
    }
}
