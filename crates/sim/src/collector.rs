//! Event collection during simulated walks.

use waco_exec::nest::Instrument;
use waco_schedule::LoopVar;

/// Raw traversal event counts of one walked chunk.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventCounts {
    /// Children yielded by concordant level iterations.
    pub concordant_steps: u64,
    /// Iterations of discordant dense loops (including wasted ones).
    pub dense_steps: u64,
    /// Binary-search / arithmetic probes of locates.
    pub locate_probes: u64,
    /// Locates that missed (pruned subtrees).
    pub locate_misses: u64,
    /// Innermost bodies reached (stored nonzeros visited).
    pub bodies: u64,
}

impl EventCounts {
    /// Element-wise sum.
    pub fn add(&mut self, other: &EventCounts) {
        self.concordant_steps += other.concordant_steps;
        self.dense_steps += other.dense_steps;
        self.locate_probes += other.locate_probes;
        self.locate_misses += other.locate_misses;
        self.bodies += other.bodies;
    }
}

impl Instrument for EventCounts {
    fn concordant(&mut self, _level: usize, children: usize) {
        self.concordant_steps += children as u64;
    }
    fn dense_loop(&mut self, _var: LoopVar, extent: usize) {
        self.dense_steps += extent as u64;
    }
    fn locate(&mut self, _level: usize, probes: usize, hit: bool) {
        self.locate_probes += probes as u64;
        if !hit {
            self.locate_misses += 1;
        }
    }
    fn body(&mut self) {
        self.bodies += 1;
    }
}

/// A FIFO-set approximation of LRU cache residency for one gather operand.
///
/// Keys are operand units (a cache line of `x` for SpMV, a row of `B` for
/// SpMM, ...). Capacity is `cache_bytes / unit_bytes`. On access, a resident
/// key is a hit; a miss inserts the key, evicting in insertion order — a
/// cheap deterministic stand-in for LRU that preserves the
/// working-set-vs-capacity behavior the "sparse block" format exploits.
#[derive(Debug)]
pub struct ReuseTracker {
    capacity: usize,
    set: std::collections::HashSet<u64>,
    queue: std::collections::VecDeque<u64>,
    hits: u64,
    misses: u64,
}

impl ReuseTracker {
    /// A tracker holding up to `capacity` units (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            set: std::collections::HashSet::with_capacity(capacity.min(1 << 20)),
            queue: std::collections::VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Records an access to `key`; returns `true` on a hit.
    pub fn access(&mut self, key: u64) -> bool {
        if self.set.contains(&key) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.set.len() >= self.capacity {
            if let Some(old) = self.queue.pop_front() {
                self.set.remove(&old);
            }
        }
        self.set.insert(key);
        self.queue.push_back(key);
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio in `[0, 1]` (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_counts_accumulate() {
        let mut a = EventCounts::default();
        a.concordant(0, 5);
        a.dense_loop(LoopVar::outer(0), 3);
        a.locate(1, 4, false);
        a.body();
        assert_eq!(a.concordant_steps, 5);
        assert_eq!(a.dense_steps, 3);
        assert_eq!(a.locate_probes, 4);
        assert_eq!(a.locate_misses, 1);
        assert_eq!(a.bodies, 1);
        let mut b = a;
        b.add(&a);
        assert_eq!(b.bodies, 2);
    }

    #[test]
    fn reuse_tracker_hits_within_capacity() {
        let mut t = ReuseTracker::new(4);
        for k in 0..4 {
            assert!(!t.access(k));
        }
        for k in 0..4 {
            assert!(t.access(k), "resident key must hit");
        }
        assert_eq!(t.misses(), 4);
        assert_eq!(t.hits(), 4);
    }

    #[test]
    fn reuse_tracker_evicts_beyond_capacity() {
        let mut t = ReuseTracker::new(2);
        t.access(1);
        t.access(2);
        t.access(3); // evicts 1
        assert!(!t.access(1), "evicted key must miss");
        assert!(t.miss_ratio() > 0.9);
    }

    #[test]
    fn streaming_pattern_all_misses() {
        let mut t = ReuseTracker::new(8);
        for k in 0..1000u64 {
            t.access(k);
        }
        assert_eq!(t.misses(), 1000);
    }

    #[test]
    fn blocked_pattern_mostly_hits() {
        // Touch keys in blocks of 4, revisiting each block 16 times: with
        // capacity 8, within-block reuse hits.
        let mut t = ReuseTracker::new(8);
        for block in 0..10u64 {
            for _ in 0..16 {
                for k in 0..4u64 {
                    t.access(block * 4 + k);
                }
            }
        }
        assert!(t.miss_ratio() < 0.1);
    }
}
