//! Machine models: cost coefficients of the simulated CPUs.

/// Cost coefficients and capacities of a simulated machine.
///
/// Two presets stand in for the paper's testbeds:
/// [`MachineConfig::xeon_like`] (dual-socket 24-core, 48 SMT threads, 30 MB
/// LLC, icc-style SIMD heuristics) and [`MachineConfig::epyc_like`]
/// (8 cores / 16 threads, 16 MB LLC, gcc-style coefficients). All times are
/// nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable name (appears in experiment output).
    pub name: String,
    /// Thread-count menu exposed to the schedule space (paper: `[24, 48]`).
    pub thread_menu: Vec<usize>,
    /// Physical cores; threads beyond this are SMT.
    pub cores: usize,
    /// SMT throughput factor: total throughput with all hardware threads
    /// busy, relative to `cores` (e.g. 1.25 = SMT adds 25%).
    pub smt_factor: f64,
    /// f32 lanes of the vector unit (8 = AVX2, 16 = AVX-512).
    pub vector_width: usize,
    /// Minimum dense run length before the compiler vectorizes — the icc
    /// heuristic of Figure 14 (icc emits `vfmadd213ps` only from block size
    /// 16).
    pub simd_threshold: usize,
    /// Last-level cache capacity in bytes.
    pub cache_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Cost of one scalar body (FMA + index arithmetic), ns.
    pub cost_body: f64,
    /// Cost per concordantly iterated child, ns.
    pub cost_concordant: f64,
    /// Cost per discordant dense-loop iteration (wasted or not), ns.
    pub cost_dense_iter: f64,
    /// Cost per binary-search probe of a discordant locate, ns.
    pub cost_locate_probe: f64,
    /// Cost per cache line missing to DRAM, ns.
    pub cost_mem_line: f64,
    /// Cost of claiming one dynamic chunk (atomic + scheduling), ns.
    pub cost_chunk_dispatch: f64,
    /// Cost of entering a parallel region, per thread, ns.
    pub cost_thread_spawn: f64,
    /// Cost per storage word during format conversion (assembly), ns.
    pub cost_convert_word: f64,
}

impl MachineConfig {
    /// The Intel-testbed stand-in: 24 cores / 48 threads, AVX2 with the icc
    /// block-size-16 vectorization heuristic. The LLC is scaled down with
    /// the workload scale (the paper's 30 MB per socket serves matrices up
    /// to 131k rows / 10M nnz; this workspace's laptop-scale matrices are
    /// ~100x smaller, so the cache is scaled likewise to preserve the
    /// working-set-vs-capacity phenomenology).
    pub fn xeon_like() -> Self {
        Self {
            name: "xeon-like".into(),
            thread_menu: vec![24, 48],
            cores: 24,
            smt_factor: 1.25,
            vector_width: 8,
            simd_threshold: 16,
            cache_bytes: 256 << 10,
            line_bytes: 64,
            cost_body: 1.0,
            cost_concordant: 0.5,
            cost_dense_iter: 0.35,
            cost_locate_probe: 1.6,
            cost_mem_line: 28.0,
            cost_chunk_dispatch: 40.0,
            cost_thread_spawn: 400.0,
            cost_convert_word: 1.2,
        }
    }

    /// The AMD-testbed stand-in: 8 cores / 16 threads, 16 MB LLC, gcc-style
    /// coefficients (cheaper dispatch, laxer vectorization threshold, slower
    /// single-thread locate).
    pub fn epyc_like() -> Self {
        Self {
            name: "epyc-like".into(),
            thread_menu: vec![8, 16],
            cores: 8,
            smt_factor: 1.2,
            vector_width: 8,
            simd_threshold: 8,
            cache_bytes: 128 << 10,
            line_bytes: 64,
            cost_body: 0.9,
            cost_concordant: 0.55,
            cost_dense_iter: 0.3,
            cost_locate_probe: 2.0,
            cost_mem_line: 34.0,
            cost_chunk_dispatch: 30.0,
            cost_thread_spawn: 300.0,
            cost_convert_word: 1.0,
        }
    }

    /// Effective per-thread speed when running `threads` workers
    /// (1.0 = full core speed). Up to 2x oversubscription shares core
    /// throughput with the SMT bonus; beyond 2x (more software threads than
    /// hardware threads) total throughput degrades from scheduling and
    /// cache thrash.
    pub fn thread_speed(&self, threads: usize) -> f64 {
        if threads <= self.cores {
            return 1.0;
        }
        let base = (self.cores as f64 * self.smt_factor / threads as f64).min(1.0);
        let thrash = (2.0 * self.cores as f64 / threads as f64).min(1.0);
        base * thrash
    }

    /// SIMD speedup for an innermost dense run of length `run` — the
    /// Figure 14 curve: scalar below the threshold, vectorized at or above.
    pub fn simd_factor(&self, run: usize) -> f64 {
        if run >= self.simd_threshold {
            self.vector_width as f64
        } else {
            1.0
        }
    }

    /// Per-element cost of an innermost dense block of size `b`
    /// (regenerates Figure 14's per-element cost drop at the threshold).
    pub fn simd_unit_cost(&self, b: usize) -> f64 {
        self.cost_body / self.simd_factor(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ() {
        let x = MachineConfig::xeon_like();
        let e = MachineConfig::epyc_like();
        assert_ne!(x.name, e.name);
        assert!(x.cores > e.cores);
        assert!(x.cache_bytes > e.cache_bytes);
    }

    #[test]
    fn thread_speed_smt() {
        let x = MachineConfig::xeon_like();
        assert_eq!(x.thread_speed(24), 1.0);
        assert_eq!(x.thread_speed(4), 1.0);
        let s48 = x.thread_speed(48);
        assert!(s48 < 1.0 && s48 > 0.5);
        // Total throughput at 48 threads exceeds 24 cores' worth.
        assert!(48.0 * s48 > 24.0);
    }

    #[test]
    fn simd_kicks_in_at_threshold() {
        let x = MachineConfig::xeon_like();
        assert_eq!(x.simd_factor(15), 1.0);
        assert_eq!(x.simd_factor(16), 8.0);
        assert!(x.simd_unit_cost(16) < x.simd_unit_cost(15));
    }
}
