//! Deterministic machine-model cost simulation — the hardware substitute.
//!
//! The WACO paper measures ground-truth runtimes on a dual-socket 24-core
//! Xeon (icc) and an 8-core EPYC (gcc). This workspace replaces those
//! machines with a **deterministic simulator** that replays the scheduled
//! iteration space over the *actual* sparse structure (through the same
//! lowered [`waco_exec::plan::ExecutionPlan`] the executor runs, walked
//! under an event-counting instrument, so simulated and executed control
//! flow cannot diverge) and charges costs from a [`MachineConfig`]:
//!
//! * **traversal** — concordant level steps, wasted dense-loop iterations of
//!   discordant orders, and binary-search probes of discordant locates;
//! * **compute** — one fused multiply-add per stored nonzero per dense
//!   iteration, divided by the SIMD width when the innermost loop is a dense
//!   run at least [`MachineConfig::simd_threshold`] long (the icc heuristic
//!   of Figure 14: vectorization only kicks in at block size 16);
//! * **memory** — cache-line traffic of streaming the storage plus a
//!   FIFO-set reuse model of the kernel's gather operand (x rows for SpMV, B
//!   rows for SpMM, C columns for SDDMM, B/C rows for MTTKRP) against the
//!   machine's last-level cache — this is what rewards the paper's
//!   "sparse block" formats (§5.2.1);
//! * **parallelism** — the schedule's chunks are list-scheduled onto worker
//!   threads exactly like OpenMP `schedule(dynamic, chunk)`, so skewed row
//!   distributions produce real makespan imbalance, and SMT oversubscription
//!   gets a configurable throughput factor.
//!
//! Determinism makes every experiment in the workspace exactly reproducible;
//! pattern-dependence (the walker sees the true nonzeros) is what gives the
//! learned cost model in `waco-model` something meaningful to learn.
//!
//! # Example
//!
//! ```
//! use waco_sim::{MachineConfig, Simulator};
//! use waco_schedule::{named, Kernel, Space};
//! use waco_tensor::gen::{self, Rng64};
//!
//! let mut rng = Rng64::seed_from(3);
//! let a = gen::uniform_random(64, 64, 0.05, &mut rng);
//! let space = Space::new(Kernel::SpMV, vec![64, 64], 0);
//! let sched = named::default_csr(&space);
//! let sim = Simulator::new(MachineConfig::xeon_like());
//! let report = sim.time_matrix(&a, &sched, &space)?;
//! assert!(report.seconds > 0.0);
//! # Ok::<(), waco_sim::SimError>(())
//! ```

pub mod collector;
pub mod machine;
pub mod simulator;

pub use collector::{EventCounts, ReuseTracker};
pub use machine::MachineConfig;
pub use simulator::{SimReport, Simulator};

/// Errors from cost simulation.
#[derive(Debug)]
pub enum SimError {
    /// Building storage or the nest failed (invalid schedule / over budget).
    Exec(waco_exec::ExecError),
    /// The schedule's estimated work exceeds the simulation limit — the
    /// analog of the paper excluding configurations that run for a minute.
    TooExpensive {
        /// Estimated iteration count.
        estimate: f64,
        /// The configured limit.
        limit: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "simulation setup failed: {e}"),
            SimError::TooExpensive { estimate, limit } => {
                write!(
                    f,
                    "schedule too expensive to simulate: ~{estimate:.2e} > {limit:.2e}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Exec(e) => Some(e),
            SimError::TooExpensive { .. } => None,
        }
    }
}

impl From<waco_exec::ExecError> for SimError {
    fn from(e: waco_exec::ExecError) -> Self {
        SimError::Exec(e)
    }
}

impl From<waco_format::FormatError> for SimError {
    fn from(e: waco_format::FormatError) -> Self {
        SimError::Exec(waco_exec::ExecError::Format(e))
    }
}

impl From<waco_schedule::ScheduleError> for SimError {
    fn from(e: waco_schedule::ScheduleError) -> Self {
        SimError::Exec(waco_exec::ExecError::Schedule(e))
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;
