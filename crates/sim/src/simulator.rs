//! The cost simulator: replay, charge, and schedule onto virtual threads.

use crate::collector::{EventCounts, ReuseTracker};
use crate::machine::MachineConfig;
use crate::{Result, SimError};
use waco_exec::parallel::chunk_ranges;
use waco_exec::plan::{ExecutionPlan, FastPath};
use waco_format::{LevelFormat, SparseStorage};
use waco_schedule::{Kernel, Space, SuperSchedule};
use waco_tensor::{CooMatrix, CooTensor3};

/// Simulated timing of one kernel invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end simulated kernel time in seconds.
    pub seconds: f64,
    /// Simulated one-off format conversion (assembly) time in seconds.
    pub convert_seconds: f64,
    /// Traversal cost (concordant steps, dense iterations, locate probes), ns.
    pub traversal_ns: f64,
    /// Compute cost of innermost bodies after SIMD, ns.
    pub body_ns: f64,
    /// Memory cost (storage streaming + gather-operand misses), ns.
    pub mem_ns: f64,
    /// Workspace scatter-accumulate + gather-reset cost (zero for kernels
    /// without a dense temporary), ns.
    pub workspace_ns: f64,
    /// Parallel overhead (spawn + chunk dispatch), ns.
    pub parallel_ns: f64,
    /// Innermost dense run length used for the SIMD decision.
    pub simd_run: usize,
    /// SIMD speedup applied to bodies (1 = scalar).
    pub simd_factor: f64,
    /// Number of dynamic chunks dispatched.
    pub chunks: usize,
    /// Worker threads used (1 = serial).
    pub threads: usize,
    /// Work-distribution quality: slowest thread's *work* span over the
    /// ideal even split (1.0 = perfectly balanced). Dispatch and spawn
    /// overheads are excluded — they are reported in `parallel_ns`.
    pub imbalance: f64,
    /// Gather-operand cache miss ratio.
    pub miss_ratio: f64,
    /// Stored nonzeros visited.
    pub bodies: u64,
    /// Total traversal events (concordant steps + dense iterations + locate
    /// probes + bodies) — the count the asymptotic bound of
    /// `waco_exec::asym` upper-models, used by the `search_pruning` suite to
    /// cross-check that simulated event counts respect the asymptotic
    /// ordering.
    pub events: u64,
}

/// Deterministic machine-model simulator.
///
/// See the crate docs for the model; construct with a [`MachineConfig`]
/// preset and call [`Simulator::time_matrix`] / [`Simulator::time_tensor3`].
#[derive(Debug, Clone)]
pub struct Simulator {
    /// The machine being simulated.
    pub machine: MachineConfig,
    /// Reject schedules whose reduced walk exceeds this iteration estimate.
    pub work_limit: f64,
    /// Storage budget passed to format materialization, in words.
    pub storage_budget: u64,
}

impl Simulator {
    /// A simulator with default limits.
    pub fn new(machine: MachineConfig) -> Self {
        Self {
            machine,
            work_limit: 2e6,
            storage_budget: 1 << 24,
        }
    }

    /// Overrides the work limit (iteration estimate above which schedules
    /// are rejected as "too expensive", like the paper's 1-minute cutoff).
    pub fn with_work_limit(mut self, limit: f64) -> Self {
        self.work_limit = limit;
        self
    }

    /// The schedule space for a kernel instance on this machine (thread menu
    /// comes from the machine).
    pub fn space_for(&self, kernel: Kernel, sparse_dims: Vec<usize>, dense_extent: usize) -> Space {
        Space::new(kernel, sparse_dims, dense_extent)
            .with_thread_options(self.machine.thread_menu.clone())
    }

    /// Simulates a 2-D kernel (SpMV / SpMM / SDDMM / SpGEMM / fused
    /// SDDMM+SpMM) on sparse operand `a`.
    ///
    /// # Errors
    ///
    /// Invalid schedules, over-budget storage, and over-limit work estimates.
    pub fn time_matrix(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
    ) -> Result<SimReport> {
        sched.validate(space)?;
        let spec = sched.a_format_spec(space)?;
        let st = SparseStorage::from_matrix_with_budget(a, &spec, self.storage_budget)?;
        self.time_stored(&st, sched, space)
    }

    /// Simulates MTTKRP on tensor `t`.
    ///
    /// # Errors
    ///
    /// See [`Simulator::time_matrix`].
    pub fn time_tensor3(
        &self,
        t: &CooTensor3,
        sched: &SuperSchedule,
        space: &Space,
    ) -> Result<SimReport> {
        sched.validate(space)?;
        let spec = sched.a_format_spec(space)?;
        let st = SparseStorage::from_nonzeros(
            &spec,
            t.iter().map(|(i, k, l, v)| (vec![i, k, l], v)),
            self.storage_budget,
        )?;
        self.time_stored(&st, sched, space)
    }

    /// Simulates a kernel over pre-built storage (reuse across schedules that
    /// share a format, and the `T_formatconvert`-free path of §5.6).
    ///
    /// # Errors
    ///
    /// Over-limit work estimates.
    pub fn time_stored(
        &self,
        st: &SparseStorage,
        sched: &SuperSchedule,
        space: &Space,
    ) -> Result<SimReport> {
        let m = &self.machine;
        let kernel = space.kernel;
        let nsparse = kernel.sparse_ndims();

        // Reduced space: collapse dense-only dims so the walk visits each
        // stored nonzero once; their extents are folded back analytically.
        let has_dense = kernel.ndims() > nsparse;
        let reduced = Space {
            dense_extent: if has_dense { 1 } else { 0 },
            ..space.clone()
        };
        // Walk serially in the *written* loop order: TACO parallelizes a
        // loop in place, so the traversal (and therefore cache locality —
        // e.g. the k-outer "sparse block" reuse of §5.2.1) is that of the
        // written nest; threading is modeled afterwards from per-coordinate
        // work. (Building with `parallel: None` avoids the executor's
        // hoisting.)
        let serial_sched = SuperSchedule {
            parallel: None,
            ..sched.clone()
        };
        // The same lowered plan the executor runs: the simulator replays its
        // flat op sequence under an event-counting instrument, so simulated
        // and executed traversal provably cannot drift.
        let plan = ExecutionPlan::build(&serial_sched, &reduced)?;

        // Dense-dim factors (true, unpadded product for compute; padded
        // outer factor for re-traversal).
        let dense_dims: Vec<usize> = (nsparse..kernel.ndims()).collect();
        let d_total: f64 = dense_dims
            .iter()
            .map(|&d| space.dim_extent(d) as f64)
            .product();
        let first_sparse = plan
            .order()
            .iter()
            .position(|v| v.dim < nsparse)
            .unwrap_or(0);
        let d_above: f64 = plan.order()[..first_sparse]
            .iter()
            .filter(|v| v.dim >= nsparse)
            .map(|&v| sched.loop_extent(space, v) as f64)
            .product();

        let estimate = plan.work_estimate(st);
        if estimate > self.work_limit {
            return Err(SimError::TooExpensive {
                estimate,
                limit: self.work_limit,
            });
        }

        // SIMD decision from the *true* schedule's innermost non-trivial
        // loop. Unit-extent loops are eliminated by codegen (the paper's
        // "shaded lines can be ignored due to the split size 1"), so they
        // are skipped when finding the vectorization candidate.
        let innermost = plan
            .order()
            .iter()
            .rev()
            .find(|&&v| sched.loop_extent(space, v) > 1)
            .copied()
            .unwrap_or(*plan.order().last().expect("nests are non-empty"));
        let simd_run = if innermost.dim >= nsparse {
            sched.loop_extent(space, innermost)
        } else {
            let spec = st.spec();
            match spec
                .order()
                .iter()
                .position(|ax| ax.dim == innermost.dim && ax.part == innermost.part)
            {
                Some(l) if spec.formats()[l] == LevelFormat::Uncompressed => {
                    spec.axis_extent(spec.order()[l])
                }
                _ => 1,
            }
        };
        let simd = m.simd_factor(simd_run);

        // Gather-operand reuse model: (key dimension, unit bytes).
        let gathers: Vec<(usize, usize, usize)> = match kernel {
            // (dim, key granularity divisor, unit bytes)
            Kernel::SpMV => vec![(1, 16, m.line_bytes)],
            Kernel::SpMM => vec![(1, 1, 4 * space.dense_extent.max(1))],
            Kernel::SDDMM => vec![
                (1, 1, 4 * space.dense_extent.max(1)), // C column j
                (0, 1, 4 * space.dense_extent.max(1)), // B row i
            ],
            Kernel::MTTKRP => vec![
                (1, 1, 4 * space.dense_extent.max(1)), // B row k
                (2, 1, 4 * space.dense_extent.max(1)), // C row l
            ],
            // Sparse B's row k is the gathered operand (its CSR row, priced
            // densely at the workspace width).
            Kernel::SpGEMM => vec![(1, 1, 4 * space.dense_extent.max(1))],
            Kernel::SddmmSpmm => vec![
                (1, 1, 4 * space.dense_extent.max(1)), // C column j / F row j
                (0, 1, 4 * space.dense_extent.max(1)), // B row i
            ],
        };
        let share = gathers.len().max(1);
        let mut trackers: Vec<ReuseTracker> = gathers
            .iter()
            .map(|&(_, _, unit)| ReuseTracker::new(m.cache_bytes / share / unit.max(1)))
            .collect();

        // Parallel setup: the variable's per-coordinate work is collected
        // during the single serial walk and list-scheduled afterwards.
        let par = sched.parallel.as_ref().filter(|p| p.threads > 1);
        let parallel_over_dense = par.map(|p| p.var.dim >= nsparse).unwrap_or(false);
        let par_extent = par
            .filter(|_| !parallel_over_dense)
            .map(|p| serial_sched.loop_extent(&reduced, p.var))
            .unwrap_or(1);

        let mut ev = EventCounts::default();
        let mut per_coord = vec![0.0f64; par_extent.max(1)];
        {
            let trackers = &mut trackers;
            let per_coord = &mut per_coord;
            let par_var = par.filter(|_| !parallel_over_dense).map(|p| p.var);
            plan.walk(st, 0..plan.outer_extent(), &mut ev, &mut |ctx, _, _| {
                for (g, &(dim, div, _)) in gathers.iter().enumerate() {
                    if let Some(c) = ctx.coord(dim) {
                        trackers[g].access((c / div.max(1)) as u64);
                    }
                }
                if let Some(v) = par_var {
                    per_coord[ctx.axis_coord(v)] += 1.0;
                }
            });
        }

        // Charge costs from the walk totals. Fast-path classification runs
        // against the *unreduced* space: the register-tiled SpMM variant
        // only claims plans whose true dense extent reaches the tile width,
        // which the reduced (dense-collapsed) plan cannot see.
        let fast = ExecutionPlan::build(&serial_sched, space)
            .map(|p| p.fast_path())
            .unwrap_or(FastPath::None);
        let (fp_traversal_factor, fp_body_factor) = fastpath_cost_factors(fast);
        let stream_lines = (st.storage_words() as f64 * 4.0 / m.line_bytes as f64).ceil() * d_above;
        let generic_traversal_ns = d_above
            * (ev.concordant_steps as f64 * m.cost_concordant
                + ev.dense_steps as f64 * m.cost_dense_iter
                + ev.locate_probes as f64 * m.cost_locate_probe);
        let generic_body_ns = ev.bodies as f64 * d_total.max(1.0) * m.cost_body / simd;
        // Price the tier the executor would actually run, not the generic
        // nest: monomorphized kernels skip the per-op plan dispatch, so
        // simulated and measured fast-path ratios agree in sign.
        let traversal_ns = generic_traversal_ns * fp_traversal_factor;
        let body_ns = generic_body_ns * fp_body_factor;
        let fastpath_saved_ns = (generic_traversal_ns - traversal_ns) + (generic_body_ns - body_ns);
        // Workspace kernels: price the dense-temporary lifecycle explicitly.
        // SpGEMM scatters up to a B-row (dense upper bound |j|) per visited
        // nonzero and gathers each touched entry once at row compaction; the
        // fused kernel scatters one SDDMM value per stored entry and gathers
        // it back in the fused SpMM half.
        let (ws_scatter, ws_gather): (f64, f64) = match kernel {
            Kernel::SpGEMM => {
                let s = ev.bodies as f64 * d_total.max(1.0);
                (s, s)
            }
            Kernel::SddmmSpmm => (ev.bodies as f64, ev.bodies as f64),
            _ => (0.0, 0.0),
        };
        let workspace_extent = match kernel {
            Kernel::SpGEMM => space.dense_extent,
            Kernel::SddmmSpmm => space.sparse_dims[1],
            _ => 0,
        };
        let workspace_ns = (ws_scatter + ws_gather) * m.cost_dense_iter
            + (workspace_extent as f64 * 4.0 / m.line_bytes as f64).ceil() * m.cost_mem_line;
        let gather_lines: f64 = {
            let unit_lines: f64 = gathers
                .iter()
                .map(|&(_, _, unit)| (unit as f64 / m.line_bytes as f64).max(1.0))
                .sum::<f64>()
                / share as f64;
            let total_misses: u64 = trackers.iter().map(|t| t.misses()).sum();
            total_misses as f64 * unit_lines
        };
        let mem_ns = (gather_lines + stream_lines) * m.cost_mem_line;
        let work = traversal_ns + body_ns + mem_ns + workspace_ns;

        // OpenMP `schedule(dynamic, chunk)` over the parallel variable:
        // greedy list scheduling of per-chunk work (from the per-coordinate
        // distribution — skewed rows produce real imbalance). The parallel
        // region is re-entered once per iteration of every loop *outside*
        // the parallelized one, as TACO/OpenMP do.
        let (threads, dispatch_each) = match par {
            Some(p) => (p.threads, m.cost_chunk_dispatch),
            None => (1, 0.0),
        };
        let regions: f64 = match par {
            Some(p) if !parallel_over_dense => {
                let pos = plan.order().iter().position(|v| *v == p.var).unwrap_or(0);
                plan.order()[..pos]
                    .iter()
                    .map(|&v| sched.loop_extent(space, v) as f64)
                    .product()
            }
            Some(_) => 1.0,
            None => 0.0,
        };
        let speed = m.thread_speed(threads);
        let (makespan, balance_span, parallel_ns, nchunks) = if threads <= 1 {
            (work, work, 0.0, 1usize)
        } else if parallel_over_dense {
            let p = par.expect("threads > 1 implies parallel");
            let nchunks = sched.loop_extent(space, p.var).div_ceil(p.chunk.max(1));
            let dispatch = nchunks as f64 * dispatch_each;
            let overhead = m.cost_thread_spawn + dispatch;
            let even = work / (threads as f64 * speed);
            (
                even + dispatch / threads as f64 + m.cost_thread_spawn,
                even,
                overhead,
                nchunks,
            )
        } else {
            let p = par.expect("threads > 1 implies parallel");
            // Per-coordinate cost: proportional share of the total work by
            // visited nonzeros, plus a uniform loop-overhead floor.
            let weight_sum: f64 = per_coord.iter().sum::<f64>() + par_extent as f64;
            let coord_cost: Vec<f64> = per_coord
                .iter()
                .map(|&w| work * (w + 1.0) / weight_sum)
                .collect();
            let ranges = chunk_ranges(par_extent, p.chunk);
            let nchunks = ranges.len();
            let mut finish = vec![0.0f64; threads];
            // Work-only finish times feed `imbalance`: dispatch cost is a
            // real makespan term but not a distribution-quality signal (it
            // is reported separately in `parallel_ns`).
            let mut work_finish = vec![0.0f64; threads];
            for range in ranges {
                let c: f64 = coord_cost[range].iter().sum();
                let t = (0..threads)
                    .min_by(|&a, &b| finish[a].total_cmp(&finish[b]))
                    .expect("threads > 0");
                finish[t] += c / speed + dispatch_each;
                work_finish[t] += c / speed;
            }
            // Each of the `regions` re-entries schedules 1/regions of every
            // coordinate's work, so the summed makespan ≈ `span`; the spawn
            // cost is paid once per region.
            let span = finish.iter().copied().fold(0.0, f64::max);
            let work_span = work_finish.iter().copied().fold(0.0, f64::max);
            let spawn = m.cost_thread_spawn * regions.max(1.0);
            let overhead = spawn + nchunks as f64 * dispatch_each;
            (span + spawn, work_span, overhead, nchunks)
        };

        let ideal = if threads <= 1 {
            work
        } else {
            work / (threads as f64 * speed)
        };
        let total_ns = makespan;

        let (hits, misses): (u64, u64) = trackers
            .iter()
            .fold((0, 0), |(h, ms), t| (h + t.hits(), ms + t.misses()));

        if waco_obs::enabled() {
            waco_obs::counter("sim.kernels_timed", 1);
            // Which specialization tier variant the plan takes, plus the ns
            // the variant's pricing saved over the generic nest — one event
            // pair per variant so simulated and measured ratios can be
            // compared directly from a trace.
            let (fp_counter, fp_saved) = match fast {
                FastPath::CsrRows => (
                    "sim.plan.fastpath.csr_rows",
                    "sim.plan.fastpath.csr_rows_saved_ns",
                ),
                FastPath::RegBlockSpmm => (
                    "sim.plan.fastpath.reg_block_spmm",
                    "sim.plan.fastpath.reg_block_spmm_saved_ns",
                ),
                FastPath::BcsrBlock => (
                    "sim.plan.fastpath.bcsr_block",
                    "sim.plan.fastpath.bcsr_block_saved_ns",
                ),
                FastPath::DiscordantCsr => (
                    "sim.plan.fastpath.discordant_csr",
                    "sim.plan.fastpath.discordant_csr_saved_ns",
                ),
                FastPath::GustavsonSpgemm => (
                    "sim.plan.fastpath.gustavson_spgemm",
                    "sim.plan.fastpath.gustavson_spgemm_saved_ns",
                ),
                FastPath::FusedSddmmSpmm => (
                    "sim.plan.fastpath.fused_sddmm_spmm",
                    "sim.plan.fastpath.fused_sddmm_spmm_saved_ns",
                ),
                FastPath::None => ("sim.plan.fastpath.none", "sim.plan.fastpath.none_saved_ns"),
            };
            waco_obs::counter(fp_counter, 1);
            if fast != FastPath::None {
                waco_obs::record(fp_saved, fastpath_saved_ns);
            }
            if kernel.uses_workspace() {
                waco_obs::counter("sim.workspace.scatter", ws_scatter as u64);
                waco_obs::counter("sim.workspace.gather", ws_gather as u64);
                waco_obs::record("sim.workspace.ns", workspace_ns);
            }
            waco_obs::counter("sim.concordant_steps", ev.concordant_steps);
            waco_obs::counter("sim.dense_steps", ev.dense_steps);
            waco_obs::counter("sim.locate_probes", ev.locate_probes);
            waco_obs::counter("sim.bodies", ev.bodies);
            waco_obs::counter("sim.cache_hits", hits);
            waco_obs::counter("sim.cache_misses", misses);
            waco_obs::record("sim.kernel_seconds", total_ns * 1e-9);
        }

        Ok(SimReport {
            seconds: total_ns * 1e-9,
            convert_seconds: self.convert_seconds(st),
            traversal_ns,
            body_ns,
            mem_ns,
            workspace_ns,
            parallel_ns,
            simd_run,
            simd_factor: simd,
            chunks: nchunks,
            threads,
            imbalance: if ideal > 0.0 {
                balance_span / ideal
            } else {
                1.0
            },
            miss_ratio: if hits + misses == 0 {
                0.0
            } else {
                misses as f64 / (hits + misses) as f64
            },
            bodies: ev.bodies,
            events: ev.concordant_steps + ev.dense_steps + ev.locate_probes + ev.bodies,
        })
    }

    /// Simulated format conversion (assembly) time: linear in materialized
    /// storage words.
    pub fn convert_seconds(&self, st: &SparseStorage) -> f64 {
        st.storage_words() as f64 * self.machine.cost_convert_word * 1e-9
    }
}

/// Cost multipliers `(traversal, body)` for the specialized kernel tier,
/// calibrated against the measured `fastpath_tier` microbench ratios: the
/// monomorphized kernels skip the plan walker's per-op dispatch (traversal
/// shrinks sharply) and the tiled variants additionally keep accumulators in
/// registers (body shrinks). `None` prices the generic nest unchanged.
fn fastpath_cost_factors(fp: FastPath) -> (f64, f64) {
    match fp {
        FastPath::None => (1.0, 1.0),
        FastPath::CsrRows => (0.35, 0.9),
        FastPath::RegBlockSpmm => (0.35, 0.7),
        FastPath::BcsrBlock => (0.45, 0.7),
        FastPath::DiscordantCsr => (0.5, 0.9),
        FastPath::GustavsonSpgemm => (0.4, 0.9),
        FastPath::FusedSddmmSpmm => (0.4, 0.8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_schedule::{named, LoopVar, Parallelize};
    use waco_tensor::gen::{self, Rng64};

    fn sim() -> Simulator {
        Simulator::new(MachineConfig::xeon_like())
    }

    #[test]
    fn deterministic() {
        let mut rng = Rng64::seed_from(1);
        let a = gen::uniform_random(64, 64, 0.05, &mut rng);
        let space = sim().space_for(Kernel::SpMV, vec![64, 64], 0);
        let sched = named::default_csr(&space);
        let r1 = sim().time_matrix(&a, &sched, &space).unwrap();
        let r2 = sim().time_matrix(&a, &sched, &space).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn concordant_beats_discordant() {
        let mut rng = Rng64::seed_from(2);
        let a = gen::uniform_random(128, 128, 0.05, &mut rng);
        let space = sim().space_for(Kernel::SpMV, vec![128, 128], 0);
        let good = named::default_csr(&space);
        let mut bad = good.clone();
        // Column-major traversal of the row-major CSR: k1 outside i1.
        bad.loop_order = vec![
            LoopVar::outer(1),
            LoopVar::outer(0),
            LoopVar::inner(0),
            LoopVar::inner(1),
        ];
        bad.parallel = None;
        let mut good_serial = good.clone();
        good_serial.parallel = None;
        let tg = sim().time_matrix(&a, &good_serial, &space).unwrap();
        let tb = sim().time_matrix(&a, &bad, &space).unwrap();
        assert!(
            tb.seconds > 1.5 * tg.seconds,
            "discordant {}s vs concordant {}s",
            tb.seconds,
            tg.seconds
        );
    }

    #[test]
    fn fine_chunks_fix_skew() {
        // Heavily skewed rows: a few giant rows. Coarse chunks strand the
        // giant rows on one thread.
        let mut rng = Rng64::seed_from(3);
        let a = gen::powerlaw_rows(512, 512, 16.0, 1.4, &mut rng);
        let space = sim().space_for(Kernel::SpMV, vec![512, 512], 0);
        let mut fine = named::default_csr(&space);
        fine.parallel = Some(Parallelize {
            var: LoopVar::outer(0),
            threads: 24,
            chunk: 1,
        });
        let mut coarse = fine.clone();
        coarse.parallel = Some(Parallelize {
            var: LoopVar::outer(0),
            threads: 24,
            chunk: 256,
        });
        let tf = sim().time_matrix(&a, &fine, &space).unwrap();
        let tc = sim().time_matrix(&a, &coarse, &space).unwrap();
        assert!(
            tc.imbalance > tf.imbalance,
            "coarse imbalance {} should exceed fine {}",
            tc.imbalance,
            tf.imbalance
        );
    }

    #[test]
    fn simd_detected_for_dense_blocks() {
        let mut rng = Rng64::seed_from(4);
        let a = gen::blocked(128, 128, 16, 24, 1.0, &mut rng);
        let space = sim().space_for(Kernel::SpMV, vec![128, 128], 0);
        // BCSR 16x16 with k0 innermost: dense run of 16 → vectorized.
        let mut bcsr = named::default_csr(&space);
        bcsr.splits = vec![16, 16];
        let r = sim().time_matrix(&a, &bcsr, &space).unwrap();
        assert_eq!(r.simd_run, 16);
        assert!(r.simd_factor > 1.0);

        // 8-wide blocks stay scalar under the icc-like threshold of 16.
        let mut small = bcsr.clone();
        small.splits = vec![8, 8];
        let r8 = sim().time_matrix(&a, &small, &space).unwrap();
        assert_eq!(r8.simd_factor, 1.0);
    }

    #[test]
    fn sparse_block_format_improves_locality() {
        // Gather-operand working set far beyond a tiny cache: a k-split
        // compressed level (sparse block) restores locality.
        let mut machine = MachineConfig::xeon_like();
        machine.cache_bytes = 4096; // 64 lines — tiny on purpose
        let sim = Simulator::new(machine);
        let mut rng = Rng64::seed_from(5);
        let a = gen::uniform_random(256, 4096, 0.01, &mut rng);
        let space = sim.space_for(Kernel::SpMV, vec![256, 4096], 0);
        let csr = {
            let mut s = named::default_csr(&space);
            s.parallel = None;
            s
        };
        let sparse_block = {
            let cands = named::best_format_candidates(&space);
            let (_, splits, fmt) = cands
                .into_iter()
                .find(|(n, _, _)| n == "SparseBlock")
                .unwrap();
            let mut s = named::concordant(&space, splits, fmt, 1, 32);
            s.parallel = None;
            s
        };
        let t_csr = sim.time_matrix(&a, &csr, &space).unwrap();
        let t_sb = sim.time_matrix(&a, &sparse_block, &space).unwrap();
        assert!(
            t_sb.miss_ratio < t_csr.miss_ratio,
            "sparse block miss {} should beat CSR miss {}",
            t_sb.miss_ratio,
            t_csr.miss_ratio
        );
    }

    #[test]
    fn work_limit_rejects_pathological() {
        let mut rng = Rng64::seed_from(6);
        let a = gen::uniform_random(256, 256, 0.02, &mut rng);
        let sim = sim().with_work_limit(1000.0);
        let space = sim.space_for(Kernel::SpMV, vec![256, 256], 0);
        let sched = named::default_csr(&space);
        assert!(matches!(
            sim.time_matrix(&a, &sched, &space),
            Err(SimError::TooExpensive { .. })
        ));
    }

    #[test]
    fn spmm_dense_factor_scales_body() {
        let mut rng = Rng64::seed_from(7);
        let a = gen::uniform_random(64, 64, 0.05, &mut rng);
        // Both j extents below the SIMD threshold so the dense factor is
        // isolated from vectorization.
        let sp2 = sim().space_for(Kernel::SpMM, vec![64, 64], 2);
        let sp12 = sim().space_for(Kernel::SpMM, vec![64, 64], 12);
        let s2 = named::default_csr(&sp2);
        let s12 = named::default_csr(&sp12);
        let t2 = sim().time_matrix(&a, &s2, &sp2).unwrap();
        let t12 = sim().time_matrix(&a, &s12, &sp12).unwrap();
        assert!(t12.body_ns > 4.0 * t2.body_ns);
    }

    #[test]
    fn mttkrp_simulates() {
        let mut rng = Rng64::seed_from(8);
        let t = gen::random_tensor3([32, 32, 32], 400, &mut rng);
        let space = sim().space_for(Kernel::MTTKRP, vec![32, 32, 32], 16);
        let sched = named::default_csr(&space);
        let r = sim().time_tensor3(&t, &sched, &space).unwrap();
        assert!(r.seconds > 0.0);
        assert_eq!(r.bodies, t.nnz() as u64);
    }

    #[test]
    fn convert_time_scales_with_storage() {
        let mut rng = Rng64::seed_from(9);
        let a = gen::uniform_random(64, 64, 0.1, &mut rng);
        let space = sim().space_for(Kernel::SpMV, vec![64, 64], 0);
        let csr = named::default_csr(&space);
        let spec = csr.a_format_spec(&space).unwrap();
        let st = SparseStorage::from_matrix(&a, &spec).unwrap();
        let dense_spec = waco_format::FormatSpec::dense(64, 64);
        let st_dense = SparseStorage::from_matrix(&a, &dense_spec).unwrap();
        let s = sim();
        assert!(s.convert_seconds(&st_dense) > s.convert_seconds(&st));
    }

    #[test]
    fn more_threads_help_balanced_work() {
        let mut rng = Rng64::seed_from(10);
        let a = gen::uniform_random(2048, 2048, 0.004, &mut rng);
        let space = sim().space_for(Kernel::SpMV, vec![2048, 2048], 0);
        let mut s1 = named::default_csr(&space);
        s1.parallel = Some(Parallelize {
            var: LoopVar::outer(0),
            threads: 24,
            chunk: 16,
        });
        let mut s2 = s1.clone();
        s2.parallel = None;
        let tp = sim().time_matrix(&a, &s1, &space).unwrap();
        let ts = sim().time_matrix(&a, &s2, &space).unwrap();
        assert!(
            tp.seconds < ts.seconds,
            "24 threads {} should beat serial {}",
            tp.seconds,
            ts.seconds
        );
    }
}
