//! Phenomenology tests: the machine model must reproduce the performance
//! effects the paper's evaluation attributes speedups to (Table 6).

use waco_schedule::{named, Kernel, LoopVar, Parallelize};
use waco_sim::{MachineConfig, Simulator};
use waco_tensor::gen::{self, Rng64};

fn sim() -> Simulator {
    Simulator::new(MachineConfig::xeon_like())
}

/// Placing the dense `j` loop outside the sparse traversal re-walks the
/// sparse structure |j1| times — the model must punish it.
#[test]
fn dense_loop_hoisted_outside_sparse_is_slower() {
    let mut rng = Rng64::seed_from(1);
    let m = gen::uniform_random(512, 512, 0.02, &mut rng);
    let s = sim();
    let space = s.space_for(Kernel::SpMM, vec![512, 512], 32);
    let inner = {
        let mut x = named::default_csr(&space);
        x.parallel = None;
        x
    };
    let mut outer = inner.clone();
    // Move j1 to the outermost position.
    let ji = outer
        .loop_order
        .iter()
        .position(|v| *v == LoopVar::outer(2))
        .unwrap();
    let j = outer.loop_order.remove(ji);
    outer.loop_order.insert(0, j);
    let ti = s.time_matrix(&m, &inner, &space).unwrap();
    let to = s.time_matrix(&m, &outer, &space).unwrap();
    assert!(
        to.traversal_ns > 4.0 * ti.traversal_ns,
        "j-outer traversal {} should dwarf j-inner {}",
        to.traversal_ns,
        ti.traversal_ns
    );
}

/// The chunk-size sweet spot: tiny chunks pay dispatch, huge chunks strand
/// work; something in between wins on a skewed matrix (why "OpenMP Chunk
/// Size" is Table 6's dominant factor).
#[test]
fn chunk_size_has_an_interior_optimum() {
    let mut rng = Rng64::seed_from(2);
    let m = gen::powerlaw_rows(4096, 4096, 10.0, 1.4, &mut rng);
    let s = sim();
    let space = s.space_for(Kernel::SpMV, vec![4096, 4096], 0);
    let report = |chunk: usize| {
        let mut sched = named::default_csr(&space);
        sched.parallel = Some(Parallelize {
            var: LoopVar::outer(0),
            threads: 24,
            chunk,
        });
        s.time_matrix(&m, &sched, &space).unwrap()
    };
    let r1 = report(1);
    let r32 = report(32);
    let r256 = report(256); // menu max: only 16 chunks for 24 threads
    assert!(
        r32.seconds < r256.seconds,
        "moderate chunks {} must beat starving chunks {}",
        r32.seconds,
        r256.seconds
    );
    // Fine chunks balance better but pay strictly more dispatch overhead —
    // the trade-off that makes chunk size worth learning.
    assert!(r1.imbalance <= r32.imbalance + 1e-9);
    assert!(r1.parallel_ns > r32.parallel_ns);
}

/// SMT: 48 threads on 24 cores still help throughput-bound balanced work
/// (the paper's thread menu exists for a reason).
#[test]
fn smt_oversubscription_helps_balanced_work() {
    let mut rng = Rng64::seed_from(3);
    let m = gen::uniform_random(8192, 8192, 8.0 / 8192.0, &mut rng);
    let s = sim();
    let space = s.space_for(Kernel::SpMV, vec![8192, 8192], 0);
    let run = |threads: usize| {
        let mut sched = named::default_csr(&space);
        sched.parallel = Some(Parallelize {
            var: LoopVar::outer(0),
            threads,
            chunk: 16,
        });
        s.time_matrix(&m, &sched, &space).unwrap().seconds
    };
    let t24 = run(24);
    let t48 = run(48);
    assert!(
        t48 < t24,
        "48 SMT threads ({t48}) should beat 24 ({t24}) on balanced work"
    );
}

/// The EPYC-like machine ranks thread counts differently (its menu tops out
/// at 16), which is what makes cross-hardware schedules mismatch (Table 7).
#[test]
fn machines_disagree_on_thread_counts() {
    let mut rng = Rng64::seed_from(4);
    let m = gen::uniform_random(4096, 4096, 0.002, &mut rng);
    let xeon = Simulator::new(MachineConfig::xeon_like());
    let epyc = Simulator::new(MachineConfig::epyc_like());
    let space_x = xeon.space_for(Kernel::SpMV, vec![4096, 4096], 0);
    let run = |s: &Simulator, threads: usize| {
        let mut sched = named::default_csr(&space_x);
        sched.parallel = Some(Parallelize {
            var: LoopVar::outer(0),
            threads,
            chunk: 16,
        });
        s.time_matrix(&m, &sched, &space_x).unwrap().seconds
    };
    // 48 threads: fine on the Xeon-like machine, oversubscribed 6x on EPYC.
    let xeon_pref = run(&xeon, 48) < run(&xeon, 8);
    let epyc_pref = run(&epyc, 8) < run(&epyc, 48);
    assert!(xeon_pref, "xeon should prefer 48 threads");
    assert!(epyc_pref, "epyc should prefer 8 threads");
}

/// Block padding is not free: a mostly-empty dense block format wastes
/// memory traffic and body work on zeros, unless SIMD pays for it
/// (the <50%-filled trade-off of Table 6 / Figure 14).
#[test]
fn padding_has_a_cost_without_simd() {
    let mut rng = Rng64::seed_from(5);
    // Scattered matrix: blocks would be nearly empty.
    let m = gen::uniform_random(1024, 1024, 0.005, &mut rng);
    let s = sim();
    let space = s.space_for(Kernel::SpMV, vec![1024, 1024], 0);
    let csr = {
        let mut x = named::default_csr(&space);
        x.parallel = None;
        x
    };
    let mut bcsr8 = csr.clone();
    bcsr8.splits = vec![8, 8]; // 8-wide blocks: padded but NOT vectorized
    let t_csr = s.time_matrix(&m, &csr, &space).unwrap();
    let t_b = s.time_matrix(&m, &bcsr8, &space).unwrap();
    assert!(
        t_b.seconds > t_csr.seconds,
        "sub-threshold blocks on scatter ({}) must lose to CSR ({})",
        t_b.seconds,
        t_csr.seconds
    );
}
