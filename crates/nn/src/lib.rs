//! A minimal from-scratch neural-network framework — the PyTorch substitute.
//!
//! WACO's cost model is a PyTorch network trained with Adam and a pairwise
//! hinge ranking loss. This crate provides exactly the pieces that model
//! needs, implemented from first principles on the CPU:
//!
//! * [`Mat`] — a row-major `f32` matrix with the BLAS-ish kernels backprop
//!   needs (`A·B`, `Aᵀ·B`, `A·Bᵀ`).
//! * [`layers`] — [`layers::Linear`], [`layers::Relu`], [`layers::Mlp`], and
//!   [`layers::Embedding`] (the learnable lookup tables of the program
//!   embedder), each with a hand-written backward pass.
//! * [`adam::Adam`] — the optimizer of the paper (§4.1.3, lr `1e-4`).
//! * [`loss`] — the pairwise hinge ranking loss of §4.1.3 (the model learns
//!   the *ranking* of SuperSchedules, not absolute runtimes).
//! * [`serialize`] — a small self-describing text checkpoint format, so
//!   trained models can be saved without external dependencies.
//!
//! Every backward pass is validated against finite differences in the test
//! suite.
//!
//! # Example
//!
//! ```
//! use waco_nn::layers::Mlp;
//! use waco_nn::{adam::Adam, Mat};
//! use waco_tensor::gen::Rng64;
//!
//! let mut rng = Rng64::seed_from(0);
//! let mut net = Mlp::new(&[4, 16, 1], false, &mut rng);
//! let mut opt = Adam::new(1e-2);
//! let x = Mat::from_fn(8, 4, |r, c| (r * c) as f32 / 8.0);
//! // Teach the net to output the sum of inputs.
//! for _ in 0..200 {
//!     let y = net.forward(&x);
//!     let target: Vec<f32> = (0..8).map(|r| x.row(r).iter().sum()).collect();
//!     let grad = Mat::from_fn(8, 1, |r, _| 2.0 * (y.get(r, 0) - target[r]) / 8.0);
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.step(&mut net.params_mut());
//! }
//! ```

pub mod adam;
pub mod layers;
pub mod loss;
pub mod mat;
pub mod serialize;

pub use adam::Adam;
pub use layers::Param;
pub use mat::Mat;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_surface_is_usable() {
        // The crate-level doctest exercises training; this anchors the
        // re-exports.
        let m = Mat::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
    }
}
