//! Losses: the pairwise hinge ranking loss of §4.1.3, plus L2 for ablations.
//!
//! The cost model's goal "is not to accurately predict the ground truth
//! runtime … we want our cost model to learn the *ranking* of different
//! SuperSchedules" — so the training loss compares every pair of schedules
//! of the same matrix:
//!
//! `L = Σ_{(j,k)} sign(y_j − y_k) · max(0, 1 − (ŷ_j − ŷ_k))`
//!
//! with `sign(x) = 1` if `x > 0` else `0` (the paper's convention: each
//! ordered pair contributes only when the first is truly slower).

/// Pairwise hinge ranking loss over one matrix's batch of schedules.
///
/// `pred` and `truth` are parallel slices (predicted score and ground-truth
/// runtime per schedule). Returns `(mean pair loss, d loss / d pred)`.
/// Slices shorter than 2 produce zero loss and gradient.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pairwise_hinge(pred: &[f32], truth: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), truth.len(), "pred/truth length mismatch");
    let n = pred.len();
    let mut grad = vec![0.0f32; n];
    if n < 2 {
        return (0.0, grad);
    }
    let mut loss = 0.0f32;
    let mut pairs = 0usize;
    for j in 0..n {
        for k in 0..n {
            if j == k || truth[j] <= truth[k] {
                continue; // sign(y_j - y_k) = 0
            }
            pairs += 1;
            // y_j > y_k: schedule j is slower; want pred_j - pred_k >= 1.
            let margin = 1.0 - (pred[j] - pred[k]);
            if margin > 0.0 {
                loss += margin;
                grad[j] -= 1.0;
                grad[k] += 1.0;
            }
        }
    }
    if pairs == 0 {
        return (0.0, grad);
    }
    let scale = 1.0 / pairs as f32;
    for g in &mut grad {
        *g *= scale;
    }
    (loss * scale, grad)
}

/// Mean squared error, for loss-function ablations.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(pred: &[f32], truth: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), truth.len(), "pred/truth length mismatch");
    let n = pred.len().max(1) as f32;
    let mut loss = 0.0;
    let grad = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let d = p - t;
            loss += d * d;
            2.0 * d / n
        })
        .collect();
    (loss / n, grad)
}

/// Fraction of pairs whose predicted order matches the true runtime order —
/// the ranking-quality metric used to evaluate cost models.
///
/// Returns 1.0 when fewer than 2 elements.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pairwise_accuracy(pred: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "pred/truth length mismatch");
    let n = pred.len();
    let mut correct = 0usize;
    let mut total = 0usize;
    for j in 0..n {
        for k in (j + 1)..n {
            if truth[j] == truth[k] {
                continue;
            }
            total += 1;
            if (truth[j] > truth[k]) == (pred[j] > pred[k]) {
                correct += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_ranked_wide_margin_has_zero_loss() {
        // truth ascending, pred ascending with margins > 1.
        let truth = [1.0, 2.0, 3.0];
        let pred = [0.0, 2.0, 4.0];
        let (loss, grad) = pairwise_hinge(&pred, &truth);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn inverted_ranking_has_positive_loss_and_corrective_gradient() {
        let truth = [1.0, 2.0]; // schedule 1 is slower
        let pred = [5.0, 0.0]; // model says schedule 1 is faster — wrong
        let (loss, grad) = pairwise_hinge(&pred, &truth);
        assert!(loss > 0.0);
        // Descent direction raises pred[1], lowers pred[0].
        assert!(grad[1] < 0.0, "pred[1] must increase (negative grad)");
        assert!(grad[0] > 0.0, "pred[0] must decrease");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let truth = [3.0, 1.0, 2.0, 5.0];
        let pred = [0.2, 0.9, -0.3, 0.4];
        let (l0, grad) = pairwise_hinge(&pred, &truth);
        let eps = 1e-3;
        for i in 0..pred.len() {
            let mut p = pred;
            p[i] += eps;
            let (l1, _) = pairwise_hinge(&p, &truth);
            let numeric = (l1 - l0) / eps;
            assert!(
                (grad[i] - numeric).abs() < 1e-2,
                "i={i}: analytic {} vs numeric {numeric}",
                grad[i]
            );
        }
    }

    #[test]
    fn degenerate_inputs() {
        let (l, g) = pairwise_hinge(&[1.0], &[1.0]);
        assert_eq!((l, g.len()), (0.0, 1));
        let (l, _) = pairwise_hinge(&[1.0, 2.0], &[5.0, 5.0]);
        assert_eq!(l, 0.0, "ties contribute nothing");
    }

    #[test]
    fn mse_basics() {
        let (l, g) = mse(&[1.0, 2.0], &[0.0, 2.0]);
        assert!((l - 0.5).abs() < 1e-6);
        assert!((g[0] - 1.0).abs() < 1e-6);
        assert_eq!(g[1], 0.0);
    }

    #[test]
    fn accuracy_metric() {
        assert_eq!(
            pairwise_accuracy(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]),
            1.0
        );
        assert_eq!(
            pairwise_accuracy(&[3.0, 2.0, 1.0], &[10.0, 20.0, 30.0]),
            0.0
        );
        let half = pairwise_accuracy(&[1.0, 2.0], &[5.0, 5.0]);
        assert_eq!(half, 1.0, "no comparable pairs → vacuously perfect");
    }
}
