//! Checkpointing: a small self-describing text format for matrices.
//!
//! The workspace avoids external serialization dependencies; checkpoints are
//! line-oriented ASCII: a `mat <rows> <cols>` header followed by one
//! whitespace-separated row per line. Values round-trip through `f32`'s
//! shortest-exact `Display`.

use crate::mat::Mat;
use std::io::{BufRead, BufReader, Read, Write};

/// Serialization error.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed checkpoint content.
    Parse(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// Writes one matrix.
///
/// A `&mut` reference may be passed for any `W: Write`.
///
/// # Errors
///
/// I/O failures.
pub fn write_mat<W: Write>(w: &mut W, m: &Mat) -> Result<(), SerializeError> {
    writeln!(w, "mat {} {}", m.rows(), m.cols())?;
    for r in 0..m.rows() {
        let row: Vec<String> = m.row(r).iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{}", row.join(" "))?;
    }
    Ok(())
}

/// Reads one matrix written by [`write_mat`].
///
/// # Errors
///
/// I/O failures and malformed content.
pub fn read_mat<R: BufRead>(r: &mut R) -> Result<Mat, SerializeError> {
    let mut header = String::new();
    loop {
        header.clear();
        if r.read_line(&mut header)? == 0 {
            return Err(SerializeError::Parse("unexpected end of checkpoint".into()));
        }
        if !header.trim().is_empty() {
            break;
        }
    }
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() != 3 || toks[0] != "mat" {
        return Err(SerializeError::Parse(format!(
            "bad matrix header: {header}"
        )));
    }
    let rows: usize = toks[1]
        .parse()
        .map_err(|_| SerializeError::Parse("bad row count".into()))?;
    let cols: usize = toks[2]
        .parse()
        .map_err(|_| SerializeError::Parse("bad col count".into()))?;
    let mut data = Vec::with_capacity(rows * cols);
    let mut line = String::new();
    for _ in 0..rows {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(SerializeError::Parse("truncated matrix body".into()));
        }
        for tok in line.split_whitespace() {
            let v: f32 = tok
                .parse()
                .map_err(|_| SerializeError::Parse(format!("bad value `{tok}`")))?;
            data.push(v);
        }
    }
    if data.len() != rows * cols {
        return Err(SerializeError::Parse(format!(
            "expected {} values, found {}",
            rows * cols,
            data.len()
        )));
    }
    Ok(Mat::from_vec(rows, cols, data))
}

/// Writes a named sequence of matrices (a whole model checkpoint).
///
/// # Errors
///
/// I/O failures.
pub fn write_checkpoint<W: Write>(
    w: &mut W,
    name: &str,
    mats: &[&Mat],
) -> Result<(), SerializeError> {
    writeln!(w, "waco-checkpoint {name} {}", mats.len())?;
    for m in mats {
        write_mat(w, m)?;
    }
    Ok(())
}

/// Reads a checkpoint written by [`write_checkpoint`]; returns the name and
/// the matrices.
///
/// # Errors
///
/// I/O failures and malformed content.
pub fn read_checkpoint<R: Read>(r: R) -> Result<(String, Vec<Mat>), SerializeError> {
    let mut br = BufReader::new(r);
    let mut header = String::new();
    br.read_line(&mut header)?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() != 3 || toks[0] != "waco-checkpoint" {
        return Err(SerializeError::Parse(format!(
            "bad checkpoint header: {header}"
        )));
    }
    let name = toks[1].to_string();
    let count: usize = toks[2]
        .parse()
        .map_err(|_| SerializeError::Parse("bad matrix count".into()))?;
    let mut mats = Vec::with_capacity(count);
    for _ in 0..count {
        mats.push(read_mat(&mut br)?);
    }
    Ok((name, mats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_tensor::gen::Rng64;

    #[test]
    fn mat_roundtrip_exact() {
        let mut rng = Rng64::seed_from(1);
        let m = Mat::xavier(7, 5, &mut rng);
        let mut buf = Vec::new();
        write_mat(&mut buf, &m).unwrap();
        let back = read_mat(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, m, "f32 Display round-trips exactly");
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut rng = Rng64::seed_from(2);
        let a = Mat::xavier(3, 4, &mut rng);
        let b = Mat::zeros(1, 2);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, "testmodel", &[&a, &b]).unwrap();
        let (name, mats) = read_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(name, "testmodel");
        assert_eq!(mats.len(), 2);
        assert_eq!(mats[0], a);
        assert_eq!(mats[1], b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_checkpoint("nonsense".as_bytes()).is_err());
        assert!(read_mat(&mut BufReader::new("mat 2 2\n1 2\n".as_bytes())).is_err());
        assert!(read_mat(&mut BufReader::new("mat x 2\n".as_bytes())).is_err());
    }

    #[test]
    fn special_values_roundtrip() {
        let m = Mat::from_vec(1, 4, vec![0.0, -0.0, f32::MIN_POSITIVE, 1e38]);
        let mut buf = Vec::new();
        write_mat(&mut buf, &m).unwrap();
        let back = read_mat(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.as_slice(), m.as_slice());
    }
}
