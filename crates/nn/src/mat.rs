//! Row-major `f32` matrices with the kernels backpropagation needs.

use waco_tensor::gen::Rng64;

/// A dense row-major `f32` matrix (rows usually index a batch).
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// A matrix whose entry `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// A single row vector from a slice.
    pub fn row_vector(v: &[f32]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut Rng64) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Self::from_fn(rows, cols, |_, _| {
            ((rng.unit_f64() * 2.0 - 1.0) * bound) as f32
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The raw mutable buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self · other` (`[m×k] · [k×n] → [m×n]`).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul inner dim mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (p, &a) in arow.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue; // one-hot inputs are common; skip zero work
                }
                let brow = other.row(p);
                for j in 0..n {
                    orow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// `selfᵀ · other` (`[k×m]ᵀ · [k×n] → [m×n]`) — the `dW = Xᵀ·dY` kernel.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn row mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        for p in 0..k {
            let arow = self.row(p);
            let brow = other.row(p);
            for (i, &a) in arow.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                for j in 0..n {
                    orow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (`[m×k] · [n×k]ᵀ → [m×n]`) — the `dX = dY·Wᵀ` kernel.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt col mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (j, o) in orow.iter_mut().enumerate().take(n) {
                let brow = other.row(j);
                let mut acc = 0.0;
                for p in 0..k {
                    acc += arow[p] * brow[p];
                }
                *o = acc;
            }
        }
        out
    }

    /// Adds `other` element-wise in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds the row vector `bias` to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Fills with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sums each column over rows, producing a length-`cols` vector — the
    /// bias-gradient kernel.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Concatenates matrices horizontally (same row counts).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ or `parts` is empty.
    pub fn concat_cols(parts: &[&Mat]) -> Mat {
        assert!(!parts.is_empty(), "concat of nothing");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "row count mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Mat::zeros(rows, cols);
        for r in 0..rows {
            let orow = out.row_mut(r);
            let mut off = 0;
            for p in parts {
                orow[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Splits a matrix column-wise into blocks of the given widths (inverse
    /// of [`Mat::concat_cols`], used to route concatenated gradients).
    ///
    /// # Panics
    ///
    /// Panics if the widths do not sum to `cols`.
    pub fn split_cols(&self, widths: &[usize]) -> Vec<Mat> {
        assert_eq!(
            widths.iter().sum::<usize>(),
            self.cols,
            "split widths mismatch"
        );
        let mut out = Vec::with_capacity(widths.len());
        let mut off = 0;
        for &w in widths {
            let mut part = Mat::zeros(self.rows, w);
            for r in 0..self.rows {
                part.row_mut(r).copy_from_slice(&self.row(r)[off..off + w]);
            }
            out.push(part);
            off += w;
        }
        out
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Mat::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let a = Mat::from_fn(4, 3, |r, c| (r + 2 * c) as f32);
        let b = Mat::from_fn(4, 2, |r, c| (r * c + 1) as f32);
        let tn = a.matmul_tn(&b);
        // Explicit transpose.
        let at = Mat::from_fn(3, 4, |r, c| a.get(c, r));
        let expect = at.matmul(&b);
        assert_eq!(tn, expect);
    }

    #[test]
    fn matmul_nt_equals_matmul_transpose() {
        let a = Mat::from_fn(2, 3, |r, c| (r + c) as f32);
        let b = Mat::from_fn(4, 3, |r, c| (r * 2 + c) as f32);
        let nt = a.matmul_nt(&b);
        let bt = Mat::from_fn(3, 4, |r, c| b.get(c, r));
        assert_eq!(nt, a.matmul(&bt));
    }

    #[test]
    fn bias_and_sums() {
        let mut m = Mat::zeros(3, 2);
        m.add_bias(&[1.0, -2.0]);
        assert_eq!(m.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let b = Mat::from_fn(2, 2, |r, c| 100.0 + (r * 2 + c) as f32);
        let cat = Mat::concat_cols(&[&a, &b]);
        assert_eq!(cat.cols(), 5);
        let parts = cat.split_cols(&[3, 2]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn xavier_bounded() {
        let mut rng = Rng64::seed_from(1);
        let m = Mat::xavier(64, 64, &mut rng);
        let bound = (6.0f32 / 128.0).sqrt();
        assert!(m.max_abs() <= bound + 1e-6);
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn scale_and_zero() {
        let mut m = Mat::from_vec(1, 3, vec![1., 2., 3.]);
        m.scale(2.0);
        assert_eq!(m.as_slice(), &[2., 4., 6.]);
        m.fill_zero();
        assert_eq!(m.max_abs(), 0.0);
    }
}
