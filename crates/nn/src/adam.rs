//! The Adam optimizer (Kingma & Ba, 2015) — the paper trains with Adam at
//! learning rate `1e-4` (§4.1.3).

use crate::layers::Param;

/// Adam with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
}

impl Adam {
    /// Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Steps on every parameter: call once per batch after backward.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for p in params {
            let g = p.grad.as_slice().to_vec();
            let m = p.m.as_mut_slice();
            let v = p.v.as_mut_slice();
            let val = p.value.as_mut_slice();
            for i in 0..g.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                val[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    #[test]
    fn descends_a_quadratic() {
        // Minimize (x - 3)^2 starting from 0.
        let mut p = Param::new(Mat::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let x = p.value.get(0, 0);
            p.zero_grad();
            p.grad.set(0, 0, 2.0 * (x - 3.0));
            opt.step(&mut [&mut p]);
        }
        assert!(
            (p.value.get(0, 0) - 3.0).abs() < 0.05,
            "got {}",
            p.value.get(0, 0)
        );
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction, the first Adam step magnitude ≈ lr.
        let mut p = Param::new(Mat::zeros(1, 1));
        p.grad.set(0, 0, 123.0);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        assert!((p.value.get(0, 0).abs() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn zero_grad_means_no_motion_after_moments_decay() {
        let mut p = Param::new(Mat::zeros(1, 1));
        p.grad.set(0, 0, 1.0);
        let mut opt = Adam::new(0.1);
        opt.step(&mut [&mut p]);
        let after_one = p.value.get(0, 0);
        p.zero_grad();
        for _ in 0..2000 {
            opt.step(&mut [&mut p]);
        }
        // Momentum decays; value converges (does not diverge).
        assert!(p.value.get(0, 0).is_finite());
        assert!(p.value.get(0, 0) <= after_one);
    }
}
