//! Layers with hand-written backward passes.

use crate::mat::Mat;
use waco_tensor::gen::Rng64;

/// A learnable parameter: value, gradient, and Adam moment buffers.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Mat,
    /// Accumulated gradient (zeroed by `zero_grad`).
    pub grad: Mat,
    /// Adam first moment.
    pub m: Mat,
    /// Adam second moment.
    pub v: Mat,
}

impl Param {
    /// A parameter with the given initial value and zeroed state.
    pub fn new(value: Mat) -> Self {
        let (r, c) = (value.rows(), value.cols());
        Self {
            value,
            grad: Mat::zeros(r, c),
            m: Mat::zeros(r, c),
            v: Mat::zeros(r, c),
        }
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// A fully connected layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix (`in × out`).
    pub w: Param,
    /// Bias row vector (`1 × out`).
    pub b: Param,
    cached_x: Option<Mat>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng64) -> Self {
        Self {
            w: Param::new(Mat::xavier(in_dim, out_dim, rng)),
            b: Param::new(Mat::zeros(1, out_dim)),
            cached_x: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass; caches the input for backward.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let mut y = x.matmul(&self.w.value);
        y.add_bias(self.b.value.row(0));
        self.cached_x = Some(x.clone());
        y
    }

    /// Forward without caching (inference).
    pub fn infer(&self, x: &Mat) -> Mat {
        let mut y = x.matmul(&self.w.value);
        y.add_bias(self.b.value.row(0));
        y
    }

    /// Backward pass: accumulates `dW`, `db`, returns `dX`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let x = self.cached_x.as_ref().expect("forward before backward");
        self.w.grad.add_assign(&x.matmul_tn(dy));
        self.b.grad.add_assign(&Mat::row_vector(&dy.col_sums()));
        dy.matmul_nt(&self.w.value)
    }

    /// Mutable references to the parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// A fresh ReLU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; remembers which inputs were positive.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let mask: Vec<bool> = x.as_slice().iter().map(|&v| v > 0.0).collect();
        let mut y = x.clone();
        for (v, &m) in y.as_mut_slice().iter_mut().zip(&mask) {
            if !m {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        y
    }

    /// Forward without caching (inference).
    pub fn infer(&self, x: &Mat) -> Mat {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let mask = self.mask.as_ref().expect("forward before backward");
        let mut dx = dy.clone();
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        dx
    }
}

/// A multi-layer perceptron: `Linear → ReLU → … → Linear [→ ReLU]`.
#[derive(Debug, Clone)]
pub struct Mlp {
    linears: Vec<Linear>,
    relus: Vec<Relu>,
    relu_last: bool,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `&[128, 64, 1]`.
    /// `relu_last` adds a ReLU after the final linear layer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(dims: &[usize], relu_last: bool, rng: &mut Rng64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let linears: Vec<Linear> = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        let n_relu = if relu_last {
            linears.len()
        } else {
            linears.len() - 1
        };
        Self {
            linears,
            relus: vec![Relu::new(); n_relu],
            relu_last,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.linears[0].in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.linears.last().expect("non-empty").out_dim()
    }

    /// Forward pass with caching.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let mut h = x.clone();
        let n = self.linears.len();
        for i in 0..n {
            h = self.linears[i].forward(&h);
            if i < self.relus.len() {
                h = self.relus[i].forward(&h);
            }
        }
        h
    }

    /// Forward without caching (inference).
    pub fn infer(&self, x: &Mat) -> Mat {
        let mut h = x.clone();
        let n = self.linears.len();
        for i in 0..n {
            h = self.linears[i].infer(&h);
            if i < self.relus.len() {
                h = self.relus[i].infer(&h);
            }
        }
        h
    }

    /// Backward pass; returns `dX`.
    pub fn backward(&mut self, dy: &Mat) -> Mat {
        let mut g = dy.clone();
        for i in (0..self.linears.len()).rev() {
            if i < self.relus.len() {
                g = self.relus[i].backward(&g);
            }
            g = self.linears[i].backward(&g);
        }
        g
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.linears {
            l.w.zero_grad();
            l.b.zero_grad();
        }
    }

    /// Mutable references to all parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.linears
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Whether a ReLU follows the last linear layer.
    pub fn has_relu_last(&self) -> bool {
        self.relu_last
    }
}

/// A learnable lookup table mapping categorical indices to embedding rows —
/// the green boxes of the paper's program embedder (Figure 11).
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table (`vocab × dim`).
    pub table: Param,
    cached_idx: Option<Vec<usize>>,
}

impl Embedding {
    /// A table of `vocab` rows of width `dim`.
    pub fn new(vocab: usize, dim: usize, rng: &mut Rng64) -> Self {
        Self {
            table: Param::new(Mat::xavier(vocab, dim, rng)),
            cached_idx: None,
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Looks up a batch of indices (one output row per index).
    ///
    /// # Panics
    ///
    /// Panics if an index exceeds the vocabulary.
    pub fn forward(&mut self, idx: &[usize]) -> Mat {
        let out = self.lookup(idx);
        self.cached_idx = Some(idx.to_vec());
        out
    }

    /// Lookup without caching (inference).
    pub fn lookup(&self, idx: &[usize]) -> Mat {
        let dim = self.dim();
        let mut out = Mat::zeros(idx.len(), dim);
        for (r, &i) in idx.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.table.value.row(i));
        }
        out
    }

    /// Backward: scatters `dy` rows into the table gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Mat) {
        let idx = self.cached_idx.as_ref().expect("forward before backward");
        for (r, &i) in idx.iter().enumerate() {
            for (g, &d) in self.table.grad.row_mut(i).iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a scalar loss `0.5‖y‖²`.
    fn grad_check_linear() -> (f32, f32) {
        let mut rng = Rng64::seed_from(5);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = Mat::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.3);
        let y = layer.forward(&x);
        // loss = 0.5 * sum(y^2); dL/dy = y.
        layer.backward(&y.clone());
        let analytic = layer.w.grad.get(1, 0);

        let eps = 1e-3;
        let mut wp = layer.w.value.clone();
        wp.set(1, 0, wp.get(1, 0) + eps);
        let mut layer_p = layer.clone();
        layer_p.w.value = wp;
        let yp = layer_p.infer(&x);
        let lp: f32 = yp.as_slice().iter().map(|v| 0.5 * v * v).sum();
        let l0: f32 = y.as_slice().iter().map(|v| 0.5 * v * v).sum();
        let numeric = (lp - l0) / eps;
        (analytic, numeric)
    }

    #[test]
    fn linear_gradient_matches_finite_difference() {
        let (analytic, numeric) = grad_check_linear();
        assert!(
            (analytic - numeric).abs() < 1e-2 * numeric.abs().max(1.0),
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn relu_masks_gradient() {
        let mut relu = Relu::new();
        let x = Mat::from_vec(1, 4, vec![-1.0, 2.0, -3.0, 4.0]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let dy = Mat::from_vec(1, 4, vec![1.0; 4]);
        let dx = relu.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn mlp_shapes_and_grads() {
        let mut rng = Rng64::seed_from(7);
        let mut mlp = Mlp::new(&[5, 8, 3], false, &mut rng);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
        let x = Mat::from_fn(2, 5, |r, c| (r + c) as f32 * 0.1);
        let y = mlp.forward(&x);
        assert_eq!((y.rows(), y.cols()), (2, 3));
        mlp.zero_grad();
        let dx = mlp.backward(&Mat::from_fn(2, 3, |_, _| 1.0));
        assert_eq!((dx.rows(), dx.cols()), (2, 5));
        assert_eq!(mlp.params_mut().len(), 4);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = Rng64::seed_from(8);
        let mut mlp = Mlp::new(&[4, 6, 2], true, &mut rng);
        let x = Mat::from_fn(3, 4, |r, c| (r * c) as f32 * 0.2 - 0.5);
        let a = mlp.forward(&x);
        let b = mlp.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn embedding_lookup_and_scatter() {
        let mut rng = Rng64::seed_from(9);
        let mut e = Embedding::new(10, 4, &mut rng);
        let out = e.forward(&[3, 3, 7]);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.row(0), out.row(1));
        let dy = Mat::from_fn(3, 4, |_, _| 1.0);
        e.backward(&dy);
        // Row 3 received two gradient rows, row 7 one, others none.
        assert_eq!(e.table.grad.get(3, 0), 2.0);
        assert_eq!(e.table.grad.get(7, 0), 1.0);
        assert_eq!(e.table.grad.get(0, 0), 0.0);
    }

    #[test]
    fn mlp_gradient_check_end_to_end() {
        let mut rng = Rng64::seed_from(10);
        let mut mlp = Mlp::new(&[3, 5, 1], false, &mut rng);
        let x = Mat::from_fn(2, 3, |r, c| 0.4 * (r as f32) - 0.2 * (c as f32) + 0.1);
        let y = mlp.forward(&x);
        let l0: f32 = y.as_slice().iter().map(|v| 0.5 * v * v).sum();
        mlp.zero_grad();
        mlp.backward(&y.clone());

        // Check a weight in the first layer.
        let analytic = mlp.linears[0].w.grad.get(2, 1);
        let eps = 1e-3;
        let mut pert = mlp.clone();
        let old = pert.linears[0].w.value.get(2, 1);
        pert.linears[0].w.value.set(2, 1, old + eps);
        let yp = pert.infer(&x);
        let lp: f32 = yp.as_slice().iter().map(|v| 0.5 * v * v).sum();
        let numeric = (lp - l0) / eps;
        assert!(
            (analytic - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
            "analytic {analytic} vs numeric {numeric}"
        );
    }
}
