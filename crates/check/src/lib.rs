//! A small in-tree property-testing harness (the external `proptest`
//! dependency's replacement, keeping the build hermetic).
//!
//! A property is an ordinary panicking closure over values drawn from
//! half-open ranges. The harness samples `cases` inputs from the
//! workspace's own deterministic PRNG ([`Rng64`]), and on failure shrinks
//! the raw draws toward each range's lower bound by halving (plus a
//! decrement step, so integer minima are exact) before reporting the
//! minimal counterexample.
//!
//! ```
//! waco_check::props! {
//!     cases = 64,
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Environment knobs: `WACO_PROP_CASES` overrides every test's case count;
//! `WACO_PROP_SEED` perturbs the (test-name-derived) base seed to explore
//! new inputs.

use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};

use waco_tensor::gen::Rng64;

/// A type whose values are drawn from a finite raw space `0..raw_len()`,
/// with raw 0 being the "smallest" (most shrunk) value. Implemented for
/// the half-open integer ranges used in property signatures.
pub trait RawGen {
    /// The value type produced.
    type Value;
    /// Number of distinct values (must be ≥ 1).
    fn raw_len(&self) -> u64;
    /// Maps a raw draw in `0..raw_len()` to a value.
    fn value(&self, raw: u64) -> Self::Value;
}

macro_rules! impl_rawgen_uint {
    ($($t:ty),+) => {$(
        impl RawGen for Range<$t> {
            type Value = $t;
            fn raw_len(&self) -> u64 {
                assert!(self.start < self.end, "empty range in property");
                (self.end - self.start) as u64
            }
            fn value(&self, raw: u64) -> $t {
                self.start + raw as $t
            }
        }
    )+};
}

impl_rawgen_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_rawgen_int {
    ($($t:ty),+) => {$(
        impl RawGen for Range<$t> {
            type Value = $t;
            fn raw_len(&self) -> u64 {
                assert!(self.start < self.end, "empty range in property");
                u64::from(self.end.abs_diff(self.start))
            }
            fn value(&self, raw: u64) -> $t {
                // Shrinks toward the range start.
                self.start.wrapping_add_unsigned(raw as _)
            }
        }
    )+};
}

impl_rawgen_int!(i64, i32);

/// The default number of cases per property, honoring `WACO_PROP_CASES`.
pub fn cases_or_env(default: usize) -> usize {
    std::env::var("WACO_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn base_seed(name: &str) -> u64 {
    // FNV-1a over the test name, perturbed by WACO_PROP_SEED.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let extra = std::env::var("WACO_PROP_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    h ^ extra
}

fn holds(prop: &dyn Fn(&[u64]), draws: &[u64]) -> bool {
    panic::catch_unwind(AssertUnwindSafe(|| prop(draws))).is_ok()
}

/// Shrink candidates for one raw coordinate: the minimum, the halfway
/// point toward it, and the predecessor (so the reported integer minimum
/// is exact, not just within a factor of two).
fn shrink_candidates(cur: u64) -> impl Iterator<Item = u64> {
    [0, cur / 2, cur.saturating_sub(1)]
        .into_iter()
        .filter(move |&c| c < cur)
}

/// Searches `cases` seeded inputs for a failure of `prop` and greedily
/// shrinks the first one found. Returns the minimal failing raw draws.
/// Exposed so the harness's own shrinking behavior is testable.
pub fn search(
    seed: u64,
    cases: usize,
    lens: &[u64],
    prop: &dyn Fn(&[u64]),
) -> Option<(usize, Vec<u64>)> {
    let mut rng = Rng64::seed_from(seed);
    for case in 0..cases {
        let draws: Vec<u64> = lens
            .iter()
            .map(|&len| {
                debug_assert!(len >= 1);
                ((rng.next_u64() as u128 * u128::from(len)) >> 64) as u64
            })
            .collect();
        if holds(prop, &draws) {
            continue;
        }
        return Some((case, shrink(draws, prop)));
    }
    None
}

fn shrink(mut draws: Vec<u64>, prop: &dyn Fn(&[u64])) -> Vec<u64> {
    const MAX_SHRINK_STEPS: usize = 1000;
    let mut steps = 0;
    let mut made_progress = true;
    while made_progress && steps < MAX_SHRINK_STEPS {
        made_progress = false;
        for i in 0..draws.len() {
            for cand in shrink_candidates(draws[i]) {
                let prev = std::mem::replace(&mut draws[i], cand);
                steps += 1;
                if holds(prop, &draws) {
                    draws[i] = prev; // still passes: not a counterexample
                } else {
                    made_progress = true; // keep the smaller failing input
                    break;
                }
            }
        }
    }
    draws
}

/// Runs a property over `cases` seeded inputs; on failure, shrinks and
/// re-runs the minimal counterexample un-silenced so the original
/// assertion message is what the test reports.
///
/// # Panics
///
/// Panics (failing the enclosing test) iff the property fails.
pub fn run_props(name: &str, cases: usize, lens: &[u64], prop: &dyn Fn(&[u64])) {
    let seed = base_seed(name);
    // Silence the panic hook while probing/shrinking: only the final
    // minimal counterexample should print.
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let failure = search(seed, cases, lens, prop);
    panic::set_hook(hook);
    let Some((case, minimal)) = failure else {
        return;
    };
    eprintln!(
        "waco-check: property `{name}` failed on case {case}/{cases} (seed {seed}); \
         minimal raw draws {minimal:?}; replaying:"
    );
    prop(&minimal);
    unreachable!("minimal counterexample for `{name}` no longer fails on replay");
}

/// Declares property tests. Each `fn` becomes a `#[test]`; every argument
/// is drawn from its half-open range, and the body is an ordinary block
/// using `assert!`-style macros. An optional leading `cases = N,` sets the
/// number of generated inputs (default 64).
#[macro_export]
macro_rules! props {
    ($( $(#[$meta:meta])* $(cases = $cases:expr,)? fn $fname:ident
        ( $($arg:ident in $range:expr),+ $(,)? ) $body:block )+) => {$(
        $(#[$meta])*
        #[test]
        fn $fname() {
            #[allow(unused_mut, unused_assignments)]
            let mut cases = 64usize;
            $(cases = $cases;)?
            let lens: Vec<u64> = vec![$($crate::RawGen::raw_len(&($range))),+];
            $crate::run_props(
                stringify!($fname),
                $crate::cases_or_env(cases),
                &lens,
                &|draws: &[u64]| {
                    let mut i = 0usize;
                    $(
                        let $arg = $crate::RawGen::value(&($range), draws[i]);
                        i += 1;
                    )+
                    let _ = i;
                    $body
                },
            );
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinking_finds_known_minimal_counterexample() {
        // Property "x < 10" over 0..100_000 fails minimally at x = 10.
        let found = search(1, 256, &[100_000], &|d| assert!(d[0] < 10));
        let (_, minimal) = found.expect("a failure must be found");
        assert_eq!(minimal, vec![10]);
    }

    #[test]
    fn shrinking_is_per_coordinate() {
        // "a + b < 30" with a ≥ 20 required to fail alongside b ≥ 10:
        // shrinking must reach an exact boundary pair, not just any failure.
        let found = search(2, 512, &[1000, 1000], &|d| {
            assert!(!(d[0] >= 20 && d[1] >= 10), "fails iff a>=20 and b>=10");
        });
        let (_, minimal) = found.expect("failure found");
        assert_eq!(minimal, vec![20, 10]);
    }

    #[test]
    fn passing_property_reports_nothing() {
        assert!(search(3, 128, &[64, 64], &|d| assert!(d[0] < 64 && d[1] < 64)).is_none());
    }

    #[test]
    fn signed_ranges_shrink_toward_start() {
        let r = -50i64..50;
        assert_eq!(r.raw_len(), 100);
        assert_eq!(r.value(0), -50);
        assert_eq!(r.value(99), 49);
    }

    props! {
        cases = 32,
        fn macro_generates_in_range(a in 3usize..17, b in 0u64..5) {
            assert!((3..17).contains(&a));
            assert!(b < 5);
        }

        fn macro_default_cases(x in 0u32..1000) {
            assert!(x < 1000);
        }
    }
}
