//! Self-tests of the harness: the production backend must come back clean,
//! and a deliberately broken backend must be caught with a replayable
//! failure record — the harness's own false-negative check.

use waco_schedule::{Kernel, Space, SuperSchedule};
use waco_tensor::{CooMatrix, CooTensor3, DenseMatrix, DenseVector};
use waco_verify::diff::{ExecBackend, Executor};
use waco_verify::{run_with_executor, Budget, VerifyConfig};

#[test]
fn clean_backend_passes_smoke() {
    let mut cfg = VerifyConfig::new(42, Budget::Smoke);
    // The fault suite has its own test below; keep this one about kernels.
    cfg.faults = false;
    let report = run_with_executor(&cfg, &ExecBackend);
    for s in &report.suites {
        assert!(
            s.failures.is_empty(),
            "suite {} reported failures:\n{}",
            s.name,
            report.summary()
        );
        assert!(s.executed > 0, "suite {} executed nothing", s.name);
    }
    assert_eq!(
        report.suites.len(),
        7,
        "diff + plan + metamorphic + baselines + spgemm_oracle + fusion_equivalence + search_pruning"
    );
    assert!(report.passed());
}

#[test]
fn fault_suite_passes_and_counts_injections() {
    let mut cfg = VerifyConfig::new(42, Budget::Smoke);
    cfg.kernels = vec![];
    let report = run_with_executor(&cfg, &ExecBackend);
    let fault = report
        .suites
        .iter()
        .find(|s| s.name == "fault")
        .expect("fault suite ran");
    assert!(
        fault.failures.is_empty(),
        "fault suite failed:\n{}",
        report.summary()
    );
    // Truncation sweep alone injects one fault per byte of the journal.
    assert!(
        fault.executed > 100,
        "expected a dense fault sweep, got {} checks",
        fault.executed
    );
}

/// A backend that mis-executes SpMV whenever the row dimension is split —
/// the shape of a real lowering bug (a tile boundary handled wrong).
struct BrokenSplitLowering;

impl Executor for BrokenSplitLowering {
    fn name(&self) -> &'static str {
        "broken-split-lowering"
    }

    fn spmv(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        x: &DenseVector,
    ) -> waco_exec::Result<DenseVector> {
        let mut y = ExecBackend.spmv(a, sched, space, x)?;
        if sched.splits[0] > 1 && a.nrows() > 0 {
            let slice = y.as_mut_slice();
            slice[0] += 1.0;
        }
        Ok(y)
    }

    fn spmm(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
    ) -> waco_exec::Result<DenseMatrix> {
        ExecBackend.spmm(a, sched, space, b)
    }

    fn sddmm(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
        c: &DenseMatrix,
    ) -> waco_exec::Result<CooMatrix> {
        ExecBackend.sddmm(a, sched, space, b, c)
    }

    fn mttkrp(
        &self,
        t: &CooTensor3,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
        c: &DenseMatrix,
    ) -> waco_exec::Result<DenseMatrix> {
        ExecBackend.mttkrp(t, sched, space, b, c)
    }
}

#[test]
fn broken_lowering_is_caught_with_a_replayable_record() {
    let mut cfg = VerifyConfig::new(42, Budget::Smoke);
    cfg.kernels = vec![Kernel::SpMV];
    cfg.faults = false;

    let report = run_with_executor(&cfg, &BrokenSplitLowering);
    assert!(!report.passed(), "the broken lowering went undetected");

    let diff = report
        .suites
        .iter()
        .find(|s| s.name == "differential")
        .expect("differential suite ran");
    assert!(
        !diff.failures.is_empty(),
        "the differential suite missed the broken lowering"
    );
    let f = &diff.failures[0];
    assert_eq!(f.kernel.as_deref(), Some("spmv"));
    assert!(f.matrix_seed.is_some(), "failure must name the matrix seed");
    assert!(
        f.schedule_index.is_some(),
        "failure must name the schedule index"
    );
    assert!(
        f.schedule.as_deref().is_some_and(|s| !s.is_empty()),
        "failure must carry the schedule"
    );
    assert!(
        f.schedule_json.is_some(),
        "failure must carry the machine-readable schedule"
    );
    let d = f.divergence.as_ref().expect("failure carries a divergence");
    assert_eq!(d.coord, vec![0], "the bug perturbs row 0");
    assert!((d.actual - d.expected).abs() > 0.5, "perturbation is +1.0");
    assert!(
        f.detail.contains("shrunk"),
        "failure records the shrink outcome: {}",
        f.detail
    );

    // Replay: the same seed must reproduce the identical failure list.
    let replay = run_with_executor(&cfg, &BrokenSplitLowering);
    let a: Vec<String> = report
        .suites
        .iter()
        .flat_map(|s| s.failures.iter().map(|f| f.to_string()))
        .collect();
    let b: Vec<String> = replay
        .suites
        .iter()
        .flat_map(|s| s.failures.iter().map(|f| f.to_string()))
        .collect();
    assert!(!a.is_empty());
    assert_eq!(a, b, "replay with the same seed diverged");
}
