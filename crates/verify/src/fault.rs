//! Fault injection for the serving layer. Two stores of truth are attacked:
//!
//! * **The journal** — every truncation point and every byte flip of a
//!   populated journal file is replayed through [`Journal::open`]. Recovery
//!   must never panic, never error (corruption is repaired, not reported as
//!   failure), and never surface a record that is not byte-identical to a
//!   prefix of what was appended — the per-record checksum is the witness.
//! * **The wire** — a client that drops a request frame mid-message must
//!   not wedge or poison the server (the next client gets the correct
//!   tune), and a server that short-writes or corrupts a response frame
//!   must surface a clean [`Err`] to the client, never a fabricated tune.
//!
//! Everything runs in a scratch directory under the system temp dir and on
//! ephemeral loopback ports; nothing here touches real caches.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use waco_core::WacoError;
use waco_schedule::{named, Kernel, Space};
use waco_serve::protocol::write_frame;
use waco_serve::tuner::TunedOutcome;
use waco_serve::{
    Client, Decision, Fingerprint, Journal, Json, ServeConfig, Server, Tuner, TuningCache,
};
use waco_tensor::gen::Rng64;
use waco_tensor::CooMatrix;

use crate::{corpus, Budget, Failure, SuiteReport, VerifyConfig};

struct Ctx {
    executed: usize,
    failures: Vec<Failure>,
}

impl Ctx {
    fn check(&mut self, case_name: &str, ok: bool, detail: impl FnOnce() -> String) {
        self.executed += 1;
        if !ok {
            self.failures.push(Failure {
                suite: "fault",
                kernel: None,
                case_name: case_name.to_string(),
                matrix_seed: None,
                schedule_index: None,
                schedule: None,
                schedule_json: None,
                divergence: None,
                detail: detail(),
            });
        }
    }
}

fn scratch_dir(cfg: &VerifyConfig, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "waco-verify-fault-{}-{}-{name}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating scratch dir");
    dir
}

/// Deterministic journal payloads, including an empty one.
fn payloads(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Rng64::seed_from(seed);
    (0..6)
        .map(|i| {
            let len = if i == 2 { 0 } else { 16 + (i * 7) % 23 };
            (0..len).map(|_| (rng.below(256)) as u8).collect()
        })
        .collect()
}

/// Opens `path` through recovery, classifying the outcome.
fn open_recovered(path: &Path) -> Result<Result<Vec<Vec<u8>>, WacoError>, String> {
    catch_unwind(AssertUnwindSafe(|| {
        Journal::open(path, |_| vec![]).map(|(_, recovered, _)| recovered)
    }))
    .map_err(|_| "panicked".to_string())
}

fn is_prefix(recovered: &[Vec<u8>], originals: &[Vec<u8>]) -> bool {
    recovered.len() <= originals.len() && recovered.iter().zip(originals).all(|(a, b)| a == b)
}

/// Journal torn-write and bit-flip sweeps.
fn journal_faults(cfg: &VerifyConfig, ctx: &mut Ctx) {
    let dir = scratch_dir(cfg, "journal");
    let pristine = dir.join("pristine.journal");
    let originals = payloads(cfg.seed);

    // Measure the header: an empty journal is exactly the header.
    let header_len = {
        let empty = dir.join("empty.journal");
        let _ = Journal::open(&empty, |_| vec![]).expect("creating empty journal");
        std::fs::metadata(&empty).expect("stat empty journal").len() as usize
    };

    {
        let (mut j, _, _) = Journal::open(&pristine, |_| vec![]).expect("creating journal");
        for p in &originals {
            j.append(p).expect("appending");
        }
        j.sync().expect("syncing");
    }
    let bytes = std::fs::read(&pristine).expect("reading journal file");

    // Record boundaries: header, then `len u32 + crc u64 + payload` each.
    let mut boundaries = vec![header_len];
    for p in &originals {
        boundaries.push(boundaries.last().unwrap() + 4 + 8 + p.len());
    }
    assert_eq!(*boundaries.last().unwrap(), bytes.len(), "boundary math");

    let victim = dir.join("victim.journal");

    // Every truncation point: recovery must yield exactly the records whose
    // bytes fully survived the cut.
    for cut in 0..bytes.len() {
        std::fs::write(&victim, &bytes[..cut]).expect("writing truncated copy");
        // Cuts inside the header reinitialize the journal: zero records.
        let want = boundaries
            .iter()
            .filter(|&&b| b <= cut)
            .count()
            .saturating_sub(1);
        match open_recovered(&victim) {
            Err(why) => ctx.check("journal-truncation", false, || {
                format!("recovery {why} at cut {cut}")
            }),
            Ok(Err(e)) => ctx.check("journal-truncation", false, || {
                format!("recovery errored at cut {cut}: {e}")
            }),
            Ok(Ok(recovered)) => ctx.check(
                "journal-truncation",
                recovered.len() == want && is_prefix(&recovered, &originals),
                || {
                    format!(
                        "cut {cut}: recovered {} records, wanted {want} (prefix intact: {})",
                        recovered.len(),
                        is_prefix(&recovered, &originals)
                    )
                },
            ),
        }
    }

    // Every byte flip: recovered records must stay a byte-exact prefix —
    // a checksum-passing corrupt record would be a poisoned cache entry.
    let masks: &[u8] = match cfg.budget {
        Budget::Smoke => &[0xFF],
        Budget::Nightly => &[0x01, 0x80, 0xFF],
    };
    for pos in 0..bytes.len() {
        for &mask in masks {
            let mut copy = bytes.clone();
            copy[pos] ^= mask;
            std::fs::write(&victim, &copy).expect("writing flipped copy");
            match open_recovered(&victim) {
                Err(why) => ctx.check("journal-bit-flip", false, || {
                    format!("recovery {why} at pos {pos} mask {mask:#x}")
                }),
                Ok(Err(e)) => ctx.check("journal-bit-flip", false, || {
                    format!("recovery errored at pos {pos} mask {mask:#x}: {e}")
                }),
                Ok(Ok(recovered)) => ctx.check(
                    "journal-bit-flip",
                    is_prefix(&recovered, &originals),
                    || format!("pos {pos} mask {mask:#x}: a non-prefix record survived recovery"),
                ),
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

fn decision_for(m: &CooMatrix, kernel: Kernel) -> Decision {
    let space = Space::new(kernel, vec![m.nrows(), m.ncols()], 0);
    Decision {
        fingerprint: Fingerprint::of_matrix(m),
        kernel,
        dense_extent: 0,
        schedule: named::default_csr(&space),
        kernel_seconds: 1e-6,
        tuning_seconds: 2e-6,
    }
}

/// Torn write against the full cache: earlier decisions must survive
/// byte-exact; the torn one must be a clean miss.
fn cache_torn_write(cfg: &VerifyConfig, ctx: &mut Ctx) {
    let dir = scratch_dir(cfg, "cache");
    let journal = dir.join("cache.journal");
    let matrices: Vec<CooMatrix> = corpus::matrices(cfg.seed, Budget::Smoke)
        .into_iter()
        .filter(|c| c.matrix.nnz() > 0)
        .take(4)
        .map(|c| c.matrix)
        .collect();
    let decisions: Vec<Decision> = matrices
        .iter()
        .map(|m| decision_for(m, Kernel::SpMV))
        .collect();

    {
        let cache = TuningCache::open(&journal, 64).expect("opening cache");
        for d in &decisions {
            cache.insert(d.clone()).expect("inserting");
        }
        cache.sync().expect("syncing");
    }

    // Tear the tail: drop the last 5 bytes, mid-way through the last record.
    let bytes = std::fs::read(&journal).expect("reading cache journal");
    std::fs::write(&journal, &bytes[..bytes.len() - 5]).expect("tearing journal");

    match TuningCache::open(&journal, 64) {
        Err(e) => ctx.check("cache-torn-write", false, || {
            format!("reopen after torn write errored: {e}")
        }),
        Ok(cache) => {
            for (i, d) in decisions.iter().enumerate().take(decisions.len() - 1) {
                let got = cache.lookup(d.fingerprint, d.kernel, d.dense_extent);
                ctx.check("cache-torn-write", got.as_ref() == Some(d), || {
                    format!("decision {i} lost or mutated after torn-tail recovery")
                });
            }
            let torn = decisions.last().unwrap();
            let got = cache.lookup(torn.fingerprint, torn.kernel, torn.dense_extent);
            ctx.check("cache-torn-write", got.is_none(), || {
                "the torn record was served instead of being dropped".to_string()
            });
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A deterministic tuner so wire-level checks can recognize the one
/// correct answer.
struct FixedTuner;

impl Tuner for FixedTuner {
    fn tune(
        &self,
        m: &CooMatrix,
        kernel: Kernel,
        dense_extent: usize,
    ) -> Result<TunedOutcome, WacoError> {
        let space = Space::new(kernel, vec![m.nrows(), m.ncols()], dense_extent);
        Ok(TunedOutcome {
            schedule: named::default_csr(&space),
            kernel_seconds: 1e-6,
            tuning_seconds: 2e-6,
        })
    }
}

/// Mid-frame TCP faults, both directions.
fn tcp_faults(cfg: &VerifyConfig, ctx: &mut Ctx) {
    let dir = scratch_dir(cfg, "tcp");
    let m = corpus::matrices(cfg.seed, Budget::Smoke)
        .into_iter()
        .find(|c| c.matrix.nnz() > 0)
        .expect("corpus has a non-empty matrix")
        .matrix;
    let expected = {
        let space = Space::new(Kernel::SpMV, vec![m.nrows(), m.ncols()], 0);
        named::default_csr(&space)
    };

    // Direction 1: a request frame dropped mid-message. The victim
    // connection dies; the server — and its cache — must not.
    let server = {
        let config = ServeConfig::builder()
            .addr("127.0.0.1:0")
            .cache_dir(dir.join("serve-cache"))
            .workers(2)
            .timeout_secs(30.0)
            .build()
            .expect("serve config");
        Server::start(config, Arc::new(FixedTuner)).expect("starting server")
    };
    {
        let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("raw connect");
        raw.write_all(&4096u32.to_be_bytes()).expect("prefix");
        raw.write_all(b"{\"op\":\"tune\",\"trunc")
            .expect("partial body");
        // Drop: the frame never completes.
    }
    let tune = Client::connect(&server.local_addr().to_string(), Duration::from_secs(30))
        .and_then(|mut c| c.tune(&m, "spmv", 0));
    match tune {
        Err(e) => ctx.check("tcp-dropped-request", false, || {
            format!("server unusable after a dropped request frame: {e}")
        }),
        Ok(reply) => ctx.check(
            "tcp-dropped-request",
            reply.decision.as_ref().map(|d| &d.schedule) == Some(&expected),
            || "tune after a dropped request frame returned a wrong schedule".to_string(),
        ),
    }
    let mut c = Client::connect(&server.local_addr().to_string(), Duration::from_secs(30))
        .expect("connect for shutdown");
    c.shutdown().expect("shutdown");
    server.wait().expect("server drain");

    // Direction 2: the server's response is short-written / corrupted.
    // The client must return Err, never a fabricated tune result.
    type Corruptor = fn(&Json) -> Vec<u8>;
    let cases: &[(&str, Corruptor)] = &[
        ("tcp-short-response", |body| {
            let mut full = Vec::new();
            write_frame(&mut full, body).expect("encoding frame");
            full.truncate(full.len() / 2);
            full
        }),
        ("tcp-garbage-response", |_| {
            let garbage = b"!!this is not json!!";
            let mut out = Vec::new();
            out.extend_from_slice(&(garbage.len() as u32).to_be_bytes());
            out.extend_from_slice(garbage);
            out
        }),
    ];
    for &(name, corrupt) in cases {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake server");
        let addr = listener.local_addr().expect("fake addr");
        let handle = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().expect("accept");
            // Drain whatever part of the request has arrived; the reply
            // does not depend on it.
            sock.set_read_timeout(Some(Duration::from_millis(200))).ok();
            let mut buf = [0u8; 4096];
            let _ = std::io::Read::read(&mut sock, &mut buf);
            let body = Json::obj([("ok", Json::Bool(true)), ("cached", Json::Bool(false))]);
            let _ = sock.write_all(&corrupt(&body));
            // Drop: connection closes mid-reply.
        });
        let outcome = Client::connect(&addr.to_string(), Duration::from_secs(5))
            .and_then(|mut c| c.tune(&m, "spmv", 0));
        ctx.check(name, outcome.is_err(), || {
            "client accepted a torn/corrupt response as a tune result".to_string()
        });
        handle.join().expect("fake server thread");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The fault-injection suite.
pub fn fault_suite(cfg: &VerifyConfig) -> SuiteReport {
    let mut ctx = Ctx {
        executed: 0,
        failures: Vec::new(),
    };
    journal_faults(cfg, &mut ctx);
    cache_torn_write(cfg, &mut ctx);
    tcp_faults(cfg, &mut ctx);
    SuiteReport {
        name: "fault",
        executed: ctx.executed,
        skipped: 0,
        failures: ctx.failures,
    }
}
