//! The verification corpus: sparsity structures chosen to hit the edges a
//! random uniform matrix never does — banded locality, dense blocks,
//! power-law skew, empty rows, a single entry, rectangular shapes, and an
//! entirely empty pattern. Every case is derived deterministically from the
//! harness seed so any failure names the exact matrix that produced it.

use waco_tensor::gen::{self, Rng64};
use waco_tensor::{CooMatrix, CooTensor3};

use crate::Budget;

/// One matrix case: a structure family instantiated from a seed.
#[derive(Debug, Clone)]
pub struct MatrixCase {
    /// Family label, stable across runs (goes into failure reports).
    pub name: String,
    /// The seed this matrix was generated from (replay key).
    pub seed: u64,
    /// The matrix itself.
    pub matrix: CooMatrix,
}

/// One order-3 tensor case for MTTKRP.
#[derive(Debug, Clone)]
pub struct TensorCase {
    /// Family label.
    pub name: String,
    /// Generation seed.
    pub seed: u64,
    /// The tensor.
    pub tensor: CooTensor3,
}

fn mix(seed: u64, salt: u64) -> u64 {
    seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The matrix corpus for a harness seed. `Nightly` scales the extents up;
/// the family list is identical so smoke and nightly disagree only in size.
pub fn matrices(seed: u64, budget: Budget) -> Vec<MatrixCase> {
    let n = match budget {
        Budget::Smoke => 24,
        Budget::Nightly => 96,
    };
    let mut cases = Vec::new();
    let mut case = |name: &str, salt: u64, build: &dyn Fn(&mut Rng64) -> CooMatrix| {
        let s = mix(seed, salt);
        let mut rng = Rng64::seed_from(s);
        cases.push(MatrixCase {
            name: name.to_string(),
            seed: s,
            matrix: build(&mut rng),
        });
    };

    case("banded", 1, &|rng| gen::banded(n, 3, 0.8, rng));
    case("blocked", 2, &|rng| gen::blocked(n, n, 4, n / 2, 0.9, rng));
    case("powerlaw", 3, &|rng| {
        gen::powerlaw_rows(n, n, 4.0, 1.2, rng)
    });
    case("empty-rows", 4, &|rng| {
        // Uniform fill restricted to even rows: half the rows have no
        // entries at all, exercising zero-length compressed segments.
        let m = gen::uniform_random(n, n, 0.2, rng);
        let triplets = m.iter().filter(|(r, _, _)| r % 2 == 0);
        CooMatrix::from_triplets(n, n, triplets).expect("in-bounds")
    });
    case("single-entry", 5, &|rng| {
        let (r, c) = (rng.below(n - 2), rng.below(n + 3));
        CooMatrix::from_triplets(n - 2, n + 3, [(r, c, 0.5f32)]).expect("in-bounds")
    });
    case("rectangular", 6, &|rng| {
        gen::uniform_random(n / 2, n * 2, 0.15, rng)
    });
    case("empty", 7, &|_| CooMatrix::zeros(n / 2, n / 2));
    cases
}

/// The order-3 tensor corpus (MTTKRP's sparse operand).
pub fn tensors(seed: u64, budget: Budget) -> Vec<TensorCase> {
    let d = match budget {
        Budget::Smoke => 8,
        Budget::Nightly => 20,
    };
    let mut cases = Vec::new();
    let mut case = |name: &str, salt: u64, build: &dyn Fn(&mut Rng64) -> CooTensor3| {
        let s = mix(seed, salt);
        let mut rng = Rng64::seed_from(s);
        cases.push(TensorCase {
            name: name.to_string(),
            seed: s,
            tensor: build(&mut rng),
        });
    };

    case("random3", 11, &|rng| {
        gen::random_tensor3([d, d + 1, d + 2], d * d, rng)
    });
    case("single-entry3", 12, &|rng| {
        let (i, k, l) = (rng.below(d), rng.below(d), rng.below(d));
        CooTensor3::from_quads([d, d, d], [(i, k, l, -0.75f32)]).expect("in-bounds")
    });
    case("fibered3", 13, &|rng| {
        gen::fibered_tensor3([d, d, d], 2, 0.7, rng)
    });
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_covers_families() {
        let a = matrices(42, Budget::Smoke);
        let b = matrices(42, Budget::Smoke);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.matrix.entries(), y.matrix.entries());
        }
        let names: Vec<&str> = a.iter().map(|c| c.name.as_str()).collect();
        for want in [
            "banded",
            "blocked",
            "powerlaw",
            "empty-rows",
            "single-entry",
            "rectangular",
            "empty",
        ] {
            assert!(names.contains(&want), "missing family {want}");
        }
        // Structure sanity.
        let empty = a.iter().find(|c| c.name == "empty").unwrap();
        assert_eq!(empty.matrix.nnz(), 0);
        let single = a.iter().find(|c| c.name == "single-entry").unwrap();
        assert_eq!(single.matrix.nnz(), 1);
        assert_ne!(single.matrix.nrows(), single.matrix.ncols());
        let rect = a.iter().find(|c| c.name == "rectangular").unwrap();
        assert_eq!(rect.matrix.ncols(), 4 * rect.matrix.nrows());
    }

    #[test]
    fn tensor_corpus_is_deterministic() {
        let a = tensors(7, Budget::Smoke);
        let b = tensors(7, Budget::Smoke);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tensor.entries(), y.tensor.entries());
        }
    }

    #[test]
    fn seed_changes_content_not_shape_of_corpus() {
        let a = matrices(1, Budget::Smoke);
        let b = matrices(2, Budget::Smoke);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .any(|(x, y)| x.matrix.entries() != y.matrix.entries()));
    }
}
