//! Workspace-kernel suites: the two dense-temporary kernels (row-wise
//! Gustavson SpGEMM and fused SDDMM+SpMM) held to the dense `f64` oracle
//! and to their defining metamorphic identities.
//!
//! These suites run unconditionally — `VerifyConfig::kernels` defaults to
//! the four paper kernels, but the workspace subsystem feeds the serve
//! path's tuned plans, so every `waco-cli verify` run covers it:
//!
//! * `spgemm_oracle` — every sampled schedule of the SpGEMM space against
//!   [`crate::oracle::spgemm`], plus the `A · I ≡ A` right-identity at
//!   **bit** granularity: against an identity CSR, every workspace cell
//!   sees exactly `0.0 + v · 1.0`, which is a bitwise no-op, so the output
//!   must reproduce A's dense image bit for bit.
//! * `fusion_equivalence` — fused SDDMM+SpMM against
//!   [`crate::oracle::sddmm_spmm`] across sampled schedules, and fused ≡
//!   unfused (SDDMM, then SpMM of the compacted intermediate) to **bit**
//!   identity under the default CSR schedule: both sides reduce over `j`
//!   in A's per-row CSR column order, so there is no reassociation for a
//!   divergence to hide behind.

use waco_exec::ExecError;
use waco_runtime::ThreadPool;
use waco_schedule::{named, Kernel, ScheduleSampler, Space, SuperSchedule};
use waco_serve::cache::schedule_to_json;
use waco_tensor::{CooMatrix, CsrMatrix, Value};

use crate::corpus;
use crate::diff::{
    check_matrix_schedule, dense_extent_for, dense_mat, matrix_oracle, Executor, FUSED_OUT_COLS,
};
use crate::{kernel_wire_name, mix_seed, Failure, SuiteReport, Tolerance, VerifyConfig};

/// First flat index where two value slices differ in bits.
fn first_bit_diff(a: &[Value], b: &[Value]) -> Option<usize> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    a.iter()
        .zip(b)
        .position(|(x, y)| x.to_bits() != y.to_bits())
}

#[allow(clippy::too_many_arguments)]
fn failure(
    suite: &'static str,
    kernel: Kernel,
    case_name: &str,
    case_seed: u64,
    index: Option<usize>,
    sched: &SuperSchedule,
    space: &Space,
    detail: String,
) -> Failure {
    Failure {
        suite,
        kernel: Some(kernel_wire_name(kernel).to_string()),
        case_name: case_name.to_string(),
        matrix_seed: Some(case_seed),
        schedule_index: index,
        schedule: Some(sched.describe(space)),
        schedule_json: Some(schedule_to_json(sched)),
        divergence: None,
        detail,
    }
}

/// SpGEMM over the corpus: oracle agreement across the sampler stream,
/// then the right-identity `A · I ≡ A` at bit granularity.
pub fn spgemm_oracle_suite(cfg: &VerifyConfig, exec: &dyn Executor) -> SuiteReport {
    let pool = ThreadPool::global();
    let threads = pool.max_participants();
    let tol = Tolerance::default();
    let per_case = cfg.budget.schedules_per_case();
    let mut executed = 0usize;
    let mut skipped = 0usize;
    let mut failures = Vec::new();

    for case in corpus::matrices(cfg.seed, cfg.budget) {
        let m = &case.matrix;
        let dense = dense_extent_for(Kernel::SpGEMM);
        let space = Space::new(Kernel::SpGEMM, vec![m.nrows(), m.ncols()], dense);
        let salt = format!("workspace/spgemm/{}", case.name);
        let schedule_seed = mix_seed(cfg.seed, &salt);
        let operand_seed = mix_seed(cfg.seed, &format!("{salt}/operands"));
        let expected = matrix_oracle(Kernel::SpGEMM, m, dense, operand_seed);
        let schedules = ScheduleSampler::new(&space, schedule_seed).take_schedules(per_case);

        let verdicts = pool.map(&schedules, threads, |sched| {
            check_matrix_schedule(
                exec,
                Kernel::SpGEMM,
                m,
                sched,
                &space,
                &expected,
                operand_seed,
                &tol,
            )
        });
        for (index, (sched, verdict)) in schedules.iter().zip(verdicts).enumerate() {
            match verdict {
                Err(()) => skipped += 1,
                Ok(None) => executed += 1,
                Ok(Some(d)) => {
                    executed += 1;
                    let mut f = failure(
                        "spgemm_oracle",
                        Kernel::SpGEMM,
                        &case.name,
                        case.seed,
                        Some(index),
                        sched,
                        &space,
                        format!("oracle disagreement (backend {})", exec.name()),
                    );
                    f.divergence = Some(d);
                    failures.push(f);
                }
            }
        }

        // Right-identity: multiplying by I on the right must reproduce A's
        // dense image bit for bit, under every sampled schedule.
        if m.ncols() == 0 {
            continue;
        }
        let eye = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(m.ncols(), m.ncols(), (0..m.ncols()).map(|i| (i, i, 1.0)))
                .expect("identity triplets are in bounds"),
        );
        let ispace = Space::new(Kernel::SpGEMM, vec![m.nrows(), m.ncols()], m.ncols());
        let ischeds =
            ScheduleSampler::new(&ispace, mix_seed(cfg.seed, &format!("{salt}/identity")))
                .take_schedules(cfg.budget.metamorphic_schedules());
        let expected_dense = m.to_dense();
        for (index, sched) in ischeds.iter().enumerate() {
            match exec.spgemm(m, sched, &ispace, &eye) {
                Err(ExecError::Format(_)) => skipped += 1,
                Err(e) => panic!("unexpected executor error: {e}"),
                Ok(out) => {
                    executed += 1;
                    let got = out.to_coo().to_dense();
                    if let Some(idx) = first_bit_diff(expected_dense.as_slice(), got.as_slice()) {
                        failures.push(failure(
                            "spgemm_oracle",
                            Kernel::SpGEMM,
                            &case.name,
                            case.seed,
                            Some(index),
                            sched,
                            &ispace,
                            format!(
                                "A·I ≠ A at flat index {idx}: expected {}, got {} (backend {})",
                                expected_dense.as_slice()[idx],
                                got.as_slice().get(idx).copied().unwrap_or(f32::NAN),
                                exec.name()
                            ),
                        ));
                    }
                }
            }
        }
    }

    SuiteReport {
        name: "spgemm_oracle",
        executed,
        skipped,
        failures,
    }
}

/// Fused SDDMM+SpMM over the corpus: oracle agreement across the sampler
/// stream, then fused ≡ unfused to bit identity under the default CSR
/// schedule on both sides.
pub fn fusion_equivalence_suite(cfg: &VerifyConfig, exec: &dyn Executor) -> SuiteReport {
    let pool = ThreadPool::global();
    let threads = pool.max_participants();
    let tol = Tolerance::default();
    let per_case = cfg.budget.schedules_per_case();
    let mut executed = 0usize;
    let mut skipped = 0usize;
    let mut failures = Vec::new();

    for case in corpus::matrices(cfg.seed, cfg.budget) {
        let m = &case.matrix;
        let k = dense_extent_for(Kernel::SddmmSpmm);
        let space = Space::new(Kernel::SddmmSpmm, vec![m.nrows(), m.ncols()], k);
        let salt = format!("workspace/fused/{}", case.name);
        let schedule_seed = mix_seed(cfg.seed, &salt);
        let operand_seed = mix_seed(cfg.seed, &format!("{salt}/operands"));
        let expected = matrix_oracle(Kernel::SddmmSpmm, m, k, operand_seed);
        let schedules = ScheduleSampler::new(&space, schedule_seed).take_schedules(per_case);

        let verdicts = pool.map(&schedules, threads, |sched| {
            check_matrix_schedule(
                exec,
                Kernel::SddmmSpmm,
                m,
                sched,
                &space,
                &expected,
                operand_seed,
                &tol,
            )
        });
        for (index, (sched, verdict)) in schedules.iter().zip(verdicts).enumerate() {
            match verdict {
                Err(()) => skipped += 1,
                Ok(None) => executed += 1,
                Ok(Some(d)) => {
                    executed += 1;
                    let mut f = failure(
                        "fusion_equivalence",
                        Kernel::SddmmSpmm,
                        &case.name,
                        case.seed,
                        Some(index),
                        sched,
                        &space,
                        format!("oracle disagreement (backend {})", exec.name()),
                    );
                    f.divergence = Some(d);
                    failures.push(f);
                }
            }
        }

        // Fused ≡ unfused to the bit: SDDMM then SpMM of the compacted
        // intermediate, everything on the default CSR schedule so both
        // sides reduce over j in the same per-row order.
        let b = dense_mat(m.nrows(), k, operand_seed);
        let c = dense_mat(k, m.ncols(), mix_seed(operand_seed, "c"));
        let f = dense_mat(m.ncols(), FUSED_OUT_COLS, mix_seed(operand_seed, "f"));
        let fused_sched = named::default_csr(&space);
        let sddmm_space = Space::new(Kernel::SDDMM, vec![m.nrows(), m.ncols()], k);
        let spmm_space = Space::new(Kernel::SpMM, vec![m.nrows(), m.ncols()], FUSED_OUT_COLS);
        let fused = exec.sddmm_spmm(m, &fused_sched, &space, &b, &c, &f);
        let unfused = exec
            .sddmm(m, &named::default_csr(&sddmm_space), &sddmm_space, &b, &c)
            .and_then(|d| exec.spmm(&d, &named::default_csr(&spmm_space), &spmm_space, &f));
        match (fused, unfused) {
            (Err(ExecError::Format(_)), _) | (_, Err(ExecError::Format(_))) => skipped += 1,
            (Err(e), _) | (_, Err(e)) => panic!("unexpected executor error: {e}"),
            (Ok(ef), Ok(eu)) => {
                executed += 1;
                if let Some(idx) = first_bit_diff(ef.as_slice(), eu.as_slice()) {
                    failures.push(failure(
                        "fusion_equivalence",
                        Kernel::SddmmSpmm,
                        &case.name,
                        case.seed,
                        None,
                        &fused_sched,
                        &space,
                        format!(
                            "fused ≠ unfused at flat index {idx}: fused {}, unfused {} (backend {})",
                            ef.as_slice().get(idx).copied().unwrap_or(f32::NAN),
                            eu.as_slice().get(idx).copied().unwrap_or(f32::NAN),
                            exec.name()
                        ),
                    ));
                }
            }
        }
    }

    SuiteReport {
        name: "fusion_equivalence",
        executed,
        skipped,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::ExecBackend;
    use crate::Budget;

    #[test]
    fn workspace_suites_pass_on_the_production_backend() {
        let cfg = VerifyConfig::new(11, Budget::Smoke);
        let spgemm = spgemm_oracle_suite(&cfg, &ExecBackend);
        assert!(
            spgemm.failures.is_empty(),
            "spgemm_oracle must pass: {:?}",
            spgemm.failures.first().map(|f| f.to_string())
        );
        assert!(spgemm.executed > 20, "suite actually ran checks");

        let fused = fusion_equivalence_suite(&cfg, &ExecBackend);
        assert!(
            fused.failures.is_empty(),
            "fusion_equivalence must pass: {:?}",
            fused.failures.first().map(|f| f.to_string())
        );
        assert!(fused.executed > 20, "suite actually ran checks");
    }
}
