//! Cross-check of the `waco-baselines` tuners: every schedule a baseline
//! picks (FixedCSR/CSF, BestFormat, MKL-like, ASpT) must still compute the
//! right answer when executed, through the same comparator the fuzzer uses.
//! A baseline that declines a case (simulation error — e.g. over-budget
//! storage) counts as skipped, not failed: the tuners are allowed to say
//! no, they are not allowed to be wrong.

use waco_baselines::{aspt, best_format, fixed, TunedResult};
use waco_schedule::Kernel;
use waco_serve::cache::schedule_to_json;
use waco_sim::{MachineConfig, Simulator};

use crate::corpus;
use crate::diff::{dense_extent_for, dense_mat, matrix_oracle, Executor};
use crate::{kernel_wire_name, mix_seed, Failure, SuiteReport, Tolerance, VerifyConfig};

/// The baselines suite: run each tuner, execute its chosen schedule, and
/// compare against the dense oracle.
pub fn baselines_suite(cfg: &VerifyConfig, exec: &dyn Executor) -> SuiteReport {
    let sim = Simulator::new(MachineConfig::xeon_like());
    let tol = Tolerance::default();
    let mut executed = 0usize;
    let mut skipped = 0usize;
    let mut failures = Vec::new();

    for case in corpus::matrices(cfg.seed, cfg.budget) {
        // Baseline tuners only model the paper's four kernels; the workspace
        // kernels are covered by the dedicated `spgemm_oracle` and
        // `fusion_equivalence` suites instead.
        for kernel in cfg
            .kernels
            .iter()
            .copied()
            .filter(|&k| k != Kernel::MTTKRP && !k.uses_workspace())
        {
            let m = &case.matrix;
            let dense = dense_extent_for(kernel);
            let mut tuned: Vec<TunedResult> = Vec::new();
            let mut keep = |r: waco_sim::Result<TunedResult>| match r {
                Ok(t) => tuned.push(t),
                Err(_) => skipped += 1,
            };
            keep(fixed::fixed_csr_matrix(&sim, kernel, m, dense));
            keep(best_format::best_format_matrix(&sim, kernel, m, dense));
            if matches!(kernel, Kernel::SpMV | Kernel::SpMM) {
                keep(waco_baselines::mkl::mkl_like_matrix(&sim, kernel, m, dense));
            }
            if matches!(kernel, Kernel::SpMM | Kernel::SDDMM) {
                keep(aspt::aspt_matrix(&sim, kernel, m, dense));
            }

            let space = sim.space_for(kernel, vec![m.nrows(), m.ncols()], dense);
            let operand_seed = mix_seed(
                cfg.seed,
                &format!("baseline/{}/{}", kernel_wire_name(kernel), case.name),
            );
            let expected = matrix_oracle(kernel, m, dense, operand_seed);
            for t in tuned {
                let verdict = crate::diff::check_matrix_schedule(
                    exec,
                    kernel,
                    m,
                    &t.sched,
                    &space,
                    &expected,
                    operand_seed,
                    &tol,
                );
                match verdict {
                    Err(()) => skipped += 1,
                    Ok(None) => executed += 1,
                    Ok(Some(d)) => {
                        executed += 1;
                        failures.push(Failure {
                            suite: "baselines",
                            kernel: Some(kernel_wire_name(kernel).to_string()),
                            case_name: format!("{}/{}", t.name, case.name),
                            matrix_seed: Some(case.seed),
                            schedule_index: None,
                            schedule: Some(t.sched.describe(&space)),
                            schedule_json: Some(schedule_to_json(&t.sched)),
                            divergence: Some(d),
                            detail: format!("baseline {} chose an incorrect schedule", t.name),
                        });
                    }
                }
            }
        }
    }

    if cfg.kernels.contains(&Kernel::MTTKRP) {
        for case in corpus::tensors(cfg.seed, cfg.budget) {
            let t = &case.tensor;
            let rank = dense_extent_for(Kernel::MTTKRP);
            let mut tuned: Vec<TunedResult> = Vec::new();
            let mut keep = |r: waco_sim::Result<TunedResult>| match r {
                Ok(t) => tuned.push(t),
                Err(_) => skipped += 1,
            };
            keep(fixed::fixed_csf_tensor(&sim, t, rank));
            keep(best_format::best_format_tensor(&sim, t, rank));

            let space = sim.space_for(Kernel::MTTKRP, t.dims().to_vec(), rank);
            let operand_seed = mix_seed(cfg.seed, &format!("baseline/mttkrp/{}", case.name));
            let [d0, d1, d2] = t.dims();
            let b = dense_mat(d1, rank, operand_seed);
            let c = dense_mat(d2, rank, mix_seed(operand_seed, "c"));
            let expected = crate::oracle::mttkrp(t, &b, &c);
            for tr in tuned {
                match exec.mttkrp(t, &tr.sched, &space, &b, &c) {
                    Err(_) => skipped += 1,
                    Ok(m) => {
                        executed += 1;
                        if let Some(d) = tol.first_divergence(&[d0, rank], &expected, m.as_slice())
                        {
                            failures.push(Failure {
                                suite: "baselines",
                                kernel: Some("mttkrp".to_string()),
                                case_name: format!("{}/{}", tr.name, case.name),
                                matrix_seed: Some(case.seed),
                                schedule_index: None,
                                schedule: Some(tr.sched.describe(&space)),
                                schedule_json: Some(schedule_to_json(&tr.sched)),
                                divergence: Some(d),
                                detail: format!("baseline {} chose an incorrect schedule", tr.name),
                            });
                        }
                    }
                }
            }
        }
    }

    SuiteReport {
        name: "baselines",
        executed,
        skipped,
        failures,
    }
}
