//! The JSON report `waco-cli verify` writes into `results/`. The document
//! is self-contained for replay: it names the seed, the budget, and — for
//! every failure — the kernel, corpus case, matrix seed, schedule index,
//! the schedule itself (both human- and machine-readable), and the first
//! diverging coordinate.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use waco_serve::Json;

use crate::{Failure, SuiteReport, VerifyReport};

fn opt_str(v: &Option<String>) -> Json {
    v.as_ref().map_or(Json::Null, Json::str)
}

fn failure_json(f: &Failure) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("suite".to_string(), Json::str(f.suite));
    obj.insert("kernel".to_string(), opt_str(&f.kernel));
    obj.insert("case".to_string(), Json::str(&f.case_name));
    obj.insert(
        "matrix_seed".to_string(),
        f.matrix_seed.map_or(Json::Null, |s| Json::num(s as f64)),
    );
    obj.insert(
        "schedule_index".to_string(),
        f.schedule_index.map_or(Json::Null, |i| Json::num(i as f64)),
    );
    obj.insert("schedule".to_string(), opt_str(&f.schedule));
    obj.insert(
        "schedule_json".to_string(),
        f.schedule_json.clone().unwrap_or(Json::Null),
    );
    obj.insert(
        "divergence".to_string(),
        f.divergence.as_ref().map_or(Json::Null, |d| {
            Json::obj([
                (
                    "coord",
                    Json::Arr(d.coord.iter().map(|&c| Json::num(c as f64)).collect()),
                ),
                ("expected", Json::num(d.expected)),
                ("actual", Json::num(d.actual)),
            ])
        }),
    );
    obj.insert("detail".to_string(), Json::str(&f.detail));
    Json::Obj(obj)
}

fn suite_json(s: &SuiteReport) -> Json {
    Json::obj([
        ("name", Json::str(s.name)),
        ("executed", Json::num(s.executed as f64)),
        ("skipped", Json::num(s.skipped as f64)),
        (
            "failures",
            Json::Arr(s.failures.iter().map(failure_json).collect()),
        ),
    ])
}

/// The whole report as a JSON document.
pub fn to_json(report: &VerifyReport) -> Json {
    Json::obj([
        ("seed", Json::num(report.seed as f64)),
        ("budget", Json::str(report.budget.name())),
        ("passed", Json::Bool(report.passed())),
        ("total_failures", Json::num(report.total_failures() as f64)),
        (
            "suites",
            Json::Arr(report.suites.iter().map(suite_json).collect()),
        ),
    ])
}

/// Serializes the report to `path`, creating parent directories.
///
/// # Errors
///
/// Filesystem errors.
pub fn write_report(report: &VerifyReport, path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, to_json(report).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, Divergence};

    #[test]
    fn report_json_roundtrips_the_failure_fields() {
        let report = VerifyReport {
            seed: 42,
            budget: Budget::Smoke,
            suites: vec![SuiteReport {
                name: "differential",
                executed: 10,
                skipped: 2,
                failures: vec![Failure {
                    suite: "differential",
                    kernel: Some("spmv".into()),
                    case_name: "banded".into(),
                    matrix_seed: Some(7),
                    schedule_index: Some(3),
                    schedule: Some("i0,i1,k".into()),
                    schedule_json: Some(Json::str("stub")),
                    divergence: Some(Divergence {
                        coord: vec![1, 2],
                        expected: 1.0,
                        actual: 2.0,
                    }),
                    detail: "shrunk to 1 entries".into(),
                }],
            }],
        };
        let text = to_json(&report).to_string();
        let parsed = Json::parse(&text).expect("report text parses back");
        assert_eq!(parsed.get("seed").and_then(Json::as_u64), Some(42));
        assert_eq!(parsed.get("budget").and_then(Json::as_str), Some("smoke"));
        assert_eq!(parsed.get("passed").and_then(Json::as_bool), Some(false));
        let suites = parsed.get("suites").and_then(Json::as_arr).unwrap();
        let fails = suites[0].get("failures").and_then(Json::as_arr).unwrap();
        let f = &fails[0];
        assert_eq!(f.get("kernel").and_then(Json::as_str), Some("spmv"));
        assert_eq!(f.get("matrix_seed").and_then(Json::as_u64), Some(7));
        assert_eq!(f.get("schedule_index").and_then(Json::as_u64), Some(3));
        let d = f.get("divergence").unwrap();
        assert_eq!(
            d.get("coord").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn write_report_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("waco-verify-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/verify_report.json");
        let report = VerifyReport {
            seed: 1,
            budget: Budget::Smoke,
            suites: vec![],
        };
        write_report(&report, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).unwrap().get("passed").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
