//! Metamorphic relations: properties that must hold between two executions
//! of the *same backend*, with no oracle in the loop. They catch bugs the
//! differential suite can miss when oracle and kernel would err together
//! (e.g. a shared misreading of the kernel's index expression).
//!
//! * **Permutation invariance** — permuting A's rows/columns and the dense
//!   operands consistently permutes the output: `y'[i] = y[p[i]]` for
//!   `A'[i][j] = A[p[i]][q[j]]`, `x'[j] = x[q[j]]`.
//! * **Scaling linearity** — scaling every stored value of the sparse
//!   operand by `α = 0.375` (an exact binary fraction, so `f32`
//!   multiplication is exact) scales every output by `α`.
//! * **SpMM collapse** — an SpMM with a single dense column computes
//!   exactly SpMV: column 0 of the SpMM result equals the SpMV result on
//!   the same matrix with the matching vector.
//!
//! Every relation runs across a seeded stream of schedules, because the
//! point is that *schedules* must not break these algebraic identities.

use waco_exec::ExecError;
use waco_schedule::{Kernel, ScheduleSampler, Space, SuperSchedule};
use waco_serve::cache::schedule_to_json;
use waco_tensor::gen::Rng64;
use waco_tensor::{CooMatrix, CooTensor3, Value};

use crate::corpus::{self, MatrixCase};
use crate::diff::{dense_extent_for, dense_mat, dense_vec, Executor};
use crate::{
    kernel_wire_name, mix_seed, Divergence, Failure, SuiteReport, Tolerance, VerifyConfig,
};

/// The exact-in-`f32` scale factor used by the linearity relation.
const ALPHA: Value = 0.375;

struct Ctx<'a> {
    cfg: &'a VerifyConfig,
    exec: &'a dyn Executor,
    tol: Tolerance,
    executed: usize,
    skipped: usize,
    failures: Vec<Failure>,
}

/// `(base output, scaled output, shape)` from one linearity check.
type ScaledPair = Result<(Vec<Value>, Vec<Value>, Vec<usize>), ExecError>;

impl Ctx<'_> {
    #[allow(clippy::too_many_arguments)]
    fn fail(
        &mut self,
        relation: &str,
        kernel: Kernel,
        case: &MatrixCase,
        index: usize,
        sched: &SuperSchedule,
        space: &Space,
        divergence: Divergence,
    ) {
        self.failures.push(Failure {
            suite: "metamorphic",
            kernel: Some(kernel_wire_name(kernel).to_string()),
            case_name: format!("{relation}/{}", case.name),
            matrix_seed: Some(case.seed),
            schedule_index: Some(index),
            schedule: Some(sched.describe(space)),
            schedule_json: Some(schedule_to_json(sched)),
            divergence: Some(divergence),
            detail: format!("{relation} relation violated"),
        });
    }

    fn schedules(&self, space: &Space, salt: &str) -> Vec<SuperSchedule> {
        ScheduleSampler::new(space, mix_seed(self.cfg.seed, salt))
            .take_schedules(self.cfg.budget.metamorphic_schedules())
    }
}

fn permuted_matrix(m: &CooMatrix, p: &[usize], q: &[usize]) -> CooMatrix {
    // `p[i]` names the source row landing at row `i`, so entries move
    // through the inverse maps.
    let mut p_inv = vec![0usize; p.len()];
    let mut q_inv = vec![0usize; q.len()];
    for (i, &src) in p.iter().enumerate() {
        p_inv[src] = i;
    }
    for (j, &src) in q.iter().enumerate() {
        q_inv[src] = j;
    }
    CooMatrix::from_triplets(
        m.nrows(),
        m.ncols(),
        m.iter().map(|(r, c, v)| (p_inv[r], q_inv[c], v)),
    )
    .expect("permutation keeps entries in bounds")
}

fn permutation(n: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut p);
    p
}

/// Permutation invariance for SpMV.
fn perm_invariance(ctx: &mut Ctx<'_>, case: &MatrixCase) {
    let m = &case.matrix;
    let space = Space::new(Kernel::SpMV, vec![m.nrows(), m.ncols()], 0);
    let salt = format!("meta/perm/{}", case.name);
    let mut rng = Rng64::seed_from(mix_seed(ctx.cfg.seed, &format!("{salt}/p")));
    let p = permutation(m.nrows(), &mut rng);
    let q = permutation(m.ncols(), &mut rng);
    let mp = permuted_matrix(m, &p, &q);
    let x = dense_vec(m.ncols(), mix_seed(ctx.cfg.seed, &format!("{salt}/x")));
    let xp = waco_tensor::DenseVector::from_fn(m.ncols(), |j| x.as_slice()[q[j]]);

    for (index, sched) in ctx.schedules(&space, &salt).iter().enumerate() {
        let (y, yp) = match (
            ctx.exec.spmv(m, sched, &space, &x),
            ctx.exec.spmv(&mp, sched, &space, &xp),
        ) {
            (Ok(y), Ok(yp)) => (y, yp),
            (Err(ExecError::Format(_)), _) | (_, Err(ExecError::Format(_))) => {
                ctx.skipped += 1;
                continue;
            }
            (Err(e), _) | (_, Err(e)) => panic!("unexpected executor error: {e}"),
        };
        ctx.executed += 1;
        let expected: Vec<f64> = p.iter().map(|&src| f64::from(y.as_slice()[src])).collect();
        if let Some(d) = ctx
            .tol
            .first_divergence(&[m.nrows()], &expected, yp.as_slice())
        {
            let sched = sched.clone();
            ctx.fail(
                "perm-invariance",
                Kernel::SpMV,
                case,
                index,
                &sched,
                &space,
                d,
            );
        }
    }
}

/// Scaling linearity for the three matrix kernels.
fn scaling_matrix(ctx: &mut Ctx<'_>, kernel: Kernel, case: &MatrixCase) {
    let m = &case.matrix;
    let scaled = CooMatrix::from_triplets(
        m.nrows(),
        m.ncols(),
        m.iter().map(|(r, c, v)| (r, c, v * ALPHA)),
    )
    .expect("scaling keeps entries in bounds");
    let dense = dense_extent_for(kernel);
    let space = Space::new(kernel, vec![m.nrows(), m.ncols()], dense);
    let salt = format!("meta/scale/{}/{}", kernel_wire_name(kernel), case.name);
    let seed = mix_seed(ctx.cfg.seed, &format!("{salt}/operands"));

    for (index, sched) in ctx.schedules(&space, &salt).iter().enumerate() {
        let pair: ScaledPair = match kernel {
            Kernel::SpMV => {
                let x = dense_vec(m.ncols(), seed);
                ctx.exec.spmv(m, sched, &space, &x).and_then(|y| {
                    ctx.exec.spmv(&scaled, sched, &space, &x).map(|ys| {
                        (
                            y.as_slice().to_vec(),
                            ys.as_slice().to_vec(),
                            vec![m.nrows()],
                        )
                    })
                })
            }
            Kernel::SpMM => {
                let b = dense_mat(m.ncols(), dense, seed);
                ctx.exec.spmm(m, sched, &space, &b).and_then(|c| {
                    ctx.exec.spmm(&scaled, sched, &space, &b).map(|cs| {
                        (
                            c.as_slice().to_vec(),
                            cs.as_slice().to_vec(),
                            vec![m.nrows(), dense],
                        )
                    })
                })
            }
            Kernel::SDDMM => {
                let b = dense_mat(m.nrows(), dense, seed);
                let c = dense_mat(dense, m.ncols(), mix_seed(seed, "c"));
                ctx.exec.sddmm(m, sched, &space, &b, &c).and_then(|d| {
                    ctx.exec.sddmm(&scaled, sched, &space, &b, &c).map(|ds| {
                        (
                            d.to_dense().as_slice().to_vec(),
                            ds.to_dense().as_slice().to_vec(),
                            vec![m.nrows(), m.ncols()],
                        )
                    })
                })
            }
            _ => unreachable!("matrix scaling path only sees SpMV/SpMM/SDDMM"),
        };
        let (base, scaled_out, shape) = match pair {
            Ok(t) => t,
            Err(ExecError::Format(_)) => {
                ctx.skipped += 1;
                continue;
            }
            Err(e) => panic!("unexpected executor error: {e}"),
        };
        ctx.executed += 1;
        let expected: Vec<f64> = base
            .iter()
            .map(|&v| f64::from(v) * f64::from(ALPHA))
            .collect();
        if let Some(d) = ctx.tol.first_divergence(&shape, &expected, &scaled_out) {
            let sched = sched.clone();
            ctx.fail("scaling", kernel, case, index, &sched, &space, d);
        }
    }
}

/// Scaling linearity for MTTKRP.
fn scaling_tensor(ctx: &mut Ctx<'_>, case: &corpus::TensorCase) {
    let t = &case.tensor;
    let scaled =
        CooTensor3::from_quads(t.dims(), t.iter().map(|(i, k, l, v)| (i, k, l, v * ALPHA)))
            .expect("scaling keeps entries in bounds");
    let rank = dense_extent_for(Kernel::MTTKRP);
    let space = Space::new(Kernel::MTTKRP, t.dims().to_vec(), rank);
    let salt = format!("meta/scale/mttkrp/{}", case.name);
    let seed = mix_seed(ctx.cfg.seed, &format!("{salt}/operands"));
    let [d0, d1, d2] = t.dims();
    let b = dense_mat(d1, rank, seed);
    let c = dense_mat(d2, rank, mix_seed(seed, "c"));

    for (index, sched) in ctx.schedules(&space, &salt).iter().enumerate() {
        let (base, out) = match (
            ctx.exec.mttkrp(t, sched, &space, &b, &c),
            ctx.exec.mttkrp(&scaled, sched, &space, &b, &c),
        ) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(ExecError::Format(_)), _) | (_, Err(ExecError::Format(_))) => {
                ctx.skipped += 1;
                continue;
            }
            (Err(e), _) | (_, Err(e)) => panic!("unexpected executor error: {e}"),
        };
        ctx.executed += 1;
        let expected: Vec<f64> = base
            .as_slice()
            .iter()
            .map(|&v| f64::from(v) * f64::from(ALPHA))
            .collect();
        if let Some(d) = ctx
            .tol
            .first_divergence(&[d0, rank], &expected, out.as_slice())
        {
            ctx.failures.push(Failure {
                suite: "metamorphic",
                kernel: Some("mttkrp".to_string()),
                case_name: format!("scaling/{}", case.name),
                matrix_seed: Some(case.seed),
                schedule_index: Some(index),
                schedule: Some(sched.describe(&space)),
                schedule_json: Some(schedule_to_json(sched)),
                divergence: Some(d),
                detail: "scaling relation violated".to_string(),
            });
        }
    }
}

/// SpMM with one dense column must compute SpMV.
fn spmm_collapse(ctx: &mut Ctx<'_>, case: &MatrixCase) {
    let m = &case.matrix;
    let spmv_space = Space::new(Kernel::SpMV, vec![m.nrows(), m.ncols()], 0);
    let spmm_space = Space::new(Kernel::SpMM, vec![m.nrows(), m.ncols()], 1);
    let salt = format!("meta/collapse/{}", case.name);
    let seed = mix_seed(ctx.cfg.seed, &format!("{salt}/x"));
    let x = dense_vec(m.ncols(), seed);
    let b = waco_tensor::DenseMatrix::from_fn(m.ncols(), 1, |r, _| x.as_slice()[r]);
    let y = match ctx.exec.spmv(
        m,
        &waco_schedule::named::default_csr(&spmv_space),
        &spmv_space,
        &x,
    ) {
        Ok(y) => y,
        Err(_) => {
            ctx.skipped += 1;
            return;
        }
    };
    let expected: Vec<f64> = y.as_slice().iter().map(|&v| f64::from(v)).collect();

    for (index, sched) in ctx.schedules(&spmm_space, &salt).iter().enumerate() {
        let c = match ctx.exec.spmm(m, sched, &spmm_space, &b) {
            Ok(c) => c,
            Err(ExecError::Format(_)) => {
                ctx.skipped += 1;
                continue;
            }
            Err(e) => panic!("unexpected executor error: {e}"),
        };
        ctx.executed += 1;
        if let Some(d) = ctx
            .tol
            .first_divergence(&[m.nrows()], &expected, c.as_slice())
        {
            let sched = sched.clone();
            ctx.fail(
                "spmm-collapse",
                Kernel::SpMM,
                case,
                index,
                &sched,
                &spmm_space,
                d,
            );
        }
    }
}

/// The metamorphic suite over the corpus.
pub fn metamorphic_suite(cfg: &VerifyConfig, exec: &dyn Executor) -> SuiteReport {
    let mut ctx = Ctx {
        cfg,
        exec,
        tol: Tolerance::default(),
        executed: 0,
        skipped: 0,
        failures: Vec::new(),
    };
    for case in corpus::matrices(cfg.seed, cfg.budget) {
        if cfg.kernels.contains(&Kernel::SpMV) {
            perm_invariance(&mut ctx, &case);
        }
        for kernel in [Kernel::SpMV, Kernel::SpMM, Kernel::SDDMM] {
            if cfg.kernels.contains(&kernel) {
                scaling_matrix(&mut ctx, kernel, &case);
            }
        }
        if cfg.kernels.contains(&Kernel::SpMM) {
            spmm_collapse(&mut ctx, &case);
        }
    }
    if cfg.kernels.contains(&Kernel::MTTKRP) {
        for case in corpus::tensors(cfg.seed, cfg.budget) {
            scaling_tensor(&mut ctx, &case);
        }
    }
    SuiteReport {
        name: "metamorphic",
        executed: ctx.executed,
        skipped: ctx.skipped,
        failures: ctx.failures,
    }
}
