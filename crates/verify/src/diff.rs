//! The differential fuzzer: every schedule the shared sampler stream emits
//! is executed through `waco-exec` and compared against the dense oracle.
//!
//! Failures are shrunk before they are reported: the sparse operand's entry
//! list is bisected — both halves evaluated concurrently on the
//! `waco-runtime` pool — until neither half still fails, so the report
//! carries the smallest matrix the bisection could reach along with the
//! kernel, schedule index, matrix seed, and first diverging coordinate.
//! Replaying the same seed reproduces the identical failure list.

use waco_exec::{Backend, ExecError, Executor as KernelExecutor, KernelArgs};
use waco_runtime::ThreadPool;
use waco_schedule::{Kernel, ScheduleSampler, Space, SuperSchedule};
use waco_serve::cache::schedule_to_json;
use waco_tensor::gen::{self, Rng64};
use waco_tensor::{CooMatrix, CooTensor3, CsrMatrix, DenseMatrix, DenseVector, Value};

use crate::corpus::{self, MatrixCase};
use crate::{
    kernel_wire_name, mix_seed, oracle, Divergence, Failure, SuiteReport, Tolerance, VerifyConfig,
};

/// The kernel backend under test. The production implementation is
/// [`ExecBackend`]; the harness's own tests substitute a deliberately
/// broken one to prove failures are caught and reported.
pub trait Executor: Sync {
    /// Backend label for reports.
    fn name(&self) -> &'static str;
    /// SpMV: `y = A x`.
    fn spmv(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        x: &DenseVector,
    ) -> waco_exec::Result<DenseVector>;
    /// SpMM: `C = A B`.
    fn spmm(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
    ) -> waco_exec::Result<DenseMatrix>;
    /// SDDMM: `D = A ∘ (B C)`.
    fn sddmm(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
        c: &DenseMatrix,
    ) -> waco_exec::Result<CooMatrix>;
    /// MTTKRP: `M(i,j) = Σ T(i,k,l) B(k,j) C(l,j)`.
    fn mttkrp(
        &self,
        t: &CooTensor3,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
        c: &DenseMatrix,
    ) -> waco_exec::Result<DenseMatrix>;

    /// SpGEMM: `C = A B`, both operands sparse. Defaults to the production
    /// plan executor so fault-injecting backends that predate the workspace
    /// kernels keep compiling; override to inject faults here too.
    fn spgemm(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        b: &CsrMatrix,
    ) -> waco_exec::Result<CsrMatrix> {
        KernelExecutor::planned()
            .prepare(a, sched, space)?
            .run(KernelArgs::Spgemm { b })?
            .into_csr()
    }

    /// Fused SDDMM+SpMM: `E = (A ∘ (B C)) F`. Defaults like
    /// [`Executor::spgemm`].
    fn sddmm_spmm(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
        c: &DenseMatrix,
        f: &DenseMatrix,
    ) -> waco_exec::Result<DenseMatrix> {
        KernelExecutor::planned()
            .prepare(a, sched, space)?
            .run(KernelArgs::SddmmSpmm { b, c, f })?
            .into_matrix()
    }
}

/// A backend delegating to the unified [`KernelExecutor`] API on a chosen
/// engine. [`ExecBackend`] is the production plan executor (including the
/// monomorphized fast-path tier); [`InterpreterBackend`] is the dynamic
/// [`waco_exec::LoopNest`] reference that re-decides every traversal per
/// walk. Running the fuzzer with both checks each engine against the oracle
/// independently (the `plan` suite then checks them against *each other*,
/// bit for bit).
pub struct ApiBackend {
    name: &'static str,
    backend: Backend,
}

/// The production backend: `waco-exec`'s plan executor.
#[allow(non_upper_case_globals)]
pub const ExecBackend: ApiBackend = ApiBackend {
    name: "waco-exec",
    backend: Backend::Plan,
};

/// The dynamic reference interpreter as an injectable backend.
#[allow(non_upper_case_globals)]
pub const InterpreterBackend: ApiBackend = ApiBackend {
    name: "waco-exec-interpreter",
    backend: Backend::Interpreter,
};

impl Executor for ApiBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn spmv(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        x: &DenseVector,
    ) -> waco_exec::Result<DenseVector> {
        KernelExecutor::new(self.backend)
            .prepare(a, sched, space)?
            .run(KernelArgs::Spmv { x })?
            .into_vector()
    }

    fn spmm(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
    ) -> waco_exec::Result<DenseMatrix> {
        KernelExecutor::new(self.backend)
            .prepare(a, sched, space)?
            .run(KernelArgs::Spmm { b })?
            .into_matrix()
    }

    fn sddmm(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
        c: &DenseMatrix,
    ) -> waco_exec::Result<CooMatrix> {
        KernelExecutor::new(self.backend)
            .prepare(a, sched, space)?
            .run(KernelArgs::Sddmm { b, c })?
            .into_sparse()
    }

    fn mttkrp(
        &self,
        t: &CooTensor3,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
        c: &DenseMatrix,
    ) -> waco_exec::Result<DenseMatrix> {
        KernelExecutor::new(self.backend)
            .prepare_tensor3(t, sched, space)?
            .run(KernelArgs::Mttkrp { b, c })?
            .into_matrix()
    }

    fn spgemm(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        b: &CsrMatrix,
    ) -> waco_exec::Result<CsrMatrix> {
        KernelExecutor::new(self.backend)
            .prepare(a, sched, space)?
            .run(KernelArgs::Spgemm { b })?
            .into_csr()
    }

    fn sddmm_spmm(
        &self,
        a: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
        b: &DenseMatrix,
        c: &DenseMatrix,
        f: &DenseMatrix,
    ) -> waco_exec::Result<DenseMatrix> {
        KernelExecutor::new(self.backend)
            .prepare(a, sched, space)?
            .run(KernelArgs::SddmmSpmm { b, c, f })?
            .into_matrix()
    }
}

/// Dense-operand extents per kernel: small but not degenerate. For SpGEMM
/// this is the second sparse operand's column count; for the fused kernel
/// it is the SDDMM inner dimension `|k|`.
pub(crate) fn dense_extent_for(kernel: Kernel) -> usize {
    match kernel {
        Kernel::SpMV => 0,
        Kernel::SpMM => 5,
        Kernel::SDDMM => 4,
        Kernel::MTTKRP => 4,
        Kernel::SpGEMM => 5,
        Kernel::SddmmSpmm => 4,
    }
}

/// Output columns of the fused kernel's trailing SpMM (`F`'s width). Not
/// part of [`Space`], so it is pinned here for the whole harness.
pub(crate) const FUSED_OUT_COLS: usize = 3;

/// Deterministic second sparse operand (for SpGEMM) derived from a seed.
pub(crate) fn sparse_operand(rows: usize, cols: usize, seed: u64) -> CooMatrix {
    let mut rng = Rng64::seed_from(seed);
    gen::uniform_random(rows, cols, 0.2, &mut rng)
}

/// Deterministic dense vector derived from a seed.
pub(crate) fn dense_vec(n: usize, seed: u64) -> DenseVector {
    let mut rng = Rng64::seed_from(seed);
    DenseVector::from_fn(n, |_| rng.value())
}

/// Deterministic dense matrix derived from a seed.
pub(crate) fn dense_mat(r: usize, c: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng64::seed_from(seed);
    DenseMatrix::from_fn(r, c, |_, _| rng.value())
}

/// Executes `sched` and compares against the precomputed oracle. `Ok(None)`
/// means agreement, `Ok(Some(d))` divergence, `Err(())` an excluded
/// (over-budget) configuration.
#[allow(clippy::result_unit_err, clippy::too_many_arguments)]
pub(crate) fn check_matrix_schedule(
    exec: &dyn Executor,
    kernel: Kernel,
    m: &CooMatrix,
    sched: &SuperSchedule,
    space: &Space,
    expected: &[f64],
    operand_seed: u64,
    tol: &Tolerance,
) -> Result<Option<Divergence>, ()> {
    let to_excluded = |e: ExecError| match e {
        ExecError::Format(_) => (),
        other => panic!("unexpected executor error: {other}"),
    };
    match kernel {
        Kernel::SpMV => {
            let x = dense_vec(m.ncols(), operand_seed);
            let y = exec.spmv(m, sched, space, &x).map_err(to_excluded)?;
            Ok(tol.first_divergence(&[m.nrows()], expected, y.as_slice()))
        }
        Kernel::SpMM => {
            let b = dense_mat(m.ncols(), space.dense_extent, operand_seed);
            let c = exec.spmm(m, sched, space, &b).map_err(to_excluded)?;
            Ok(tol.first_divergence(&[m.nrows(), space.dense_extent], expected, c.as_slice()))
        }
        Kernel::SDDMM => {
            let b = dense_mat(m.nrows(), space.dense_extent, operand_seed);
            let c = dense_mat(space.dense_extent, m.ncols(), mix_seed(operand_seed, "c"));
            let d = exec.sddmm(m, sched, space, &b, &c).map_err(to_excluded)?;
            Ok(tol.first_divergence(&[m.nrows(), m.ncols()], expected, d.to_dense().as_slice()))
        }
        Kernel::SpGEMM => {
            let b =
                CsrMatrix::from_coo(&sparse_operand(m.ncols(), space.dense_extent, operand_seed));
            let c = exec.spgemm(m, sched, space, &b).map_err(to_excluded)?;
            Ok(tol.first_divergence(
                &[m.nrows(), space.dense_extent],
                expected,
                c.to_coo().to_dense().as_slice(),
            ))
        }
        Kernel::SddmmSpmm => {
            let b = dense_mat(m.nrows(), space.dense_extent, operand_seed);
            let c = dense_mat(space.dense_extent, m.ncols(), mix_seed(operand_seed, "c"));
            let f = dense_mat(m.ncols(), FUSED_OUT_COLS, mix_seed(operand_seed, "f"));
            let e = exec
                .sddmm_spmm(m, sched, space, &b, &c, &f)
                .map_err(to_excluded)?;
            Ok(tol.first_divergence(&[m.nrows(), FUSED_OUT_COLS], expected, e.as_slice()))
        }
        Kernel::MTTKRP => unreachable!("matrix path never sees MTTKRP"),
    }
}

/// Oracle output for a matrix kernel with the deterministic operands of
/// `operand_seed`.
pub(crate) fn matrix_oracle(
    kernel: Kernel,
    m: &CooMatrix,
    dense_extent: usize,
    operand_seed: u64,
) -> Vec<f64> {
    match kernel {
        Kernel::SpMV => oracle::spmv(m, &dense_vec(m.ncols(), operand_seed)),
        Kernel::SpMM => oracle::spmm(m, &dense_mat(m.ncols(), dense_extent, operand_seed)),
        Kernel::SDDMM => oracle::sddmm(
            m,
            &dense_mat(m.nrows(), dense_extent, operand_seed),
            &dense_mat(dense_extent, m.ncols(), mix_seed(operand_seed, "c")),
        ),
        Kernel::SpGEMM => oracle::spgemm(m, &sparse_operand(m.ncols(), dense_extent, operand_seed)),
        Kernel::SddmmSpmm => oracle::sddmm_spmm(
            m,
            &dense_mat(m.nrows(), dense_extent, operand_seed),
            &dense_mat(dense_extent, m.ncols(), mix_seed(operand_seed, "c")),
            &dense_mat(m.ncols(), FUSED_OUT_COLS, mix_seed(operand_seed, "f")),
        ),
        Kernel::MTTKRP => unreachable!("matrix path never sees MTTKRP"),
    }
}

/// Entry-list bisection: finds a smaller entry set that still fails.
/// Both halves of each round are evaluated concurrently on the pool.
fn shrink_entries<E: Clone + Sync + Send>(
    entries: Vec<E>,
    divergence: Divergence,
    fails: impl Fn(&[E]) -> Option<Divergence> + Sync,
) -> (usize, Divergence) {
    let pool = ThreadPool::global();
    let mut current = entries;
    let mut best = divergence;
    while current.len() > 1 {
        let mid = current.len() / 2;
        let halves = [current[..mid].to_vec(), current[mid..].to_vec()];
        let verdicts = pool.map(&halves, 2, |h| fails(h));
        let mut advanced = false;
        for (half, verdict) in halves.into_iter().zip(verdicts) {
            if let Some(d) = verdict {
                current = half;
                best = d;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    (current.len(), best)
}

#[allow(clippy::too_many_arguments)]
fn matrix_failure(
    exec: &dyn Executor,
    kernel: Kernel,
    case: &MatrixCase,
    space: &Space,
    sched: &SuperSchedule,
    index: usize,
    divergence: Divergence,
    operand_seed: u64,
    tol: &Tolerance,
) -> Failure {
    // Shrink: bisect the entry list while the failure persists.
    let triplets: Vec<(usize, usize, Value)> = case.matrix.iter().collect();
    let (nrows, ncols) = (case.matrix.nrows(), case.matrix.ncols());
    let (shrunk_nnz, divergence) = shrink_entries(
        triplets,
        divergence,
        |subset: &[(usize, usize, Value)]| {
            let m = CooMatrix::from_triplets(nrows, ncols, subset.iter().copied())
                .expect("subset of in-bounds entries");
            let expected = matrix_oracle(kernel, &m, space.dense_extent, operand_seed);
            check_matrix_schedule(exec, kernel, &m, sched, space, &expected, operand_seed, tol)
                .ok()
                .flatten()
        },
    );
    Failure {
        suite: "differential",
        kernel: Some(kernel_wire_name(kernel).to_string()),
        case_name: case.name.clone(),
        matrix_seed: Some(case.seed),
        schedule_index: Some(index),
        schedule: Some(sched.describe(space)),
        schedule_json: Some(schedule_to_json(sched)),
        divergence: Some(divergence),
        detail: format!("shrunk to {shrunk_nnz} entries (backend {})", exec.name()),
    }
}

/// The differential suite over the whole corpus.
pub fn differential_suite(cfg: &VerifyConfig, exec: &dyn Executor) -> SuiteReport {
    let pool = ThreadPool::global();
    let threads = pool.max_participants();
    let tol = Tolerance::default();
    let per_case = cfg.budget.schedules_per_case();
    let mut executed = 0usize;
    let mut skipped = 0usize;
    let mut failures = Vec::new();

    // 2-D kernels over the matrix corpus.
    for kernel in cfg.kernels.iter().copied().filter(|&k| k != Kernel::MTTKRP) {
        for case in corpus::matrices(cfg.seed, cfg.budget) {
            let dense = dense_extent_for(kernel);
            let space = Space::new(
                kernel,
                vec![case.matrix.nrows(), case.matrix.ncols()],
                dense,
            );
            let salt = format!("diff/{}/{}", kernel_wire_name(kernel), case.name);
            let schedule_seed = mix_seed(cfg.seed, &salt);
            let operand_seed = mix_seed(cfg.seed, &format!("{salt}/operands"));
            let expected = matrix_oracle(kernel, &case.matrix, dense, operand_seed);
            let schedules = ScheduleSampler::new(&space, schedule_seed).take_schedules(per_case);

            let verdicts = pool.map(&schedules, threads, |sched| {
                check_matrix_schedule(
                    exec,
                    kernel,
                    &case.matrix,
                    sched,
                    &space,
                    &expected,
                    operand_seed,
                    &tol,
                )
            });
            for (index, (sched, verdict)) in schedules.iter().zip(verdicts).enumerate() {
                match verdict {
                    Err(()) => skipped += 1,
                    Ok(None) => executed += 1,
                    Ok(Some(d)) => {
                        executed += 1;
                        failures.push(matrix_failure(
                            exec,
                            kernel,
                            &case,
                            &space,
                            sched,
                            index,
                            d,
                            operand_seed,
                            &tol,
                        ));
                    }
                }
            }
        }
    }

    // MTTKRP over the tensor corpus.
    if cfg.kernels.contains(&Kernel::MTTKRP) {
        for case in corpus::tensors(cfg.seed, cfg.budget) {
            let rank = dense_extent_for(Kernel::MTTKRP);
            let space = Space::new(Kernel::MTTKRP, case.tensor.dims().to_vec(), rank);
            let salt = format!("diff/mttkrp/{}", case.name);
            let schedule_seed = mix_seed(cfg.seed, &salt);
            let operand_seed = mix_seed(cfg.seed, &format!("{salt}/operands"));
            let [_, d1, d2] = case.tensor.dims();
            let b = dense_mat(d1, rank, operand_seed);
            let c = dense_mat(d2, rank, mix_seed(operand_seed, "c"));
            let expected = oracle::mttkrp(&case.tensor, &b, &c);
            let schedules = ScheduleSampler::new(&space, schedule_seed).take_schedules(per_case);

            let verdicts = pool.map(&schedules, threads, |sched| {
                match exec.mttkrp(&case.tensor, sched, &space, &b, &c) {
                    Err(ExecError::Format(_)) => Err(()),
                    Err(other) => panic!("unexpected executor error: {other}"),
                    Ok(m) => Ok(tol.first_divergence(
                        &[case.tensor.dims()[0], rank],
                        &expected,
                        m.as_slice(),
                    )),
                }
            });
            for (index, (sched, verdict)) in schedules.iter().zip(verdicts).enumerate() {
                match verdict {
                    Err(()) => skipped += 1,
                    Ok(None) => executed += 1,
                    Ok(Some(divergence)) => {
                        executed += 1;
                        let quads: Vec<(usize, usize, usize, Value)> = case.tensor.iter().collect();
                        let dims = case.tensor.dims();
                        let (shrunk_nnz, divergence) = shrink_entries(
                            quads,
                            divergence,
                            |subset: &[(usize, usize, usize, Value)]| {
                                let t = CooTensor3::from_quads(dims, subset.iter().copied())
                                    .expect("subset of in-bounds entries");
                                let expected = oracle::mttkrp(&t, &b, &c);
                                match exec.mttkrp(&t, sched, &space, &b, &c) {
                                    Ok(m) => tol.first_divergence(
                                        &[dims[0], rank],
                                        &expected,
                                        m.as_slice(),
                                    ),
                                    Err(_) => None,
                                }
                            },
                        );
                        failures.push(Failure {
                            suite: "differential",
                            kernel: Some("mttkrp".to_string()),
                            case_name: case.name.clone(),
                            matrix_seed: Some(case.seed),
                            schedule_index: Some(index),
                            schedule: Some(sched.describe(&space)),
                            schedule_json: Some(schedule_to_json(sched)),
                            divergence: Some(divergence),
                            detail: format!(
                                "shrunk to {shrunk_nnz} entries (backend {})",
                                exec.name()
                            ),
                        });
                    }
                }
            }
        }
    }

    SuiteReport {
        name: "differential",
        executed,
        skipped,
        failures,
    }
}
