//! Plan-equivalence suite: the lowered [`ExecutionPlan`] executor and the
//! dynamic reference interpreter are two independent implementations of the
//! same iteration-space semantics, and this suite holds them to
//! **bit identity** — identical output bits *and* identical [`Instrument`]
//! event streams — over the whole structure corpus and the shared
//! [`ScheduleSampler`] stream, plus a pinned set of cases that force each
//! specialized [`FastPath`] variant (failing to *select* the intended
//! variant is itself a reported failure).
//!
//! This is the verify-crate half of the property (the exec crate runs a
//! fast local slice in `tests/plan_equivalence.rs`): any divergence means
//! either the static lowering resolved a loop differently than the
//! interpreter's dynamic decisions, or a monomorphized fast path changed
//! floating-point evaluation order — both are reportable bugs, not noise,
//! which is why the comparison is exact rather than tolerance-based.

use waco_exec::{
    Backend, ExecError, ExecutionPlan, Executor as KernelExecutor, FastPath, Instrument,
    KernelArgs, LoopNest, PlannedKernel,
};
use waco_format::SparseStorage;
use waco_runtime::ThreadPool;
use waco_schedule::{named, Kernel, LoopVar, ScheduleSampler, Space, SuperSchedule};
use waco_serve::cache::schedule_to_json;
use waco_tensor::gen::{self, Rng64};
use waco_tensor::{CooMatrix, CooTensor3, CsrMatrix, Value};

use crate::diff::{dense_extent_for, dense_mat, dense_vec, sparse_operand, FUSED_OUT_COLS};
use crate::{corpus, kernel_wire_name, mix_seed, Failure, SuiteReport, VerifyConfig};

/// Full event stream of one walk, compared event-for-event.
#[derive(Default, PartialEq)]
struct EventLog(Vec<Event>);

#[derive(PartialEq, Debug, Clone, Copy)]
enum Event {
    Concordant(usize, usize),
    Dense(LoopVar, usize),
    Locate(usize, usize, bool),
    Body,
}

impl Instrument for EventLog {
    fn concordant(&mut self, level: usize, children: usize) {
        self.0.push(Event::Concordant(level, children));
    }
    fn dense_loop(&mut self, var: LoopVar, extent: usize) {
        self.0.push(Event::Dense(var, extent));
    }
    fn locate(&mut self, level: usize, probes: usize, hit: bool) {
        self.0.push(Event::Locate(level, probes, hit));
    }
    fn body(&mut self) {
        self.0.push(Event::Body);
    }
}

/// First flat index where the two outputs' bits differ, as a detail string.
fn bits_mismatch(plan: &[Value], interp: &[Value]) -> Option<String> {
    if plan.len() != interp.len() {
        return Some(format!(
            "output lengths differ: plan {} vs interpreter {}",
            plan.len(),
            interp.len()
        ));
    }
    plan.iter()
        .zip(interp)
        .position(|(p, i)| p.to_bits() != i.to_bits())
        .map(|idx| {
            format!(
                "outputs differ at flat index {idx}: plan {} vs interpreter {}",
                plan[idx], interp[idx]
            )
        })
}

/// Serial full-range walks through both engines; reports the first
/// diverging event.
fn events_mismatch(plan: &ExecutionPlan, st: &SparseStorage) -> Option<String> {
    let mut ev_plan = EventLog::default();
    let mut ev_interp = EventLog::default();
    plan.walk(st, 0..plan.outer_extent(), &mut ev_plan, &mut |_, _, _| {});
    LoopNest::from_plan(plan, st).walk(0..plan.outer_extent(), &mut ev_interp, &mut |_, _, _| {});
    if ev_plan == ev_interp {
        return None;
    }
    let idx = ev_plan
        .0
        .iter()
        .zip(&ev_interp.0)
        .position(|(p, i)| p != i)
        .unwrap_or_else(|| ev_plan.0.len().min(ev_interp.0.len()));
    Some(format!(
        "event streams diverge at event {idx} (plan {} events, interpreter {}): plan {:?} vs interpreter {:?}",
        ev_plan.0.len(),
        ev_interp.0.len(),
        ev_plan.0.get(idx),
        ev_interp.0.get(idx),
    ))
}

/// Runs one prepared 2-D kernel on both backends and compares output bits,
/// then the generic walkers' event streams.
fn compare_matrix(
    kernel: Kernel,
    pk: &PlannedKernel,
    m: &CooMatrix,
    space: &Space,
    operand_seed: u64,
) -> Option<String> {
    let value_mismatch = match kernel {
        Kernel::SpMV => {
            let x = dense_vec(m.ncols(), operand_seed);
            let p = pk
                .run_on(Backend::Plan, KernelArgs::Spmv { x: &x })
                .and_then(|o| o.into_vector())
                .expect("plan runs");
            let i = pk
                .run_on(Backend::Interpreter, KernelArgs::Spmv { x: &x })
                .and_then(|o| o.into_vector())
                .expect("interpreter runs");
            bits_mismatch(p.as_slice(), i.as_slice())
        }
        Kernel::SpMM => {
            let b = dense_mat(m.ncols(), space.dense_extent, operand_seed);
            let p = pk
                .run_on(Backend::Plan, KernelArgs::Spmm { b: &b })
                .and_then(|o| o.into_matrix())
                .expect("plan runs");
            let i = pk
                .run_on(Backend::Interpreter, KernelArgs::Spmm { b: &b })
                .and_then(|o| o.into_matrix())
                .expect("interpreter runs");
            bits_mismatch(p.as_slice(), i.as_slice())
        }
        Kernel::SDDMM => {
            let b = dense_mat(m.nrows(), space.dense_extent, operand_seed);
            let c = dense_mat(space.dense_extent, m.ncols(), mix_seed(operand_seed, "c"));
            let p = pk
                .run_on(Backend::Plan, KernelArgs::Sddmm { b: &b, c: &c })
                .and_then(|o| o.into_sparse())
                .expect("plan runs");
            let i = pk
                .run_on(Backend::Interpreter, KernelArgs::Sddmm { b: &b, c: &c })
                .and_then(|o| o.into_sparse())
                .expect("interpreter runs");
            sddmm_mismatch(&p, &i)
        }
        Kernel::SpGEMM => {
            let b =
                CsrMatrix::from_coo(&sparse_operand(m.ncols(), space.dense_extent, operand_seed));
            let p = pk
                .run_on(Backend::Plan, KernelArgs::Spgemm { b: &b })
                .and_then(|o| o.into_csr())
                .expect("plan runs");
            let i = pk
                .run_on(Backend::Interpreter, KernelArgs::Spgemm { b: &b })
                .and_then(|o| o.into_csr())
                .expect("interpreter runs");
            csr_mismatch(&p, &i)
        }
        Kernel::SddmmSpmm => {
            let b = dense_mat(m.nrows(), space.dense_extent, operand_seed);
            let c = dense_mat(space.dense_extent, m.ncols(), mix_seed(operand_seed, "c"));
            let f = dense_mat(m.ncols(), FUSED_OUT_COLS, mix_seed(operand_seed, "f"));
            let p = pk
                .run_on(
                    Backend::Plan,
                    KernelArgs::SddmmSpmm {
                        b: &b,
                        c: &c,
                        f: &f,
                    },
                )
                .and_then(|o| o.into_matrix())
                .expect("plan runs");
            let i = pk
                .run_on(
                    Backend::Interpreter,
                    KernelArgs::SddmmSpmm {
                        b: &b,
                        c: &c,
                        f: &f,
                    },
                )
                .and_then(|o| o.into_matrix())
                .expect("interpreter runs");
            bits_mismatch(p.as_slice(), i.as_slice())
        }
        Kernel::MTTKRP => unreachable!("matrix path never sees MTTKRP"),
    };
    value_mismatch.or_else(|| events_mismatch(pk.plan(), pk.storage()))
}

/// Checks one (2-D kernel, matrix, schedule) point. `Err(())` = over-budget
/// configuration, legitimately excluded from the space.
#[allow(clippy::result_unit_err)]
fn check_matrix(
    kernel: Kernel,
    m: &CooMatrix,
    sched: &SuperSchedule,
    space: &Space,
    operand_seed: u64,
) -> Result<Option<String>, ()> {
    let pk = match KernelExecutor::planned().prepare(m, sched, space) {
        Ok(pk) => pk,
        Err(ExecError::Format(_)) => return Err(()),
        Err(e) => return Ok(Some(format!("lowering failed: {e}"))),
    };
    Ok(compare_matrix(kernel, &pk, m, space, operand_seed))
}

/// SDDMM outputs are sparse: compare patterns and value bits.
fn sddmm_mismatch(p: &CooMatrix, i: &CooMatrix) -> Option<String> {
    let pt: Vec<_> = p.iter().collect();
    let it: Vec<_> = i.iter().collect();
    if pt.len() != it.len() {
        return Some(format!(
            "output nnz differ: plan {} vs interpreter {}",
            pt.len(),
            it.len()
        ));
    }
    for ((pr, pc, pv), (ir, ic, iv)) in pt.iter().zip(&it) {
        if (pr, pc) != (ir, ic) {
            return Some(format!(
                "output patterns differ: plan ({pr},{pc}) vs interpreter ({ir},{ic})"
            ));
        }
        if pv.to_bits() != iv.to_bits() {
            return Some(format!(
                "output value at ({pr},{pc}) differs: plan {pv} vs interpreter {iv}"
            ));
        }
    }
    None
}

/// SpGEMM outputs are CSR: compare the compacted structure exactly, then
/// value bits slot by slot.
fn csr_mismatch(p: &CsrMatrix, i: &CsrMatrix) -> Option<String> {
    if p.row_ptr() != i.row_ptr() || p.col_idx() != i.col_idx() {
        return Some(format!(
            "output CSR structure differs: plan {} nnz vs interpreter {} nnz",
            p.col_idx().len(),
            i.col_idx().len()
        ));
    }
    p.vals()
        .iter()
        .zip(i.vals())
        .position(|(pv, iv)| pv.to_bits() != iv.to_bits())
        .map(|idx| {
            format!(
                "output value at nnz slot {idx} differs: plan {} vs interpreter {}",
                p.vals()[idx],
                i.vals()[idx]
            )
        })
}

/// Checks one (MTTKRP, tensor, schedule) point.
#[allow(clippy::result_unit_err)]
fn check_tensor(
    t: &CooTensor3,
    sched: &SuperSchedule,
    space: &Space,
    operand_seed: u64,
) -> Result<Option<String>, ()> {
    let pk = match KernelExecutor::planned().prepare_tensor3(t, sched, space) {
        Ok(pk) => pk,
        Err(ExecError::Format(_)) => return Err(()),
        Err(e) => return Ok(Some(format!("lowering failed: {e}"))),
    };
    let [_, d1, d2] = t.dims();
    let rank = space.dense_extent;
    let b = dense_mat(d1, rank, operand_seed);
    let c = dense_mat(d2, rank, mix_seed(operand_seed, "c"));
    let p = pk
        .run_on(Backend::Plan, KernelArgs::Mttkrp { b: &b, c: &c })
        .and_then(|o| o.into_matrix())
        .expect("plan runs");
    let i = pk
        .run_on(Backend::Interpreter, KernelArgs::Mttkrp { b: &b, c: &c })
        .and_then(|o| o.into_matrix())
        .expect("interpreter runs");
    Ok(bits_mismatch(p.as_slice(), i.as_slice())
        .or_else(|| events_mismatch(pk.plan(), pk.storage())))
}

/// One pinned (matrix, schedule) pair that must lower to a specific
/// [`FastPath`] variant and then match the interpreter bit-for-bit.
struct ForcedCase {
    name: &'static str,
    kernel: Kernel,
    expected: FastPath,
    matrix: CooMatrix,
    sched: SuperSchedule,
    space: Space,
}

/// The forced fast-path cases: one per specialized variant, with dims that
/// are not multiples of the block/tile sizes so the padding guards run.
fn forced_fastpath_cases(seed: u64) -> Vec<ForcedCase> {
    let mut rng = Rng64::seed_from(mix_seed(seed, "plan/forced"));
    let mut cases = Vec::new();

    // Direct CSR row loop.
    {
        let space = Space::new(Kernel::SpMV, vec![53, 47], 0);
        cases.push(ForcedCase {
            name: "forced/csr_rows",
            kernel: Kernel::SpMV,
            expected: FastPath::CsrRows,
            matrix: gen::powerlaw_rows(53, 47, 5.0, 1.2, &mut rng),
            sched: named::default_csr(&space),
            space,
        });
    }

    // BCSR dense-block micro-kernel, blocks 16×16 over non-multiple dims.
    {
        let space = Space::new(Kernel::SpMV, vec![50, 50], 0);
        let mut sched = named::default_csr(&space);
        sched.splits = vec![16, 16];
        cases.push(ForcedCase {
            name: "forced/bcsr_block",
            kernel: Kernel::SpMV,
            expected: FastPath::BcsrBlock,
            matrix: gen::blocked(50, 50, 8, 10, 0.6, &mut rng),
            sched,
            space,
        });
    }

    // Register-tiled SpMM: dense extent 9 = one full tile plus remainder.
    {
        let space = Space::new(Kernel::SpMM, vec![45, 37], 9);
        cases.push(ForcedCase {
            name: "forced/reg_block_spmm",
            kernel: Kernel::SpMM,
            expected: FastPath::RegBlockSpmm,
            matrix: gen::powerlaw_rows(45, 37, 6.0, 1.3, &mut rng),
            sched: named::default_csr(&space),
            space,
        });
    }

    // Discordant column-major SpMV over row-major CSR.
    {
        let space = Space::new(Kernel::SpMV, vec![40, 33], 0);
        let mut sched = named::default_csr(&space);
        sched.parallel = None;
        sched.loop_order = vec![
            LoopVar::outer(1),
            LoopVar::outer(0),
            LoopVar::inner(0),
            LoopVar::inner(1),
        ];
        cases.push(ForcedCase {
            name: "forced/discordant_csr",
            kernel: Kernel::SpMV,
            expected: FastPath::DiscordantCsr,
            matrix: gen::powerlaw_rows(40, 33, 5.0, 1.2, &mut rng),
            sched,
            space,
        });
    }

    // Row-wise Gustavson SpGEMM: workspace as wide as the second operand.
    {
        let space = Space::new(Kernel::SpGEMM, vec![46, 39], 31);
        cases.push(ForcedCase {
            name: "forced/gustavson_spgemm",
            kernel: Kernel::SpGEMM,
            expected: FastPath::GustavsonSpgemm,
            matrix: gen::powerlaw_rows(46, 39, 5.0, 1.2, &mut rng),
            sched: named::default_csr(&space),
            space,
        });
    }

    // Fused SDDMM+SpMM: one sparse pass with a workspace-held row.
    {
        let space = Space::new(Kernel::SddmmSpmm, vec![44, 35], 6);
        cases.push(ForcedCase {
            name: "forced/fused_sddmm_spmm",
            kernel: Kernel::SddmmSpmm,
            expected: FastPath::FusedSddmmSpmm,
            matrix: gen::powerlaw_rows(44, 35, 5.0, 1.2, &mut rng),
            sched: named::default_csr(&space),
            space,
        });
    }

    cases
}

/// The plan-equivalence suite over the whole corpus. Takes no injectable
/// executor: both engines under comparison live in `waco-exec`, and the
/// property is exact equality between them rather than oracle agreement.
pub fn plan_equivalence_suite(cfg: &VerifyConfig) -> SuiteReport {
    let pool = ThreadPool::global();
    let threads = pool.max_participants();
    let per_case = cfg.budget.schedules_per_case();
    let mut executed = 0usize;
    let mut skipped = 0usize;
    let mut failures = Vec::new();

    let mut record = |kernel: Kernel,
                      case_name: &str,
                      case_seed: u64,
                      space: &Space,
                      schedules: &[SuperSchedule],
                      verdicts: Vec<Result<Option<String>, ()>>,
                      executed: &mut usize,
                      skipped: &mut usize| {
        for (index, (sched, verdict)) in schedules.iter().zip(verdicts).enumerate() {
            match verdict {
                Err(()) => *skipped += 1,
                Ok(None) => *executed += 1,
                Ok(Some(detail)) => {
                    *executed += 1;
                    failures.push(Failure {
                        suite: "plan_equivalence",
                        kernel: Some(kernel_wire_name(kernel).to_string()),
                        case_name: case_name.to_string(),
                        matrix_seed: Some(case_seed),
                        schedule_index: Some(index),
                        schedule: Some(sched.describe(space)),
                        schedule_json: Some(schedule_to_json(sched)),
                        divergence: None,
                        detail,
                    });
                }
            }
        }
    };

    for kernel in cfg.kernels.iter().copied().filter(|&k| k != Kernel::MTTKRP) {
        for case in corpus::matrices(cfg.seed, cfg.budget) {
            let dense = dense_extent_for(kernel);
            let space = Space::new(
                kernel,
                vec![case.matrix.nrows(), case.matrix.ncols()],
                dense,
            );
            let salt = format!("plan/{}/{}", kernel_wire_name(kernel), case.name);
            let schedule_seed = mix_seed(cfg.seed, &salt);
            let operand_seed = mix_seed(cfg.seed, &format!("{salt}/operands"));
            let schedules = ScheduleSampler::new(&space, schedule_seed).take_schedules(per_case);
            let verdicts = pool.map(&schedules, threads, |sched| {
                check_matrix(kernel, &case.matrix, sched, &space, operand_seed)
            });
            record(
                kernel,
                &case.name,
                case.seed,
                &space,
                &schedules,
                verdicts,
                &mut executed,
                &mut skipped,
            );
        }
    }

    if cfg.kernels.contains(&Kernel::MTTKRP) {
        for case in corpus::tensors(cfg.seed, cfg.budget) {
            let rank = dense_extent_for(Kernel::MTTKRP);
            let space = Space::new(Kernel::MTTKRP, case.tensor.dims().to_vec(), rank);
            let salt = format!("plan/mttkrp/{}", case.name);
            let schedule_seed = mix_seed(cfg.seed, &salt);
            let operand_seed = mix_seed(cfg.seed, &format!("{salt}/operands"));
            let schedules = ScheduleSampler::new(&space, schedule_seed).take_schedules(per_case);
            let verdicts = pool.map(&schedules, threads, |sched| {
                check_tensor(&case.tensor, sched, &space, operand_seed)
            });
            record(
                Kernel::MTTKRP,
                &case.name,
                case.seed,
                &space,
                &schedules,
                verdicts,
                &mut executed,
                &mut skipped,
            );
        }
    }

    // Forced fast-path cases: the tier's specialized variants must both be
    // *selected* by lowering (a fallback to the generic walker is a failure,
    // not a skip) and match the interpreter bit-for-bit.
    for case in forced_fastpath_cases(cfg.seed) {
        if !cfg.kernels.contains(&case.kernel) {
            continue;
        }
        let operand_seed = mix_seed(cfg.seed, &format!("{}/operands", case.name));
        let fail = |detail: String| Failure {
            suite: "plan_equivalence",
            kernel: Some(kernel_wire_name(case.kernel).to_string()),
            case_name: case.name.to_string(),
            matrix_seed: None,
            schedule_index: None,
            schedule: Some(case.sched.describe(&case.space)),
            schedule_json: Some(schedule_to_json(&case.sched)),
            divergence: None,
            detail,
        };
        executed += 1;
        match KernelExecutor::planned().prepare(&case.matrix, &case.sched, &case.space) {
            Err(e) => failures.push(fail(format!("lowering failed: {e}"))),
            Ok(pk) => {
                if pk.plan().fast_path() != case.expected {
                    failures.push(fail(format!(
                        "expected fast path `{}`, lowering chose `{}` ({})",
                        case.expected.wire_name(),
                        pk.plan().fast_path().wire_name(),
                        pk.plan().fast_path_reason(),
                    )));
                } else if let Some(detail) =
                    compare_matrix(case.kernel, &pk, &case.matrix, &case.space, operand_seed)
                {
                    failures.push(fail(detail));
                }
            }
        }
    }

    SuiteReport {
        name: "plan_equivalence",
        executed,
        skipped,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;

    #[test]
    fn smoke_corpus_is_bit_identical() {
        let cfg = VerifyConfig {
            kernels: vec![Kernel::SpMV, Kernel::MTTKRP],
            faults: false,
            ..VerifyConfig::new(7, Budget::Smoke)
        };
        let report = plan_equivalence_suite(&cfg);
        assert!(
            report.failures.is_empty(),
            "plan must match interpreter: {:?}",
            report.failures.first().map(|f| f.to_string())
        );
        assert!(report.executed > 20, "suite actually ran checks");
    }

    #[test]
    fn forced_cases_cover_every_specialized_variant() {
        let cases = forced_fastpath_cases(7);
        for want in [
            FastPath::CsrRows,
            FastPath::BcsrBlock,
            FastPath::RegBlockSpmm,
            FastPath::DiscordantCsr,
            FastPath::GustavsonSpgemm,
            FastPath::FusedSddmmSpmm,
        ] {
            assert!(
                cases.iter().any(|c| c.expected == want),
                "no forced case for {}",
                want.wire_name()
            );
        }
    }
}
