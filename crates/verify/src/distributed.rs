//! Crash-failover drills for the distributed serve tier. The claim under
//! test is "degraded, never wrong": a router answer must be bit-identical
//! to what a single healthy shard would have said, no matter which shard
//! dies, when it dies, or how a journal sync stream is mangled.
//!
//! Drills (each on ephemeral loopback ports and scratch cache dirs):
//!
//! * **route-oracle** — a router over three live shards answers `tune`
//!   bit-for-bit like the deterministic single-node oracle, for matrices
//!   pre-selected to land on every shard; repeats are served cached.
//! * **failover-mid-tune** — the owning shard dies mid-frame (accepts the
//!   request, then closes); the router re-routes to the ring successor and
//!   the client still sees the oracle answer, never an error frame.
//! * **sync-warm-rejoin** — a joiner warmed via [`warm_from_peer`] holds a
//!   byte-identical journal and serves every decision without one tuner
//!   call.
//! * **sync-kill-mid-stream** — the sync peer drops the connection after
//!   the first batch; the stream resumes from the confirmed offset and
//!   still lands every record.
//! * **sync-corrupt-stream** — a checksum mismatch, an undecodable record,
//!   or a stalled cursor must surface a typed error and leave the joiner
//!   byte-for-byte cold (the cold-fallback contract), never panic.
//! * **restart-rejoin** — a shard restarted on its own cache dir serves
//!   its pre-crash decisions from the journal with zero tuner calls.
//!
//! The oracle is [`DeterministicTuner`]: a pure function of (matrix,
//! kernel, dense extent), so every shard — and the drill itself — can
//! compute the one correct answer independently.

use std::io::Read as _;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use waco_core::WacoError;
use waco_schedule::{named, Kernel, Space};
use waco_serve::cache::encode_payload;
use waco_serve::fingerprint::fnv1a64;
use waco_serve::protocol::{sync_response, write_frame, SyncRecord};
use waco_serve::sync::warm_from_peer;
use waco_serve::tuner::TunedOutcome;
use waco_serve::{
    Client, Decision, Fingerprint, HashRing, Json, Router, RouterConfig, ServeConfig, Server,
    Tuner, TuningCache,
};
use waco_tensor::gen::{self, Rng64};
use waco_tensor::CooMatrix;

use crate::{mix_seed, Failure, SuiteReport, VerifyConfig};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

struct Ctx {
    executed: usize,
    failures: Vec<Failure>,
}

impl Ctx {
    fn check(&mut self, case_name: &str, ok: bool, detail: impl FnOnce() -> String) {
        self.executed += 1;
        if !ok {
            self.failures.push(Failure {
                suite: "distributed",
                kernel: None,
                case_name: case_name.to_string(),
                matrix_seed: None,
                schedule_index: None,
                schedule: None,
                schedule_json: None,
                divergence: None,
                detail: detail(),
            });
        }
    }
}

fn scratch_dir(cfg: &VerifyConfig, name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "waco-verify-dist-{}-{}-{name}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating scratch dir");
    dir
}

/// The single-node oracle: what any healthy shard must answer for this
/// input. Pure in (matrix, kernel, dense extent); the timing fields are
/// fingerprint-derived so two different matrices never share a decision.
fn oracle_decision(m: &CooMatrix, kernel: Kernel, dense_extent: usize) -> Decision {
    let space = Space::new(kernel, vec![m.nrows(), m.ncols()], dense_extent);
    let fp = Fingerprint::of_matrix(m);
    Decision {
        fingerprint: fp,
        kernel,
        dense_extent,
        schedule: named::default_csr(&space),
        kernel_seconds: ((fp.lo % 997) + 1) as f64 * 1e-9,
        tuning_seconds: ((fp.hi % 997) + 1) as f64 * 1e-9,
    }
}

/// A tuner that computes [`oracle_decision`] and counts its invocations,
/// so warm-serving drills can prove the cache answered (zero calls).
struct DeterministicTuner {
    calls: Arc<AtomicUsize>,
}

impl DeterministicTuner {
    fn new() -> (Arc<AtomicUsize>, Arc<DeterministicTuner>) {
        let calls = Arc::new(AtomicUsize::new(0));
        let tuner = Arc::new(DeterministicTuner {
            calls: Arc::clone(&calls),
        });
        (calls, tuner)
    }
}

impl Tuner for DeterministicTuner {
    fn tune(
        &self,
        m: &CooMatrix,
        kernel: Kernel,
        dense_extent: usize,
    ) -> Result<TunedOutcome, WacoError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let d = oracle_decision(m, kernel, dense_extent);
        Ok(TunedOutcome {
            schedule: d.schedule,
            kernel_seconds: d.kernel_seconds,
            tuning_seconds: d.tuning_seconds,
        })
    }
}

fn start_shard(dir: &Path) -> (Arc<AtomicUsize>, Server) {
    let (calls, tuner) = DeterministicTuner::new();
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .cache_dir(dir)
        .workers(2)
        .build()
        .expect("shard config");
    let server = Server::start(config, tuner).expect("starting shard");
    (calls, server)
}

/// Deterministically finds a matrix whose fingerprint the ring routes to
/// `target`. Seeds are walked in order, so the pick replays with the run.
fn matrix_routed_to(ring: &HashRing, target: usize, seed: u64) -> CooMatrix {
    for i in 0..10_000u64 {
        let mut rng = Rng64::seed_from(seed.wrapping_add(i));
        let m = gen::banded(40 + (i % 13) as usize, 3 + (i % 5) as usize, 0.8, &mut rng);
        if m.nnz() > 0 && ring.route(Fingerprint::of_matrix(&m)) == target {
            return m;
        }
    }
    unreachable!("10k seeds never landed on shard {target}")
}

fn router_over(shards: &[std::net::SocketAddr]) -> Router {
    let mut builder = RouterConfig::builder().addr("127.0.0.1:0");
    for s in shards {
        builder = builder.shard(s.to_string());
    }
    Router::start(builder.build().expect("router config")).expect("starting router")
}

fn router_stat(stats: &Json, field: &str) -> u64 {
    stats
        .get("router")
        .and_then(|r| r.get(field))
        .and_then(Json::as_u64)
        .unwrap_or(u64::MAX)
}

/// Drill 1: routed answers are bit-identical to the oracle, on every shard.
fn route_oracle(cfg: &VerifyConfig, ctx: &mut Ctx) {
    let dirs: Vec<_> = (0..3)
        .map(|i| scratch_dir(cfg, &format!("route-{i}")))
        .collect();
    let shards: Vec<_> = dirs.iter().map(|d| start_shard(d)).collect();
    let addrs: Vec<_> = shards.iter().map(|(_, s)| s.local_addr()).collect();
    let router = router_over(&addrs);
    let ring = HashRing::new(3);
    let seed = mix_seed(cfg.seed, "distributed-route-oracle");

    let mut client =
        Client::connect(&router.local_addr().to_string(), CLIENT_TIMEOUT).expect("router client");
    // One matrix per shard: the drill exercises every ring segment.
    for target in 0..3 {
        let m = matrix_routed_to(&ring, target, seed.wrapping_add(target as u64 * 101));
        let want = oracle_decision(&m, Kernel::SpMV, 0);
        match client.tune(&m, "spmv", 0) {
            Err(e) => ctx.check("route-oracle", false, || {
                format!("tune via router for shard {target} failed: {e}")
            }),
            Ok(reply) => {
                ctx.check(
                    "route-oracle",
                    reply.decision.as_ref() == Some(&want) && !reply.cached,
                    || format!("shard {target}: routed tune diverged from the single-node oracle"),
                );
                // The repeat must come from the shard's cache, unchanged.
                match client.tune(&m, "spmv", 0) {
                    Err(e) => ctx.check("route-oracle-cached", false, || {
                        format!("cached tune via router failed: {e}")
                    }),
                    Ok(again) => ctx.check(
                        "route-oracle-cached",
                        again.decision.as_ref() == Some(&want) && again.cached,
                        || format!("shard {target}: repeat tune was not the cached oracle answer"),
                    ),
                }
            }
        }
    }
    let stats = client.stats().expect("router stats");
    ctx.check(
        "route-oracle-stats",
        router_stat(&stats, "forwarded") >= 6,
        || format!("router forwarded fewer frames than requested: {stats}"),
    );

    drop(client);
    router.begin_shutdown();
    router.wait();
    for (_, s) in shards {
        s.begin_shutdown();
        s.wait().expect("shard drain");
    }
    for d in dirs {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// Drill 2: the owning shard accepts the request, then dies mid-frame. The
/// ring successor must produce the oracle answer; the client never sees an
/// error frame.
fn failover_mid_tune(cfg: &VerifyConfig, ctx: &mut Ctx) {
    let dir = scratch_dir(cfg, "failover");
    // Shard 0 is a saboteur: it accepts one connection, reads part of the
    // request, and closes — a kill -9 as seen from the router's socket.
    let crashy = TcpListener::bind("127.0.0.1:0").expect("bind crashy shard");
    let crashy_addr = crashy.local_addr().expect("crashy addr");
    let saboteur = std::thread::spawn(move || {
        let (mut sock, _) = crashy.accept().expect("crashy accept");
        let mut buf = [0u8; 256];
        let _ = sock.read(&mut buf);
        // Drop both socket and listener: mid-frame death, then refused
        // re-dials.
    });

    let (live_calls, live) = start_shard(&dir);
    let router = router_over(&[crashy_addr, live.local_addr()]);
    let ring = HashRing::new(2);
    let seed = mix_seed(cfg.seed, "distributed-failover");
    let m = matrix_routed_to(&ring, 0, seed);
    let want = oracle_decision(&m, Kernel::SpMV, 0);

    let mut client =
        Client::connect(&router.local_addr().to_string(), CLIENT_TIMEOUT).expect("router client");
    match client.tune(&m, "spmv", 0) {
        Err(e) => ctx.check("failover-mid-tune", false, || {
            format!("tune failed instead of failing over: {e}")
        }),
        Ok(reply) => ctx.check(
            "failover-mid-tune",
            reply.decision.as_ref() == Some(&want),
            || "failover answer diverged from the single-node oracle".to_string(),
        ),
    }
    ctx.check(
        "failover-mid-tune-tuned",
        live_calls.load(Ordering::SeqCst) == 1,
        || {
            format!(
                "the surviving shard tuned {} times, wanted exactly 1",
                live_calls.load(Ordering::SeqCst)
            )
        },
    );
    let stats = client.stats().expect("router stats");
    ctx.check(
        "failover-mid-tune-stats",
        router_stat(&stats, "failover") >= 1 && router_stat(&stats, "shard_down") >= 1,
        || format!("router stats did not record the failover: {stats}"),
    );

    saboteur.join().expect("saboteur thread");
    drop(client);
    router.begin_shutdown();
    router.wait();
    live.begin_shutdown();
    live.wait().expect("shard drain");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drill 3: a peer-warmed joiner is byte-identical to the source and serves
/// everything without tuning.
fn sync_warm_rejoin(cfg: &VerifyConfig, ctx: &mut Ctx) {
    let src_dir = scratch_dir(cfg, "sync-src");
    let join_dir = scratch_dir(cfg, "sync-join");
    let seed = mix_seed(cfg.seed, "distributed-sync-warm");

    let (_, source) = start_shard(&src_dir);
    let matrices: Vec<CooMatrix> = (0..4)
        .map(|i| {
            let mut rng = Rng64::seed_from(seed.wrapping_add(i));
            gen::banded(32 + (i as usize) * 7, 4, 0.9, &mut rng)
        })
        .collect();
    {
        let mut c =
            Client::connect(&source.local_addr().to_string(), CLIENT_TIMEOUT).expect("src client");
        for m in &matrices {
            c.tune(m, "spmv", 0).expect("tuning on source shard");
        }
    }

    let joiner_journal = join_dir.join("tuning.journal");
    let joiner = TuningCache::open(&joiner_journal, 64).expect("joiner cache");
    match warm_from_peer(&source.local_addr().to_string(), CLIENT_TIMEOUT, &joiner) {
        Err(e) => ctx.check("sync-warm-rejoin", false, || format!("warm-up failed: {e}")),
        Ok(report) => ctx.check("sync-warm-rejoin", report.records == matrices.len(), || {
            format!(
                "warmed {} records, wanted {}",
                report.records,
                matrices.len()
            )
        }),
    }
    joiner.sync().expect("joiner sync");
    drop(joiner);

    source.begin_shutdown();
    source.wait().expect("source drain");

    let src_bytes = std::fs::read(src_dir.join("tuning.journal")).expect("source journal");
    let join_bytes = std::fs::read(&joiner_journal).expect("joiner journal");
    ctx.check("sync-warm-journal-bytes", src_bytes == join_bytes, || {
        format!(
            "journals differ after warm-up ({} vs {} bytes)",
            src_bytes.len(),
            join_bytes.len()
        )
    });

    // The warmed shard serves every decision with zero tuner calls.
    let (calls, warmed) = start_shard(&join_dir);
    let mut c =
        Client::connect(&warmed.local_addr().to_string(), CLIENT_TIMEOUT).expect("warmed client");
    for m in &matrices {
        let want = oracle_decision(m, Kernel::SpMV, 0);
        match c.tune(m, "spmv", 0) {
            Err(e) => ctx.check("sync-warm-serves", false, || {
                format!("warmed shard failed a tune: {e}")
            }),
            Ok(reply) => ctx.check(
                "sync-warm-serves",
                reply.decision.as_ref() == Some(&want) && reply.cached,
                || "warmed shard answer was not the cached oracle decision".to_string(),
            ),
        }
    }
    ctx.check(
        "sync-warm-no-tunes",
        calls.load(Ordering::SeqCst) == 0,
        || {
            format!(
                "warmed shard tuned {} times; the journal should have answered",
                calls.load(Ordering::SeqCst)
            )
        },
    );
    drop(c);
    warmed.begin_shutdown();
    warmed.wait().expect("warmed drain");
    let _ = std::fs::remove_dir_all(&src_dir);
    let _ = std::fs::remove_dir_all(&join_dir);
}

/// Reads one length-prefixed frame (the fake peers don't parse it — the
/// scripted replies don't depend on the request body).
fn read_frame_bytes(sock: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut prefix = [0u8; 4];
    sock.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    let mut body = vec![0u8; len];
    sock.read_exact(&mut body)?;
    Ok(body)
}

fn sync_record_for(d: &Decision) -> SyncRecord {
    let payload = encode_payload(d);
    SyncRecord {
        crc: fnv1a64(payload.as_bytes()),
        payload,
    }
}

/// Drill 4: the peer dies after the first batch; the stream resumes from
/// the confirmed offset and every record still lands.
fn sync_kill_mid_stream(cfg: &VerifyConfig, ctx: &mut Ctx) {
    let dir = scratch_dir(cfg, "sync-kill");
    let seed = mix_seed(cfg.seed, "distributed-sync-kill");
    let decisions: Vec<Decision> = (0..3)
        .map(|i| {
            let mut rng = Rng64::seed_from(seed.wrapping_add(i));
            oracle_decision(
                &gen::banded(24 + (i as usize) * 5, 3, 0.9, &mut rng),
                Kernel::SpMV,
                0,
            )
        })
        .collect();
    let records: Vec<SyncRecord> = decisions.iter().map(sync_record_for).collect();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
    let addr = listener.local_addr().expect("fake peer addr");
    let peer = {
        let records = records.clone();
        std::thread::spawn(move || {
            // Connection 1: answer the first batch, then die mid-stream.
            {
                let (mut sock, _) = listener.accept().expect("accept 1");
                let _ = read_frame_bytes(&mut sock);
                let body = sync_response(&records[..1], 1, false, records.len());
                write_frame(&mut sock, &body).expect("first batch");
                // Drop: the journal stream is cut here.
            }
            // Connection 2: the resumed stream; serve to completion.
            let (mut sock, _) = listener.accept().expect("accept 2");
            let _ = read_frame_bytes(&mut sock);
            let body = sync_response(&records[1..], records.len(), true, records.len());
            write_frame(&mut sock, &body).expect("final batch");
            // Hold the socket until the client hangs up.
            let _ = read_frame_bytes(&mut sock);
        })
    };

    let cache = TuningCache::open(dir.join("tuning.journal"), 64).expect("joiner cache");
    match warm_from_peer(&addr.to_string(), Duration::from_secs(10), &cache) {
        Err(e) => ctx.check("sync-kill-mid-stream", false, || {
            format!("resumable warm-up failed: {e}")
        }),
        Ok(report) => ctx.check(
            "sync-kill-mid-stream",
            report.records == decisions.len() && report.resumes >= 1,
            || {
                format!(
                    "warmed {} records with {} resumes; wanted {} records and >=1 resume",
                    report.records,
                    report.resumes,
                    decisions.len()
                )
            },
        ),
    }
    for d in &decisions {
        let got = cache.lookup(d.fingerprint, d.kernel, d.dense_extent);
        ctx.check("sync-kill-records", got.as_ref() == Some(d), || {
            "a record streamed across the reconnect was lost or mutated".to_string()
        });
    }
    peer.join().expect("fake peer thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drill 5: mangled sync streams. Every case must surface a typed error and
/// leave the joiner byte-for-byte cold — the cold-fallback contract.
fn sync_corrupt_stream(cfg: &VerifyConfig, ctx: &mut Ctx) {
    let seed = mix_seed(cfg.seed, "distributed-sync-corrupt");
    let good = {
        let mut rng = Rng64::seed_from(seed);
        sync_record_for(&oracle_decision(
            &gen::banded(28, 3, 0.9, &mut rng),
            Kernel::SpMV,
            0,
        ))
    };

    type Mangle = fn(&SyncRecord) -> Json;
    let cases: &[(&str, Mangle)] = &[
        ("sync-bad-checksum", |r| {
            // Payload byte flipped, checksum kept: verification must catch it.
            let mut bad = r.payload.clone().into_bytes();
            bad[0] ^= 0x20;
            let rec = SyncRecord {
                crc: r.crc,
                payload: String::from_utf8(bad).expect("still utf-8"),
            };
            sync_response(&[rec], 1, true, 1)
        }),
        ("sync-undecodable-record", |r| {
            // Checksum valid but the payload is not a decision.
            let payload = "{\"not\":\"a decision\"}".to_string();
            let rec = SyncRecord {
                crc: fnv1a64(payload.as_bytes()),
                payload,
            };
            let _ = r;
            sync_response(&[rec], 1, true, 1)
        }),
        ("sync-stalled-cursor", |_| {
            // No records, not done: a stream that can never finish.
            sync_response(&[], 0, false, 1)
        }),
    ];

    for (i, &(name, mangle)) in cases.iter().enumerate() {
        let dir = scratch_dir(cfg, &format!("sync-corrupt-{i}"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
        let addr = listener.local_addr().expect("fake peer addr");
        let body = mangle(&good);
        let peer = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().expect("accept");
            let _ = read_frame_bytes(&mut sock);
            write_frame(&mut sock, &body).expect("mangled batch");
            let _ = read_frame_bytes(&mut sock);
        });

        let journal = dir.join("tuning.journal");
        let cache = TuningCache::open(&journal, 64).expect("joiner cache");
        let cold_len = std::fs::metadata(&journal).expect("stat journal").len();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            warm_from_peer(&addr.to_string(), Duration::from_secs(10), &cache)
        }));
        match outcome {
            Err(_) => ctx.check(name, false, || "warm-up panicked".to_string()),
            Ok(Ok(_)) => ctx.check(name, false, || {
                "a mangled sync stream was accepted as a successful warm-up".to_string()
            }),
            Ok(Err(e)) => ctx.check(name, matches!(e, WacoError::Checkpoint(_)), || {
                format!("wanted a typed Checkpoint error, got: {e}")
            }),
        }
        // Cold fallback: nothing may have been committed.
        let (records, total) = cache.journal_records(0).expect("journal snapshot");
        cache.sync().expect("joiner sync");
        let len_after = std::fs::metadata(&journal).expect("stat journal").len();
        ctx.check(
            &format!("{name}-cold"),
            records.is_empty() && total == 0 && len_after == cold_len,
            || format!("joiner not cold after mangled stream ({total} records committed)"),
        );
        peer.join().expect("fake peer thread");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Drill 6: a shard restarted on its own cache dir re-joins warm.
fn restart_rejoin(cfg: &VerifyConfig, ctx: &mut Ctx) {
    let dir = scratch_dir(cfg, "restart");
    let seed = mix_seed(cfg.seed, "distributed-restart");
    let m = {
        let mut rng = Rng64::seed_from(seed);
        gen::banded(36, 4, 0.9, &mut rng)
    };
    let want = oracle_decision(&m, Kernel::SpMV, 0);

    let (_, first) = start_shard(&dir);
    {
        let mut c =
            Client::connect(&first.local_addr().to_string(), CLIENT_TIMEOUT).expect("client");
        let reply = c.tune(&m, "spmv", 0).expect("initial tune");
        ctx.check(
            "restart-rejoin-initial",
            reply.decision.as_ref() == Some(&want),
            || "initial tune diverged from the oracle".to_string(),
        );
    }
    first.begin_shutdown();
    first.wait().expect("first drain");

    let (calls, second) = start_shard(&dir);
    let mut c = Client::connect(&second.local_addr().to_string(), CLIENT_TIMEOUT).expect("client");
    match c.tune(&m, "spmv", 0) {
        Err(e) => ctx.check("restart-rejoin", false, || {
            format!("tune after restart failed: {e}")
        }),
        Ok(reply) => ctx.check(
            "restart-rejoin",
            reply.decision.as_ref() == Some(&want) && reply.cached,
            || "restarted shard did not serve the journaled decision".to_string(),
        ),
    }
    ctx.check(
        "restart-rejoin-no-tunes",
        calls.load(Ordering::SeqCst) == 0,
        || {
            format!(
                "restarted shard tuned {} times; the journal should have answered",
                calls.load(Ordering::SeqCst)
            )
        },
    );
    drop(c);
    second.begin_shutdown();
    second.wait().expect("second drain");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The distributed crash-failover drill suite.
pub fn distributed_suite(cfg: &VerifyConfig) -> SuiteReport {
    let mut ctx = Ctx {
        executed: 0,
        failures: Vec::new(),
    };
    route_oracle(cfg, &mut ctx);
    failover_mid_tune(cfg, &mut ctx);
    sync_warm_rejoin(cfg, &mut ctx);
    sync_kill_mid_stream(cfg, &mut ctx);
    sync_corrupt_stream(cfg, &mut ctx);
    restart_rejoin(cfg, &mut ctx);
    SuiteReport {
        name: "distributed",
        executed: ctx.executed,
        skipped: 0,
        failures: ctx.failures,
    }
}
