//! `waco-verify` — the repo's single correctness authority.
//!
//! WACO's premise is that every point of the SuperSchedule space is a
//! semantics-preserving reformulation of the same kernel: any (format,
//! schedule) pair the tuner emits must compute the same answer. This crate
//! checks that premise systematically instead of piecemeal:
//!
//! * [`oracle`] — naive dense `f64` oracles for SpMV/SpMM/SDDMM/MTTKRP plus
//!   the workspace kernels (SpGEMM, fused SDDMM+SpMM), and an epsilon-aware
//!   comparator reporting the first diverging coordinate.
//! * [`corpus`] — a seed-derived structure corpus (banded, blocked,
//!   power-law, empty-row, single-entry, rectangular, empty).
//! * [`diff`] — the differential fuzzer: sweeps the shared
//!   [`waco_schedule::ScheduleSampler`] stream through `waco-exec` against
//!   the oracle, shrinking failures in parallel on the `waco-runtime` pool.
//!   Runs plan-driven by default ([`diff::ExecBackend`]); the dynamic
//!   reference interpreter is injectable as [`diff::InterpreterBackend`].
//! * [`plan`] — plan equivalence: the lowered `ExecutionPlan` executor and
//!   the reference interpreter must be bit-identical (outputs *and*
//!   instrument event streams) across the corpus and sampler stream.
//! * [`metamorphic`] — permutation invariance, scalar-scaling linearity,
//!   and SpMM-with-one-column ≡ SpMV, across schedules.
//! * [`baselines`] — the `waco-baselines` tuners (FixedCSR/CSF,
//!   BestFormat, MKL-like, ASpT) run through the same comparator.
//! * [`workspace`] — the dense-temporary kernels: SpGEMM against its oracle
//!   plus the `A · I ≡ A` right-identity at bit granularity, and fused
//!   SDDMM+SpMM against both its oracle and the unfused two-kernel
//!   composition to bit identity.
//! * [`search_pruning`] — the two-stage tuner: the asymptotically-pruned
//!   search must find equal-or-better schedules than the full search over
//!   the corpus at ≥2× fewer cost-model evaluations, the pruner never
//!   empties the candidate set or drops a dominating winner, and the
//!   asymptotic bound's ordering is cross-checked against simulator event
//!   counts.
//! * [`fault`] — fault injection for `waco-serve`: torn/bit-flipped
//!   journal writes and mid-frame TCP faults must never surface a wrong
//!   tune result.
//! * [`distributed`] — crash-failover drills for the sharded tier: kill a
//!   shard mid-tune, kill a journal sync mid-stream, corrupt the stream,
//!   restart and re-join — routed answers must stay bit-identical to the
//!   single-node oracle.
//! * [`report`] — the JSON report `waco-cli verify` writes into `results/`.
//!
//! Everything is driven by one seed: a CI failure line names the seed,
//! kernel, corpus case, and schedule index, and `waco-cli verify --seed N`
//! replays it locally, bit for bit.

pub mod baselines;
pub mod corpus;
pub mod diff;
pub mod distributed;
pub mod fault;
pub mod metamorphic;
pub mod oracle;
pub mod plan;
pub mod report;
pub mod search_pruning;
pub mod workspace;

use waco_schedule::Kernel;
use waco_serve::Json;

pub use oracle::{Divergence, Tolerance};

/// How much work the harness does; the family lists are identical across
/// budgets so a nightly failure can be chased with a smoke-sized replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// CI-sized: small extents, a dozen schedules per case.
    Smoke,
    /// Nightly-sized: larger extents, a few dozen schedules per case.
    Nightly,
}

impl Budget {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Budget> {
        match s {
            "smoke" => Some(Budget::Smoke),
            "nightly" => Some(Budget::Nightly),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Budget::Smoke => "smoke",
            Budget::Nightly => "nightly",
        }
    }

    /// Schedules drawn from the sampler stream per (kernel, case).
    pub fn schedules_per_case(self) -> usize {
        match self {
            Budget::Smoke => 12,
            Budget::Nightly => 48,
        }
    }

    /// Schedules per metamorphic relation and case.
    pub fn metamorphic_schedules(self) -> usize {
        match self {
            Budget::Smoke => 4,
            Budget::Nightly => 16,
        }
    }
}

/// Harness configuration. One seed drives corpus generation, operand
/// values, and every sampler stream.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// The master seed (printed in every failure; replays the whole run).
    pub seed: u64,
    /// Work budget.
    pub budget: Budget,
    /// Kernels under test (defaults to the four paper kernels; the
    /// workspace suites always cover SpGEMM and the fused kernel).
    pub kernels: Vec<Kernel>,
    /// Whether to run the serve-layer fault-injection suite (needs a
    /// filesystem scratch directory and loopback sockets).
    pub faults: bool,
}

impl VerifyConfig {
    /// All kernels, faults on.
    pub fn new(seed: u64, budget: Budget) -> Self {
        VerifyConfig {
            seed,
            budget,
            kernels: Kernel::ALL.to_vec(),
            faults: true,
        }
    }
}

/// One confirmed check failure, carrying everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which suite found it.
    pub suite: &'static str,
    /// Kernel wire name (`spmv`/`spmm`/`sddmm`/`mttkrp`/`spgemm`/
    /// `sddmm_spmm`), when applicable.
    pub kernel: Option<String>,
    /// Corpus case / check name.
    pub case_name: String,
    /// The seed the failing operand was generated from.
    pub matrix_seed: Option<u64>,
    /// Index of the schedule in the sampler stream (replay key).
    pub schedule_index: Option<usize>,
    /// Human-readable schedule description.
    pub schedule: Option<String>,
    /// Machine-readable schedule encoding (the serve-layer JSON form).
    pub schedule_json: Option<Json>,
    /// First diverging coordinate, when the check compared values.
    pub divergence: Option<Divergence>,
    /// Free-form explanation (error text, relation name, fault detail).
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.suite, self.case_name)?;
        if let Some(k) = &self.kernel {
            write!(f, " kernel={k}")?;
        }
        if let Some(s) = self.matrix_seed {
            write!(f, " matrix_seed={s}")?;
        }
        if let Some(i) = self.schedule_index {
            write!(f, " schedule_index={i}")?;
        }
        if let Some(d) = &self.divergence {
            write!(f, " {d}")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        if let Some(s) = &self.schedule {
            write!(f, " [{s}]")?;
        }
        Ok(())
    }
}

/// One suite's outcome.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Suite name (`differential`, `plan_equivalence`, `metamorphic`,
    /// `baselines`, `spgemm_oracle`, `fusion_equivalence`,
    /// `search_pruning`, `fault`, `distributed`).
    pub name: &'static str,
    /// Checks that executed to completion.
    pub executed: usize,
    /// Checks skipped because the schedule's storage was over budget (the
    /// space legitimately excludes those points) or a baseline declined.
    pub skipped: usize,
    /// Confirmed failures.
    pub failures: Vec<Failure>,
}

/// The whole run's outcome.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The master seed (replay key).
    pub seed: u64,
    /// Budget the run used.
    pub budget: Budget,
    /// Per-suite results, in execution order.
    pub suites: Vec<SuiteReport>,
}

impl VerifyReport {
    /// Whether every suite came back clean.
    pub fn passed(&self) -> bool {
        self.suites.iter().all(|s| s.failures.is_empty())
    }

    /// Total failure count.
    pub fn total_failures(&self) -> usize {
        self.suites.iter().map(|s| s.failures.len()).sum()
    }

    /// A terminal summary: one line per suite plus one line per failure.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in &self.suites {
            out.push_str(&format!(
                "{:>12}: {} checks, {} skipped, {} failures\n",
                s.name,
                s.executed,
                s.skipped,
                s.failures.len()
            ));
            for f in &s.failures {
                out.push_str(&format!("  FAIL {f}\n"));
            }
        }
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        out.push_str(&format!(
            "{verdict} (seed {}, budget {}; replay with `waco-cli verify --seed {} --budget {}`)\n",
            self.seed,
            self.budget.name(),
            self.seed,
            self.budget.name()
        ));
        out
    }
}

/// Runs the full harness with the production `waco-exec` backend.
pub fn run(cfg: &VerifyConfig) -> VerifyReport {
    run_with_executor(cfg, &diff::ExecBackend)
}

/// Runs the full harness against an injectable executor — the hook the
/// harness's own tests use to prove a broken lowering is caught.
pub fn run_with_executor(cfg: &VerifyConfig, exec: &dyn diff::Executor) -> VerifyReport {
    let mut suites = vec![
        diff::differential_suite(cfg, exec),
        plan::plan_equivalence_suite(cfg),
        metamorphic::metamorphic_suite(cfg, exec),
        baselines::baselines_suite(cfg, exec),
        workspace::spgemm_oracle_suite(cfg, exec),
        workspace::fusion_equivalence_suite(cfg, exec),
        search_pruning::search_pruning_suite(cfg),
    ];
    if cfg.faults {
        suites.push(fault::fault_suite(cfg));
        suites.push(distributed::distributed_suite(cfg));
    }
    VerifyReport {
        seed: cfg.seed,
        budget: cfg.budget,
        suites,
    }
}

pub(crate) fn kernel_wire_name(k: Kernel) -> &'static str {
    match k {
        Kernel::SpMV => "spmv",
        Kernel::SpMM => "spmm",
        Kernel::SDDMM => "sddmm",
        Kernel::MTTKRP => "mttkrp",
        Kernel::SpGEMM => "spgemm",
        Kernel::SddmmSpmm => "sddmm_spmm",
    }
}

/// Splits one master seed into an independent stream per (suite, kernel,
/// case) so adding a case never shifts another case's randomness.
pub(crate) fn mix_seed(seed: u64, salt: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in salt.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^ h
}
