//! Search-pruning suite: the two-stage tuner (asymptotic pruning in front
//! of the learned-model ANNS traversal) must be a pure acceleration, never
//! a quality regression.
//!
//! For every kernel and every corpus structure the suite trains a tiny
//! [`Waco`] pipeline, tunes each case in [`SearchMode::Staged`] and
//! [`SearchMode::Full`], and holds the staged search to three properties:
//!
//! 1. **Equal-or-better over the corpus**: the geometric mean of the
//!    per-case time ratio staged/full never exceeds 1 — the pruned search
//!    matches or beats the unpruned one overall, the same corpus-level
//!    metric the paper reports. Per case, two hard floors apply: neither
//!    mode may ever lose to the measured default-CSR baseline (both
//!    measure it, so this is the tuner's contract), and no single case may
//!    blow past the full search by [`MAX_CASE_FACTOR`]× — a budgeted
//!    traversal may trade a few percent on one workload for a win on
//!    another, but a collapse that large means Stage 1 discarded the only
//!    good complexity class.
//! 2. **Cheaper**: aggregated over the corpus, the full search performs at
//!    least [`MIN_EVAL_RATIO`]× the cost-model evaluations of the staged
//!    search — the whole point of pruning.
//! 3. **Deterministic**: re-tuning the same workload in staged mode
//!    reproduces the same schedule and the same evaluation count.
//!
//! Alongside the end-to-end comparison, the pruner itself is property
//! tested through [`SearchPipeline`]: the survivor mask is never empty, is
//! a pure function of the workload profile, and never drops the full
//! search's winner while that winner's bound is within the kernel's
//! dominance margin ([`prune_margin`]) of the best — the condition under
//! which Stage 1 claims soundness.
//! Finally, the bound is cross-checked against the simulator: when one
//! schedule's asymptotic bound strongly dominates another's (by
//! [`DOMINANCE_FACTOR`]×), the simulator's traversal event counts must not
//! invert the ordering beyond [`EVENT_SLACK`] — the bound may be loose,
//! but it must not be *wrong* about complexity classes on real structures.

use std::collections::HashMap;

use waco_core::{prune_margin, SearchMode, SearchPipeline, Waco, WacoConfig, WacoTuned};
use waco_exec::{AsymptoticProfile, ExecutionPlan};
use waco_schedule::{Kernel, ScheduleSampler, Space, SuperSchedule};
use waco_sim::{MachineConfig, Simulator};
use waco_tensor::{gen, CooTensor3};

use crate::diff::dense_extent_for;
use crate::{corpus, kernel_wire_name, mix_seed, Failure, SuiteReport, VerifyConfig};

/// Aggregate cost-model evaluation ratio the staged search must achieve
/// over the corpus: full-mode evals ≥ this × staged-mode evals.
const MIN_EVAL_RATIO: f64 = 2.0;

/// Hard per-case ceiling on staged/full: the budgeted Stage-2 walk scores
/// ~2.5× fewer candidates than the unpruned search, so individual cases
/// may go either way (the corpus geomean is what must not regress), but a
/// loss beyond this factor is not search variance — it means the pruner
/// cut away every schedule in the winning complexity class.
const MAX_CASE_FACTOR: f64 = 8.0;

/// How much one bound must exceed another before the suite calls the pair
/// "strongly dominated" and demands the simulator agree on the ordering.
/// The gap absorbs the bound's constant-factor blindness (cache lines,
/// SIMD width, locate hit rates) — inside it the ordering is a modeling
/// judgment call, outside it an inversion means the bound derivation is
/// broken.
const DOMINANCE_FACTOR: f64 = 16.0;

/// Multiplicative slack on the simulator's event counts in the
/// cross-check, plus a small absolute allowance for near-empty structures
/// whose event counts are dominated by fixed loop overheads.
const EVENT_SLACK: f64 = 4.0;
const EVENT_SLACK_ABS: u64 = 256;

/// The tiny end-to-end config every pipeline in this suite trains with;
/// seeded per kernel so adding a kernel never shifts another's stream.
fn suite_config(seed: u64) -> WacoConfig {
    WacoConfig {
        seed,
        ..WacoConfig::tiny()
    }
}

/// One tuned staged/full pair plus the deterministic replay.
struct ModeComparison {
    staged: WacoTuned,
    full: WacoTuned,
    replay: WacoTuned,
}

/// Tunes one workload in staged, full, then staged mode again.
fn compare_modes<T>(
    waco: &mut Waco,
    tune: impl Fn(&mut Waco, &T) -> Result<WacoTuned, waco_core::WacoError>,
    workload: &T,
) -> Result<ModeComparison, waco_core::WacoError> {
    waco.set_search_mode(SearchMode::Staged);
    let staged = tune(waco, workload)?;
    waco.set_search_mode(SearchMode::Full);
    let full = tune(waco, workload)?;
    waco.set_search_mode(SearchMode::Staged);
    let replay = tune(waco, workload)?;
    Ok(ModeComparison {
        staged,
        full,
        replay,
    })
}

/// The per-case checks shared by the matrix and tensor paths. Returns
/// failure details; pushes nothing itself so callers own the bookkeeping.
fn mode_comparison_details(cmp: &ModeComparison) -> Vec<String> {
    let mut details = Vec::new();
    if cmp.full.breakdown.pruned != 0 {
        details.push(format!(
            "full search reported {} pruned candidates (must be 0)",
            cmp.full.breakdown.pruned
        ));
    }
    // Property 1, per-case floors. Both modes measure the shipped
    // default-CSR schedule and keep the fastest, so neither may ever
    // return something slower than that baseline — pruning can shave
    // model evaluations, never the tuner's contract.
    for (mode, tuned) in [("staged", &cmp.staged), ("full", &cmp.full)] {
        if tuned.result.kernel_seconds > tuned.baseline_seconds * (1.0 + 1e-9) {
            details.push(format!(
                "{mode} search lost to the default-CSR baseline: {:.3e}s vs {:.3e}s",
                tuned.result.kernel_seconds, tuned.baseline_seconds
            ));
        }
    }
    // And the catastrophic-loss ceiling: a single case may trade a little
    // (the corpus geomean guards the aggregate), but not collapse.
    if cmp.staged.result.kernel_seconds > cmp.full.result.kernel_seconds * MAX_CASE_FACTOR {
        details.push(format!(
            "pruned search collapsed: staged winner {:.3e}s vs full winner {:.3e}s \
             (beyond {MAX_CASE_FACTOR}x)",
            cmp.staged.result.kernel_seconds, cmp.full.result.kernel_seconds
        ));
    }
    // Property 3: staged tuning is a pure function of the workload.
    if cmp.replay.result.sched != cmp.staged.result.sched
        || cmp.replay.breakdown.evals != cmp.staged.breakdown.evals
        || cmp.replay.breakdown.pruned != cmp.staged.breakdown.pruned
    {
        details.push(format!(
            "staged search is not deterministic: {} evals / {} pruned, then {} evals / {} pruned",
            cmp.staged.breakdown.evals,
            cmp.staged.breakdown.pruned,
            cmp.replay.breakdown.evals,
            cmp.replay.breakdown.pruned,
        ));
    }
    details
}

/// Stage-1 soundness properties, checked directly on [`SearchPipeline`]:
/// nonempty survivors, deterministic mask, argmin retention under
/// dominance.
fn pruner_soundness_details(
    pipe: &SearchPipeline,
    index_schedules: &[SuperSchedule],
    profile: &AsymptoticProfile,
    min_keep: usize,
    margin: f64,
    full_winner: &SuperSchedule,
) -> Vec<String> {
    let mut details = Vec::new();
    let (mask, stats) = pipe.prune(profile, min_keep, margin);
    if stats.survivors == 0 || !mask.iter().any(|&a| a) {
        details.push("pruner discarded all candidates".to_string());
    }
    let (mask2, stats2) = pipe.prune(profile, min_keep, margin);
    if mask2 != mask || stats2 != stats {
        details.push("pruning is not deterministic for a fixed profile".to_string());
    }
    // Argmin retention: when the full search's measured winner is an
    // indexed candidate whose bound is within the margin (dominance
    // holds), the pruner must have kept it. A winner outside the margin
    // survives only via min-keep backfill, which this check does not
    // demand — that is the modeling-error regime property 1 covers.
    if let Some(w) = index_schedules.iter().position(|s| s == full_winner) {
        if let Some(plan) = pipe.plan(w) {
            let bound = plan.asymptotic_bound(profile).work;
            if bound <= stats.min_bound * margin && !mask[w] {
                details.push(format!(
                    "pruner discarded the full search's winner (candidate {w}, bound {bound:.3e} \
                     within margin of best {:.3e})",
                    stats.min_bound
                ));
            }
        }
    }
    details
}

/// Cross-checks the asymptotic bound against the simulator on one matrix
/// case: strongly-dominated bound pairs must not invert the simulator's
/// traversal event counts beyond slack.
fn event_ordering_details(
    sim: &Simulator,
    m: &waco_tensor::CooMatrix,
    space: &Space,
    profile: &AsymptoticProfile,
    schedules: &[SuperSchedule],
) -> Vec<String> {
    // The simulator replays the *written* (serial) loop order, while plan
    // lowering hoists the parallel loop outermost; serializing the sampled
    // schedules keeps the bound and the replay on the same nest.
    let points: Vec<(usize, f64, u64)> = schedules
        .iter()
        .enumerate()
        .filter_map(|(i, s)| {
            let serial = SuperSchedule {
                parallel: None,
                ..s.clone()
            };
            let plan = ExecutionPlan::build(&serial, space).ok()?;
            let report = sim.time_matrix(m, &serial, space).ok()?;
            Some((i, plan.asymptotic_bound(profile).work, report.events))
        })
        .collect();
    let mut details = Vec::new();
    for &(ia, ba, ea) in &points {
        for &(ib, bb, eb) in &points {
            let dominated = ba.is_finite() && ba * DOMINANCE_FACTOR <= bb;
            let allowance = (eb as f64 * EVENT_SLACK) as u64 + EVENT_SLACK_ABS;
            if dominated && ea > allowance {
                details.push(format!(
                    "bound ordering inverted: schedule {ia} (bound {ba:.3e}) ran {ea} simulator \
                     events vs schedule {ib} (bound {bb:.3e}, {DOMINANCE_FACTOR}x dominated) at {eb}"
                ));
            }
        }
    }
    details
}

/// The full search-pruning suite. Always covers the workspace kernels in
/// addition to the configured 2-D kernels (same policy as the workspace
/// suites); MTTKRP runs when configured, through the tensor corpus.
/// The log of one case's staged/full time ratio, for the corpus geomean.
/// Simulated times are strictly positive, but guard the degenerate zero so
/// a pathological case cannot poison the aggregate with a NaN.
fn case_ln_ratio(cmp: &ModeComparison) -> f64 {
    let s = cmp.staged.result.kernel_seconds.max(f64::MIN_POSITIVE);
    let f = cmp.full.result.kernel_seconds.max(f64::MIN_POSITIVE);
    (s / f).ln()
}

pub fn search_pruning_suite(cfg: &VerifyConfig) -> SuiteReport {
    let mut executed = 0usize;
    let mut skipped = 0usize;
    let mut failures: Vec<Failure> = Vec::new();
    let mut evals_full = 0u64;
    let mut evals_staged = 0u64;
    let mut ln_ratios: Vec<f64> = Vec::new();

    let mut kernels: Vec<Kernel> = cfg
        .kernels
        .iter()
        .copied()
        .filter(|&k| k != Kernel::MTTKRP)
        .chain(Kernel::WORKSPACE.iter().copied())
        .collect();
    kernels.dedup();

    for kernel in kernels {
        let wire = kernel_wire_name(kernel);
        let sim = Simulator::new(MachineConfig::xeon_like());
        let dense = dense_extent_for(kernel);
        let wcfg = suite_config(mix_seed(cfg.seed, &format!("prune/train/{wire}")));
        let train_corpus = gen::corpus(3, 24, wcfg.seed);
        let topk = wcfg.topk;
        let mut waco = match Waco::train_2d(sim, kernel, &train_corpus, dense, wcfg) {
            Ok((waco, _)) => waco,
            Err(e) => {
                failures.push(Failure {
                    suite: "search_pruning",
                    kernel: Some(wire.to_string()),
                    case_name: "train".to_string(),
                    matrix_seed: None,
                    schedule_index: None,
                    schedule: None,
                    schedule_json: None,
                    divergence: None,
                    detail: format!("training failed: {e}"),
                });
                continue;
            }
        };
        // Stage-1 state is per shape; cache pipelines the same way the
        // tuner does so a 7-case corpus lowers each index once.
        let mut pipelines: HashMap<Vec<usize>, SearchPipeline> = HashMap::new();

        for case in corpus::matrices(cfg.seed, cfg.budget) {
            let fail = |detail: String| Failure {
                suite: "search_pruning",
                kernel: Some(wire.to_string()),
                case_name: case.name.clone(),
                matrix_seed: Some(case.seed),
                schedule_index: None,
                schedule: None,
                schedule_json: None,
                divergence: None,
                detail,
            };
            let cmp = match compare_modes(&mut waco, |w, m| w.tune_matrix(m), &case.matrix) {
                Ok(cmp) => cmp,
                Err(e) => {
                    executed += 1;
                    failures.push(fail(format!("tuning failed: {e}")));
                    continue;
                }
            };
            executed += 1;
            evals_staged += cmp.staged.breakdown.evals as u64;
            evals_full += cmp.full.breakdown.evals as u64;
            ln_ratios.push(case_ln_ratio(&cmp));
            for detail in mode_comparison_details(&cmp) {
                failures.push(fail(detail));
            }

            let space = waco.space_for_matrix(&case.matrix);
            let profile = AsymptoticProfile::from_matrix(&case.matrix);
            let key = vec![case.matrix.nrows(), case.matrix.ncols()];
            if !pipelines.contains_key(&key) {
                let pipe = SearchPipeline::new(waco.index(&space));
                pipelines.insert(key.clone(), pipe);
            }
            let pipe = &pipelines[&key];
            let index_schedules = waco.index(&space).schedules.clone();
            executed += 1;
            for detail in pruner_soundness_details(
                pipe,
                &index_schedules,
                &profile,
                topk,
                prune_margin(kernel),
                &cmp.full.result.sched,
            ) {
                failures.push(fail(detail));
            }

            // Simulator cross-check over the shared sampler stream. An
            // empty pattern has no sparse traversal to order, so it is
            // counted as skipped rather than silently passing.
            if case.matrix.nnz() == 0 {
                skipped += 1;
            } else {
                let sweep_seed = mix_seed(cfg.seed, &format!("prune/sweep/{wire}/{}", case.name));
                let schedules = ScheduleSampler::new(&space, sweep_seed)
                    .take_schedules(cfg.budget.metamorphic_schedules());
                executed += 1;
                for detail in
                    event_ordering_details(&waco.sim, &case.matrix, &space, &profile, &schedules)
                {
                    failures.push(fail(detail));
                }
            }
        }
    }

    if cfg.kernels.contains(&Kernel::MTTKRP) {
        let wcfg = suite_config(mix_seed(cfg.seed, "prune/train/mttkrp"));
        let rank = dense_extent_for(Kernel::MTTKRP);
        let mut rng = gen::Rng64::seed_from(wcfg.seed);
        let train_corpus: Vec<(String, CooTensor3)> = (0..3)
            .map(|i| {
                (
                    format!("train3-{i}"),
                    gen::random_tensor3([12, 12, 12], 100, &mut rng),
                )
            })
            .collect();
        let sim = Simulator::new(MachineConfig::xeon_like());
        let topk = wcfg.topk;
        match Waco::train_3d(sim, &train_corpus, rank, wcfg) {
            Err(e) => failures.push(Failure {
                suite: "search_pruning",
                kernel: Some("mttkrp".to_string()),
                case_name: "train".to_string(),
                matrix_seed: None,
                schedule_index: None,
                schedule: None,
                schedule_json: None,
                divergence: None,
                detail: format!("training failed: {e}"),
            }),
            Ok((mut waco, _)) => {
                let mut pipelines: HashMap<Vec<usize>, SearchPipeline> = HashMap::new();
                for case in corpus::tensors(cfg.seed, cfg.budget) {
                    let fail = |detail: String| Failure {
                        suite: "search_pruning",
                        kernel: Some("mttkrp".to_string()),
                        case_name: case.name.clone(),
                        matrix_seed: Some(case.seed),
                        schedule_index: None,
                        schedule: None,
                        schedule_json: None,
                        divergence: None,
                        detail,
                    };
                    let cmp =
                        match compare_modes(&mut waco, |w, t| w.tune_tensor3(t), &case.tensor) {
                            Ok(cmp) => cmp,
                            Err(e) => {
                                executed += 1;
                                failures.push(fail(format!("tuning failed: {e}")));
                                continue;
                            }
                        };
                    executed += 1;
                    evals_staged += cmp.staged.breakdown.evals as u64;
                    evals_full += cmp.full.breakdown.evals as u64;
                    ln_ratios.push(case_ln_ratio(&cmp));
                    for detail in mode_comparison_details(&cmp) {
                        failures.push(fail(detail));
                    }

                    let space = waco
                        .sim
                        .space_for(Kernel::MTTKRP, case.tensor.dims().to_vec(), rank);
                    let profile = AsymptoticProfile::from_tensor3(&case.tensor);
                    let key = case.tensor.dims().to_vec();
                    if !pipelines.contains_key(&key) {
                        let pipe = SearchPipeline::new(waco.index(&space));
                        pipelines.insert(key.clone(), pipe);
                    }
                    let pipe = &pipelines[&key];
                    let index_schedules = waco.index(&space).schedules.clone();
                    executed += 1;
                    for detail in pruner_soundness_details(
                        pipe,
                        &index_schedules,
                        &profile,
                        topk,
                        prune_margin(Kernel::MTTKRP),
                        &cmp.full.result.sched,
                    ) {
                        failures.push(fail(detail));
                    }
                }
            }
        }
    }

    // Property 1, aggregate: the corpus geomean of staged/full must not
    // regress. Individual cases may trade either way under the Stage-2
    // budget; overall, pruning must be a pure acceleration.
    executed += 1;
    if !ln_ratios.is_empty() {
        let geomean = (ln_ratios.iter().sum::<f64>() / ln_ratios.len() as f64).exp();
        if geomean > 1.0 + 1e-9 {
            failures.push(Failure {
                suite: "search_pruning",
                kernel: None,
                case_name: "aggregate/geomean".to_string(),
                matrix_seed: None,
                schedule_index: None,
                schedule: None,
                schedule_json: None,
                divergence: None,
                detail: format!(
                    "pruned search regressed over the corpus: geomean staged/full = {geomean:.4} \
                     across {} cases (must be <= 1)",
                    ln_ratios.len()
                ),
            });
        }
    }

    // Property 2: the aggregate evaluation-count ratio, the suite's whole
    // reason to exist. One check, corpus-wide, so a single easy case
    // cannot hide a pruner that stopped pruning elsewhere.
    executed += 1;
    let ratio = evals_full as f64 / (evals_staged.max(1)) as f64;
    if ratio < MIN_EVAL_RATIO {
        failures.push(Failure {
            suite: "search_pruning",
            kernel: None,
            case_name: "aggregate/evals_ratio".to_string(),
            matrix_seed: None,
            schedule_index: None,
            schedule: None,
            schedule_json: None,
            divergence: None,
            detail: format!(
                "full search made {evals_full} cost-model evaluations vs staged {evals_staged} \
                 — ratio {ratio:.2} below required {MIN_EVAL_RATIO:.1}"
            ),
        });
    }

    SuiteReport {
        name: "search_pruning",
        executed,
        skipped,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;

    #[test]
    fn smoke_corpus_prunes_soundly() {
        let cfg = VerifyConfig {
            kernels: vec![Kernel::SpMV, Kernel::MTTKRP],
            faults: false,
            ..VerifyConfig::new(7, Budget::Smoke)
        };
        let report = search_pruning_suite(&cfg);
        assert!(
            report.failures.is_empty(),
            "pruned search must be equal-or-better and >=2x cheaper: {:?}",
            report.failures.first().map(|f| f.to_string())
        );
        assert!(report.executed > 10, "suite actually ran checks");
        assert!(report.skipped >= 1, "the empty pattern skips the sim sweep");
    }
}
