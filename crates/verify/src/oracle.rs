//! Naive dense oracles and the epsilon-aware comparator.
//!
//! Each oracle materializes the sparse operand densely and evaluates the
//! kernel's index expression with `f64` accumulators in a fixed row-major
//! loop nest — no format machinery, no co-iteration, no schedule. That
//! independence is the point: an oracle result and a `waco-exec` result can
//! only agree by both being correct.
//!
//! ## Epsilon policy
//!
//! Kernels execute in `f32` (`Value`) and a schedule is free to reassociate
//! every reduction, so bitwise equality is not the contract — closeness is:
//! `|expected - actual| <= abs + rel * max(|expected|, |actual|)`. The
//! defaults (`abs = rel = 1e-3`) match the tolerance the exec kernel tests
//! have always used for the corpus value range of `[-1, 1)` and row
//! reductions of tens of terms. The comparator scans in row-major order and
//! reports the *first* diverging coordinate, which keeps failure reports
//! stable across runs of the same seed.

use waco_tensor::{CooMatrix, CooTensor3, DenseMatrix, DenseVector, Value};

/// Comparator tolerance: `abs + rel * magnitude`.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Absolute slack.
    pub abs: f64,
    /// Relative slack, scaled by the larger magnitude of the pair.
    pub rel: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            abs: 1e-3,
            rel: 1e-3,
        }
    }
}

/// The first coordinate at which an execution left the oracle's tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Multi-dimensional coordinate (row-major scan order).
    pub coord: Vec<usize>,
    /// Oracle value at the coordinate.
    pub expected: f64,
    /// Executed value at the coordinate.
    pub actual: f64,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "at {:?}: expected {}, got {}",
            self.coord, self.expected, self.actual
        )
    }
}

impl Tolerance {
    /// Whether two values agree under this tolerance.
    pub fn close(&self, expected: f64, actual: f64) -> bool {
        (expected - actual).abs() <= self.abs + self.rel * expected.abs().max(actual.abs())
    }

    /// Scans `expected` against `actual` in row-major order over `shape`
    /// and returns the first diverging coordinate, if any.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree with each other or with `shape` — that
    /// is a harness bug, not a kernel divergence.
    pub fn first_divergence(
        &self,
        shape: &[usize],
        expected: &[f64],
        actual: &[Value],
    ) -> Option<Divergence> {
        assert_eq!(expected.len(), actual.len(), "comparator length mismatch");
        assert_eq!(
            expected.len(),
            shape.iter().product::<usize>(),
            "shape does not cover the buffers"
        );
        for (i, (&e, &a)) in expected.iter().zip(actual.iter()).enumerate() {
            let a = f64::from(a);
            if !self.close(e, a) {
                return Some(Divergence {
                    coord: unflatten(shape, i),
                    expected: e,
                    actual: a,
                });
            }
        }
        None
    }
}

/// Row-major flat index → multi-dimensional coordinate.
pub fn unflatten(shape: &[usize], mut flat: usize) -> Vec<usize> {
    let mut coord = vec![0usize; shape.len()];
    for (c, &extent) in coord.iter_mut().zip(shape.iter()).rev() {
        *c = flat % extent.max(1);
        flat /= extent.max(1);
    }
    coord
}

fn dense64(a: &CooMatrix) -> Vec<f64> {
    let mut d = vec![0.0f64; a.nrows() * a.ncols()];
    for (r, c, v) in a.iter() {
        d[r * a.ncols() + c] += f64::from(v);
    }
    d
}

/// `y[i] = Σ_k A[i,k] x[k]` — shape `[nrows]`.
pub fn spmv(a: &CooMatrix, x: &DenseVector) -> Vec<f64> {
    let ad = dense64(a);
    let mut y = vec![0.0f64; a.nrows()];
    for i in 0..a.nrows() {
        for k in 0..a.ncols() {
            y[i] += ad[i * a.ncols() + k] * f64::from(x.as_slice()[k]);
        }
    }
    y
}

/// `C[i,j] = Σ_k A[i,k] B[k,j]` — shape `[nrows, b.ncols()]`.
pub fn spmm(a: &CooMatrix, b: &DenseMatrix) -> Vec<f64> {
    let ad = dense64(a);
    let (n, m, j) = (a.nrows(), a.ncols(), b.ncols());
    let mut c = vec![0.0f64; n * j];
    for i in 0..n {
        for k in 0..m {
            let av = ad[i * m + k];
            for jj in 0..j {
                c[i * j + jj] += av * f64::from(b.get(k, jj));
            }
        }
    }
    c
}

/// `D[i,j] = A[i,j] * Σ_k B[i,k] C[k,j]` — shape `[nrows, ncols]`, dense
/// (positions outside A's pattern are exactly zero).
pub fn sddmm(a: &CooMatrix, b: &DenseMatrix, c: &DenseMatrix) -> Vec<f64> {
    let ad = dense64(a);
    let (n, m, k) = (a.nrows(), a.ncols(), b.ncols());
    let mut d = vec![0.0f64; n * m];
    for i in 0..n {
        for j in 0..m {
            let av = ad[i * m + j];
            if av == 0.0 {
                continue;
            }
            let mut dot = 0.0f64;
            for kk in 0..k {
                dot += f64::from(b.get(i, kk)) * f64::from(c.get(kk, j));
            }
            d[i * m + j] = av * dot;
        }
    }
    d
}

/// `C[i,j] = Σ_k A[i,k] B[k,j]` with both operands sparse — shape
/// `[a.nrows(), b.ncols()]`, dense.
pub fn spgemm(a: &CooMatrix, b: &CooMatrix) -> Vec<f64> {
    let ad = dense64(a);
    let bd = dense64(b);
    let (n, m, j) = (a.nrows(), a.ncols(), b.ncols());
    assert_eq!(m, b.nrows(), "SpGEMM operand shapes must chain");
    let mut c = vec![0.0f64; n * j];
    for i in 0..n {
        for k in 0..m {
            let av = ad[i * m + k];
            if av == 0.0 {
                continue;
            }
            for jj in 0..j {
                c[i * j + jj] += av * bd[k * j + jj];
            }
        }
    }
    c
}

/// Fused SDDMM+SpMM: `E[i,t] = Σ_j (A[i,j] · Σ_k B[i,k] C[k,j]) F[j,t]` —
/// shape `[a.nrows(), f.ncols()]`.
pub fn sddmm_spmm(a: &CooMatrix, b: &DenseMatrix, c: &DenseMatrix, f: &DenseMatrix) -> Vec<f64> {
    let inter = sddmm(a, b, c);
    let (n, m, t) = (a.nrows(), a.ncols(), f.ncols());
    let mut e = vec![0.0f64; n * t];
    for i in 0..n {
        for j in 0..m {
            let d = inter[i * m + j];
            if d == 0.0 {
                continue;
            }
            for tt in 0..t {
                e[i * t + tt] += d * f64::from(f.get(j, tt));
            }
        }
    }
    e
}

/// `M[i,j] = Σ_{k,l} T[i,k,l] B[k,j] C[l,j]` — shape `[dims[0], rank]`.
pub fn mttkrp(t: &CooTensor3, b: &DenseMatrix, c: &DenseMatrix) -> Vec<f64> {
    let [d0, d1, d2] = t.dims();
    let rank = b.ncols();
    let mut dense = vec![0.0f64; d0 * d1 * d2];
    for (i, k, l, v) in t.iter() {
        dense[(i * d1 + k) * d2 + l] += f64::from(v);
    }
    let mut m = vec![0.0f64; d0 * rank];
    for i in 0..d0 {
        for k in 0..d1 {
            for l in 0..d2 {
                let tv = dense[(i * d1 + k) * d2 + l];
                if tv == 0.0 {
                    continue;
                }
                for j in 0..rank {
                    m[i * rank + j] += tv * f64::from(b.get(k, j)) * f64::from(c.get(l, j));
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_tensor::csr::mttkrp_reference;
    use waco_tensor::gen::{self, Rng64};
    use waco_tensor::CsrMatrix;

    #[test]
    fn oracles_agree_with_csr_references() {
        let mut rng = Rng64::seed_from(1);
        let a = gen::uniform_random(18, 21, 0.2, &mut rng);
        let x = DenseVector::from_fn(21, |i| (i as f32).cos());
        let b = DenseMatrix::from_fn(21, 5, |r, c| ((r + c) % 3) as f32 - 1.0);
        let tol = Tolerance::default();

        let y = spmv(&a, &x);
        assert!(tol
            .first_divergence(&[18], &y, CsrMatrix::from_coo(&a).spmv(&x).as_slice())
            .is_none());

        let c = spmm(&a, &b);
        assert!(tol
            .first_divergence(&[18, 5], &c, CsrMatrix::from_coo(&a).spmm(&b).as_slice())
            .is_none());

        let bl = DenseMatrix::from_fn(18, 4, |r, c| (r * 2 + c) as f32 * 0.1);
        let cr = DenseMatrix::from_fn(4, 21, |r, c| (r + c) as f32 * 0.2 - 0.3);
        let d = sddmm(&a, &bl, &cr);
        assert!(tol
            .first_divergence(
                &[18, 21],
                &d,
                CsrMatrix::from_coo(&a)
                    .sddmm(&bl, &cr)
                    .to_dense()
                    .as_slice()
            )
            .is_none());

        let t = gen::random_tensor3([7, 8, 9], 50, &mut rng);
        let tb = DenseMatrix::from_fn(8, 4, |r, c| ((r * 3 + c) % 7) as f32 * 0.25);
        let tc = DenseMatrix::from_fn(9, 4, |r, c| ((r + 2 * c) % 5) as f32 * 0.5 - 1.0);
        let m = mttkrp(&t, &tb, &tc);
        assert!(tol
            .first_divergence(&[7, 4], &m, mttkrp_reference(&t, &tb, &tc).as_slice())
            .is_none());
    }

    #[test]
    fn first_divergence_reports_first_coordinate() {
        let tol = Tolerance::default();
        let expected = vec![1.0f64, 2.0, 3.0, 4.0];
        let actual = vec![1.0f32, 2.5, 3.9, 4.0];
        let d = tol.first_divergence(&[2, 2], &expected, &actual).unwrap();
        assert_eq!(d.coord, vec![0, 1], "first divergence, row-major");
        assert_eq!(d.expected, 2.0);
        assert_eq!(d.actual, 2.5);
    }

    #[test]
    fn tolerance_scales_with_magnitude() {
        let tol = Tolerance::default();
        assert!(tol.close(1000.0, 1000.5));
        assert!(!tol.close(1.0, 1.5));
        assert!(tol.close(0.0, 0.0005));
    }

    #[test]
    fn unflatten_is_row_major() {
        assert_eq!(unflatten(&[2, 3], 5), vec![1, 2]);
        assert_eq!(unflatten(&[4], 3), vec![3]);
        assert_eq!(unflatten(&[2, 3, 4], 23), vec![1, 2, 3]);
    }
}
