//! Subcommand implementations.
//!
//! Every command returns `Result<(), WacoError>`; `main` maps errors to a
//! one-line `error: …` message and exit code 2. Flag and parse problems
//! become [`WacoError::InvalidConfig`], file problems [`WacoError::Io`].

use waco_baselines::{best_format, fixed, mkl};
use waco_core::{Waco, WacoConfig, WacoError};
use waco_schedule::Kernel;
use waco_sim::{MachineConfig, Simulator};
use waco_tensor::gen::{self, Rng64};
use waco_tensor::{io, CooMatrix, MatrixStats};

pub(crate) type Result<T> = std::result::Result<T, WacoError>;

/// Top-level usage text.
pub const USAGE: &str = "\
waco-cli — workload-aware co-optimization of sparse tensor programs

USAGE:
  waco-cli gen     --family <uniform|banded|blocked|powerlaw|kronecker|mesh>
                   [--size N] [--seed S] --out FILE.mtx
  waco-cli inspect FILE.mtx
  waco-cli bench   [--kernel spmv|spmm|sddmm|spgemm|sddmm_spmm] [--dense N]
                   FILE.mtx
  waco-cli train   [--kernel spmv|spmm|sddmm] [--matrices N] [--size N]
                   [--epochs N] [--dense N] [--seed S] --out MODEL.ckpt
  waco-cli tune    [--kernel spmv|spmm|sddmm] [--model MODEL.ckpt]
                   [--dense N] [--seed S] FILE.mtx
  waco-cli serve   --cache DIR [--addr 127.0.0.1:PORT] [--workers N]
                   [--queue N] [--capacity N] [--timeout SECS]
                   [--model MODEL.ckpt] [--sync-from HOST:PORT]
  waco-cli route   --shards ADDR1,ADDR2[,...] [--addr 127.0.0.1:PORT]
                   [--vnodes N] [--queue N] [--timeout SECS]
  waco-cli query   --addr 127.0.0.1:PORT [--op tune|lookup|stats|shutdown]
                   [--kernel spmv|spmm|sddmm] [--dense N] [--timeout SECS]
                   [FILE.mtx]
  waco-cli verify  [--seed S] [--budget smoke|nightly]
                   [--kernel spmv,spmm,mttkrp,spgemm,sddmm_spmm,...]
                   [--faults on|off] [--out FILE.json]
  waco-cli loadgen --addr 127.0.0.1:PORT [--connections N] [--duration SECS]
                   [--rps R] [--fingerprints K] [--zipf S]
                   [--arrivals poisson|burst] [--kernel spmv|spmm|sddmm]
                   [--dense N] [--size N] [--seed S] [--out FILE.json]
                   [--shards N] [--smoke]
  waco-cli plan    [--kernel spmv|spmm|sddmm|spgemm|sddmm_spmm] [--dense N]
                   [--rows N] [--cols N] [--schedule JSON]
                   [--format text|json] [FILE.mtx]

Global flags:
  --trace FILE.json   record a structured trace (spans, counters,
                      histograms); the span tree is printed to stderr and
                      the full trace written to FILE.json

All timing is on the deterministic xeon-like machine model.
Exit codes: 0 success, 2 error.";

pub(crate) fn bad(msg: impl Into<String>) -> WacoError {
    WacoError::InvalidConfig(msg.into())
}

/// Parsed `--key value` flags plus positional arguments.
pub(crate) struct Flags {
    kv: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Flags {
    pub(crate) fn parse(args: &[String]) -> Result<Self> {
        let mut kv = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = it
                    .next()
                    .ok_or_else(|| bad(format!("flag --{key} needs a value")))?;
                kv.push((key.to_string(), val.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { kv, positional })
    }

    pub(crate) fn get(&self, key: &str) -> Option<&str> {
        self.kv
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub(crate) fn usize_or(&self, key: &str, default: usize) -> Result<usize> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| bad(format!("--{key} expects an integer, got `{v}`"))),
        }
    }

    pub(crate) fn f64_or(&self, key: &str, default: f64) -> Result<f64> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| bad(format!("--{key} expects a number, got `{v}`"))),
        }
    }

    fn one_positional(&self, what: &str) -> Result<&str> {
        match self.positional.as_slice() {
            [p] => Ok(p),
            [] => Err(bad(format!("missing {what}"))),
            _ => Err(bad(format!("expected exactly one {what}"))),
        }
    }
}

pub(crate) fn parse_kernel(flags: &Flags) -> Result<Kernel> {
    match flags.get("kernel").unwrap_or("spmm") {
        "spmv" => Ok(Kernel::SpMV),
        "spmm" => Ok(Kernel::SpMM),
        "sddmm" => Ok(Kernel::SDDMM),
        "spgemm" => Ok(Kernel::SpGEMM),
        "sddmm_spmm" => Ok(Kernel::SddmmSpmm),
        other => Err(bad(format!(
            "unsupported kernel `{other}` (CLI supports spmv/spmm/sddmm/spgemm/sddmm_spmm; MTTKRP needs the library API)"
        ))),
    }
}

pub(crate) fn dense_extent(flags: &Flags, kernel: Kernel) -> Result<usize> {
    flags.usize_or("dense", if kernel == Kernel::SpMV { 0 } else { 32 })
}

fn io_err(context: impl Into<String>, e: impl std::fmt::Display) -> WacoError {
    WacoError::io(context, std::io::Error::other(e.to_string()))
}

fn load_matrix(path: &str) -> Result<CooMatrix> {
    io::read_matrix_market_file(path).map_err(|e| io_err(format!("reading {path}"), e))
}

/// `waco-cli gen`: writes a synthetic matrix in Matrix Market form.
pub fn gen(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    let family = flags.get("family").unwrap_or("uniform").to_string();
    let n = flags.usize_or("size", 512)?;
    let seed = flags.usize_or("seed", 7)? as u64;
    let out = flags
        .get("out")
        .ok_or_else(|| bad("--out FILE.mtx is required"))?;
    let mut rng = Rng64::seed_from(seed);
    let m = match family.as_str() {
        "uniform" => gen::uniform_random(n, n, 8.0 / n as f64, &mut rng),
        "banded" => gen::banded(n, (n / 64).max(2), 0.4, &mut rng),
        "blocked" => gen::blocked(n, n, 8, (n * n / 512).max(4), 0.9, &mut rng),
        "powerlaw" => gen::powerlaw_rows(n, n, 8.0, 1.2, &mut rng),
        "kronecker" => gen::kronecker((n as f64).log2().ceil() as u32, n * 8, &mut rng),
        "mesh" => {
            let side = (n as f64).sqrt().round() as usize;
            gen::mesh2d(side.max(2), side.max(2))
        }
        other => return Err(bad(format!("unknown family `{other}`"))),
    };
    io::write_matrix_market_file(out, &m).map_err(|e| io_err(format!("writing {out}"), e))?;
    println!(
        "wrote {out}: {}x{}, {} nnz ({family})",
        m.nrows(),
        m.ncols(),
        m.nnz()
    );
    Ok(())
}

/// `waco-cli inspect`: pattern statistics.
pub fn inspect(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    let path = flags.one_positional("FILE.mtx")?;
    let m = load_matrix(path)?;
    let s = MatrixStats::compute(&m);
    println!("{path}");
    println!("  shape          {} x {}", s.nrows, s.ncols);
    println!(
        "  nonzeros       {} ({:.4}% dense)",
        s.nnz,
        s.density * 100.0
    );
    println!(
        "  row nnz        mean {:.2}, max {}, cv {:.2}",
        s.row_nnz_mean, s.row_nnz_max, s.row_cv
    );
    println!("  diag distance  {:.3} (normalized)", s.diag_distance_mean);
    println!("  symmetry       {:.0}%", s.symmetry * 100.0);
    println!(
        "  8x8 blocks     {} occupied, mean fill {:.0}%",
        s.block8_count,
        s.block8_fill_mean * 100.0
    );
    Ok(())
}

/// `waco-cli bench`: a no-ML leaderboard of the classic formats.
pub fn bench(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    let kernel = parse_kernel(&flags)?;
    let dense = dense_extent(&flags, kernel)?;
    let path = flags.one_positional("FILE.mtx")?;
    let m = load_matrix(path)?;
    let sim = Simulator::new(MachineConfig::xeon_like());
    let space = sim.space_for(kernel, vec![m.nrows(), m.ncols()], dense);

    println!("{kernel} on {path} ({} nnz), xeon-like machine:", m.nnz());
    let mut rows: Vec<(String, f64)> = Vec::new();
    for sched in waco_schedule::named::portfolio(&space) {
        if let Ok(r) = sim.time_matrix(&m, &sched, &space) {
            rows.push((sched.describe(&space), r.seconds));
        }
    }
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (i, (desc, secs)) in rows.iter().take(8).enumerate() {
        println!("  {:>2}. {secs:.3e}s  {desc}", i + 1);
    }
    if let Some((_, worst)) = rows.last() {
        println!(
            "  ({} configurations; best is {:.2}x faster than worst)",
            rows.len(),
            worst / rows[0].1
        );
    }
    Ok(())
}

fn waco_config(flags: &Flags) -> Result<(WacoConfig, usize, usize)> {
    let matrices = flags.usize_or("matrices", 12)?;
    let size = flags.usize_or("size", 384)?;
    let epochs = flags.usize_or("epochs", 10)?;
    let seed = flags.usize_or("seed", 2023)? as u64;
    let train = waco_model::train::TrainConfig::builder()
        .epochs(epochs)
        .build()?;
    let datagen = waco_model::dataset::DataGenConfig::builder()
        .schedules_per_matrix(16)
        .build()?;
    let cfg = WacoConfig::builder()
        .train(train)
        .datagen(datagen)
        .seed(seed)
        .build()?;
    Ok((cfg, matrices, size))
}

/// `waco-cli train`: trains a cost model and writes a checkpoint.
pub fn train(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    let kernel = parse_kernel(&flags)?;
    let dense = dense_extent(&flags, kernel)?;
    let out = flags
        .get("out")
        .ok_or_else(|| bad("--out MODEL.ckpt is required"))?
        .to_string();
    let (cfg, matrices, size) = waco_config(&flags)?;
    let corpus = gen::corpus(matrices, size, cfg.seed);
    println!("training {kernel} cost model on {matrices} matrices (~{size} rows) …");
    let sim = Simulator::new(MachineConfig::xeon_like());
    let t0 = std::time::Instant::now();
    let (mut waco, stats) = Waco::train_2d(sim, kernel, &corpus, dense, cfg)?;
    println!(
        "trained in {:.1}s; final val ranking accuracy {:.2}",
        t0.elapsed().as_secs_f64(),
        stats.val_rank_acc.last().copied().unwrap_or(0.0)
    );
    waco.save_checkpoint(&out)?;
    println!("checkpoint written to {out}");
    Ok(())
}

/// `waco-cli tune`: tunes one matrix, comparing against the baselines.
pub fn tune(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    let kernel = parse_kernel(&flags)?;
    let dense = dense_extent(&flags, kernel)?;
    let path = flags.one_positional("FILE.mtx")?;
    let m = load_matrix(path)?;
    let (cfg, matrices, size) = waco_config(&flags)?;

    // Build the tuner: retrain (cheap at CLI scale) and overwrite weights
    // from the checkpoint when one is given.
    let corpus = gen::corpus(matrices, size, cfg.seed);
    let sim = Simulator::new(MachineConfig::xeon_like());
    let (mut waco, _) = Waco::train_2d(sim, kernel, &corpus, dense, cfg)?;
    if let Some(ckpt) = flags.get("model") {
        waco.load_checkpoint(ckpt)?;
        println!("loaded model weights from {ckpt}");
    }

    let tuned = waco.tune_matrix(&m)?;
    let space = waco.space_for_matrix(&m);
    println!("\n{kernel} on {path} ({} nnz):", m.nnz());
    println!("  WACO chose : {}", tuned.result.sched.describe(&space));
    println!(
        "  kernel time: {:.3e}s  (tuning {:.3e}s, conversion {:.3e}s)",
        tuned.result.kernel_seconds, tuned.result.tuning_seconds, tuned.result.convert_seconds
    );

    let mut lines = Vec::new();
    if let Ok(f) = fixed::fixed_csr_matrix(&waco.sim, kernel, &m, dense) {
        lines.push(("FixedCSR", f.kernel_seconds));
    }
    if matches!(kernel, Kernel::SpMV | Kernel::SpMM) {
        if let Ok(k) = mkl::mkl_like_matrix(&waco.sim, kernel, &m, dense) {
            lines.push(("MKL-like", k.kernel_seconds));
        }
    }
    if let Ok(b) = best_format::best_format_matrix(&waco.sim, kernel, &m, dense) {
        lines.push(("BestFormat", b.kernel_seconds));
    }
    println!("  baselines  :");
    for (name, secs) in lines {
        println!(
            "    {name:<11} {secs:.3e}s  (WACO is {:.2}x)",
            secs / tuned.result.kernel_seconds
        );
    }
    Ok(())
}

/// `waco-cli serve`: runs the online tuning service until a client sends
/// `shutdown` (or the process is killed).
pub fn serve(args: &[String]) -> Result<()> {
    use std::io::Write as _;

    let flags = Flags::parse(args)?;
    let cache = flags
        .get("cache")
        .ok_or_else(|| bad("--cache DIR is required"))?
        .to_string();
    let mut builder = waco_serve::ServeConfig::builder()
        .addr(flags.get("addr").unwrap_or("127.0.0.1:0"))
        .cache_dir(&cache);
    if flags.get("workers").is_some() {
        builder = builder.workers(flags.usize_or("workers", 0)?);
    }
    if flags.get("queue").is_some() {
        builder = builder.queue_depth(flags.usize_or("queue", 0)?);
    }
    if flags.get("capacity").is_some() {
        builder = builder.cache_capacity(flags.usize_or("capacity", 0)?);
    }
    if flags.get("timeout").is_some() {
        builder = builder.timeout_secs(flags.f64_or("timeout", 0.0)?);
    }
    let cfg = builder.build()?;

    if let Some(peer) = flags.get("sync-from") {
        // Warm the journal from a running peer before serving. A failed
        // stream leaves the cache untouched, so falling back to cold
        // tuning is safe — degraded, never wrong.
        let timeout = std::time::Duration::from_secs_f64(flags.f64_or("timeout", 30.0)?);
        let capacity = flags.usize_or("capacity", 1024)?;
        let warm_cache =
            waco_serve::TuningCache::open(cfg.cache_dir().join("tuning.journal"), capacity)?;
        match waco_serve::warm_from_peer(peer, timeout, &warm_cache) {
            Ok(report) => {
                warm_cache.sync()?;
                println!(
                    "warmed {} records from {peer} ({} batches, {} resumes)",
                    report.records, report.batches, report.resumes
                );
            }
            Err(e) => eprintln!("warning: sync from {peer} failed ({e}); starting cold"),
        }
        // Dropped here so the server below reopens the journal fresh.
    }

    let tuner_cfg = waco_serve::WacoTunerConfig {
        checkpoint: flags.get("model").map(Into::into),
        index_cache: Some(std::path::Path::new(&cache).join("index")),
        ..waco_serve::WacoTunerConfig::default()
    };
    let server = waco_serve::Server::start(
        cfg,
        std::sync::Arc::new(waco_serve::WacoTuner::new(tuner_cfg)),
    )?;
    // The bound address line is the startup handshake: tests and scripts
    // bind port 0 and parse the real port from here, so flush eagerly.
    println!("listening on {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| WacoError::io("flushing stdout", e))?;
    server.wait()?;
    println!("server drained");
    Ok(())
}

/// `waco-cli route`: the fingerprint-sharded router in front of N shard
/// servers, with failover to the ring's next live shard.
pub fn route(args: &[String]) -> Result<()> {
    use std::io::Write as _;

    let flags = Flags::parse(args)?;
    let shards = flags
        .get("shards")
        .ok_or_else(|| bad("--shards ADDR1,ADDR2[,...] is required"))?;
    let mut builder =
        waco_serve::RouterConfig::builder().addr(flags.get("addr").unwrap_or("127.0.0.1:0"));
    for shard in shards.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        builder = builder.shard(shard);
    }
    if flags.get("vnodes").is_some() {
        builder = builder.vnodes(flags.usize_or("vnodes", 0)?);
    }
    if flags.get("queue").is_some() {
        builder = builder.max_connections(flags.usize_or("queue", 0)?);
    }
    if flags.get("timeout").is_some() {
        builder = builder.timeout_secs(flags.f64_or("timeout", 0.0)?);
    }
    let router = waco_serve::Router::start(builder.build()?)?;
    // Same startup handshake as `serve`: scripts parse the real port here.
    println!("listening on {}", router.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| WacoError::io("flushing stdout", e))?;
    router.wait();
    println!("router drained");
    Ok(())
}

/// `waco-cli query`: one client request against a running server.
pub fn query(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    let addr = flags
        .get("addr")
        .ok_or_else(|| bad("--addr HOST:PORT is required"))?;
    let timeout = std::time::Duration::from_secs_f64(flags.f64_or("timeout", 120.0)?);
    let op = flags.get("op").unwrap_or("tune");
    let mut client = waco_serve::Client::connect(addr, timeout)?;
    match op {
        "stats" => {
            println!("{}", client.stats()?);
            Ok(())
        }
        "shutdown" => {
            client.shutdown()?;
            println!("server shutting down");
            Ok(())
        }
        "tune" | "lookup" => {
            let kernel = parse_kernel(&flags)?;
            let dense = dense_extent(&flags, kernel)?;
            let kname = flags.get("kernel").unwrap_or("spmm");
            let path = flags.one_positional("FILE.mtx")?;
            let m = load_matrix(path)?;
            let reply = if op == "tune" {
                client.tune(&m, kname, dense)?
            } else {
                client.lookup(&m, kname, dense)?
            };
            let Some(d) = reply.decision else {
                println!("no cached decision for {path}");
                return Ok(());
            };
            let space = waco_schedule::Space::new(kernel, vec![m.nrows(), m.ncols()], dense);
            println!(
                "{} {kernel} decision for {path} ({} nnz):",
                if reply.cached { "cached" } else { "computed" },
                m.nnz()
            );
            println!("  schedule   : {}", d.schedule.describe(&space));
            println!(
                "  kernel time: {:.3e}s  (tuned in {:.3e}s)",
                d.kernel_seconds, d.tuning_seconds
            );
            println!("  fingerprint: {}", d.fingerprint);
            Ok(())
        }
        other => Err(bad(format!(
            "unknown --op `{other}` (tune|lookup|stats|shutdown)"
        ))),
    }
}

/// `waco-cli verify`: the differential + metamorphic + fault-injection
/// correctness harness (`waco-verify`), with a JSON report for CI.
pub fn verify(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    let seed = flags.usize_or("seed", 42)? as u64;
    let budget_name = flags.get("budget").unwrap_or("smoke");
    let budget = waco_verify::Budget::parse(budget_name).ok_or_else(|| {
        bad(format!(
            "--budget must be `smoke` or `nightly`, got `{budget_name}`"
        ))
    })?;
    let mut cfg = waco_verify::VerifyConfig::new(seed, budget);
    if let Some(list) = flags.get("kernel") {
        let mut kernels = Vec::new();
        for tok in list.split(',') {
            kernels.push(match tok {
                "spmv" => Kernel::SpMV,
                "spmm" => Kernel::SpMM,
                "sddmm" => Kernel::SDDMM,
                "mttkrp" => Kernel::MTTKRP,
                "spgemm" => Kernel::SpGEMM,
                "sddmm_spmm" => Kernel::SddmmSpmm,
                other => {
                    return Err(bad(format!(
                        "unknown kernel `{other}` in --kernel (spmv|spmm|sddmm|mttkrp|spgemm|sddmm_spmm, comma-separated)"
                    )))
                }
            });
        }
        cfg.kernels = kernels;
    }
    cfg.faults = match flags.get("faults").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(bad(format!(
                "--faults must be `on` or `off`, got `{other}`"
            )))
        }
    };
    let out = flags
        .get("out")
        .unwrap_or("results/verify_report.json")
        .to_string();

    let report = waco_verify::run(&cfg);
    print!("{}", report.summary());
    waco_verify::report::write_report(&report, std::path::Path::new(&out))
        .map_err(|e| WacoError::io(format!("writing report {out}"), e))?;
    println!("report written to {out}");
    if report.passed() {
        Ok(())
    } else {
        Err(WacoError::InvalidSchedule(format!(
            "verification found {} failure(s); full detail in {out}",
            report.total_failures()
        )))
    }
}

/// `waco-cli plan`: lowers a schedule to its `ExecutionPlan` and dumps it,
/// as text (default) or JSON (`--json`) — the introspection window into the
/// exact loop structure every backend (exec, sim, serve, verify) runs.
pub fn plan(args: &[String]) -> Result<()> {
    use waco_exec::{AsymptoticProfile, ExecutionPlan, LocateKind, PlanOp};
    use waco_serve::Json;

    let flags = Flags::parse(args)?;
    let kernel = parse_kernel(&flags)?;
    let dense = dense_extent(&flags, kernel)?;

    // Sparse dims: from the matrix when given, else --rows/--cols. A real
    // matrix also gives the asymptotic profile its true nnz and degree
    // histograms; without one the bound falls back to a uniform profile.
    let (dims, profile) = match flags.positional.as_slice() {
        [] => {
            let dims = vec![flags.usize_or("rows", 1024)?, flags.usize_or("cols", 1024)?];
            let nnz = flags.usize_or("nnz", dims.iter().product::<usize>() / 100)?;
            let profile = AsymptoticProfile::uniform(&dims, nnz);
            (dims, profile)
        }
        [path] => {
            let m = load_matrix(path)?;
            let profile = AsymptoticProfile::from_matrix(&m);
            (vec![m.nrows(), m.ncols()], profile)
        }
        _ => return Err(bad("expected at most one FILE.mtx")),
    };
    let space = waco_schedule::Space::new(kernel, dims, dense);

    let sched = match flags.get("schedule") {
        None => waco_schedule::named::default_csr(&space),
        Some(text) => {
            let v = Json::parse(text).map_err(|e| bad(format!("--schedule is not JSON: {e}")))?;
            waco_serve::cache::schedule_from_json(&v, kernel)
                .ok_or_else(|| bad("--schedule JSON does not decode to a schedule"))?
        }
    };

    let plan = ExecutionPlan::build(&sched, &space)
        .map_err(|e| WacoError::InvalidSchedule(e.to_string()))?;
    let bound = plan.asymptotic_bound(&profile);

    match flags.get("format").unwrap_or("text") {
        "json" => {}
        "text" => {
            println!("{}", sched.describe(&space));
            print!("{}", plan.describe());
            println!("asymptotic: {}", bound.summary());
            return Ok(());
        }
        other => {
            return Err(bad(format!(
                "--format must be `text` or `json`, got `{other}`"
            )))
        }
    }

    let op_json = |op: &PlanOp| match *op {
        PlanOp::ParallelChunk {
            var,
            extent,
            threads,
            chunk,
            ..
        } => Json::obj([
            ("op", Json::str("parallel_chunk")),
            ("var", Json::str(plan.var_name(var))),
            ("extent", Json::num(extent as f64)),
            ("threads", Json::num(threads as f64)),
            ("chunk", Json::num(chunk as f64)),
        ]),
        PlanOp::DenseLoop { var, extent, .. } => Json::obj([
            ("op", Json::str("dense_loop")),
            ("var", Json::str(plan.var_name(var))),
            ("extent", Json::num(extent as f64)),
        ]),
        PlanOp::ConcordantIter { level, .. } => Json::obj([
            ("op", Json::str("concordant_iter")),
            ("level", Json::num(level as f64)),
        ]),
        PlanOp::Locate { level, kind, .. } => Json::obj([
            ("op", Json::str("locate")),
            ("level", Json::num(level as f64)),
            (
                "strategy",
                match kind {
                    LocateKind::Stride(s) => Json::obj([
                        ("kind", Json::str("stride")),
                        ("extent", Json::num(s as f64)),
                    ]),
                    LocateKind::BinarySearch => Json::obj([("kind", Json::str("binary_search"))]),
                },
            ),
        ]),
        PlanOp::Workspace { extent } => Json::obj([
            ("op", Json::str("workspace")),
            ("extent", Json::num(extent as f64)),
        ]),
        PlanOp::Body => Json::obj([("op", Json::str("body"))]),
    };
    let doc = Json::obj([
        ("kernel", Json::str(waco_serve::cache::kernel_name(kernel))),
        (
            "sparse_dims",
            Json::Arr(
                plan.sparse_dims()
                    .iter()
                    .map(|&d| Json::num(d as f64))
                    .collect(),
            ),
        ),
        ("dense_extent", Json::num(plan.dense_extent() as f64)),
        ("format", Json::str(plan.spec().describe())),
        (
            "order",
            Json::Arr(
                plan.order()
                    .iter()
                    .map(|&v| Json::str(plan.var_name(v)))
                    .collect(),
            ),
        ),
        (
            "splits",
            Json::Arr(plan.splits().iter().map(|&s| Json::num(s as f64)).collect()),
        ),
        (
            "parallel",
            match plan.parallel() {
                None => Json::Null,
                Some(p) => Json::obj([
                    ("var", Json::str(plan.var_name(p.var))),
                    ("threads", Json::num(p.threads as f64)),
                    ("chunk", Json::num(p.chunk as f64)),
                ]),
            },
        ),
        ("fast_path", Json::str(plan.fast_path().wire_name())),
        ("fast_path_reason", Json::str(plan.fast_path_reason())),
        (
            "ops",
            Json::Arr(
                plan.ops()
                    .iter()
                    .zip(&bound.per_op)
                    .map(|(op, b)| {
                        let mut o = op_json(op);
                        if let Json::Obj(pairs) = &mut o {
                            pairs.insert(
                                "bound".to_string(),
                                Json::obj([
                                    ("iterations", Json::num(b.iterations)),
                                    ("cost", Json::num(b.cost)),
                                    ("term", Json::str(b.term.clone())),
                                ]),
                            );
                        }
                        o
                    })
                    .collect(),
            ),
        ),
        (
            "asymptotic",
            Json::obj([
                ("work", Json::num(bound.work)),
                ("nnz", Json::num(profile.nnz as f64)),
                ("summary", Json::str(bound.summary())),
            ]),
        ),
        ("schedule", waco_serve::cache::schedule_to_json(&sched)),
    ]);
    println!("{doc}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse() {
        let args: Vec<String> = ["--size", "64", "m.mtx", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args).unwrap();
        assert_eq!(f.usize_or("size", 1).unwrap(), 64);
        assert_eq!(f.usize_or("seed", 1).unwrap(), 9);
        assert_eq!(f.usize_or("missing", 5).unwrap(), 5);
        assert_eq!(f.one_positional("file").unwrap(), "m.mtx");
    }

    #[test]
    fn flags_reject_bad_input() {
        let args: Vec<String> = ["--size"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::parse(&args).is_err());
        let args: Vec<String> = ["--size", "abc"].iter().map(|s| s.to_string()).collect();
        let f = Flags::parse(&args).unwrap();
        assert!(f.usize_or("size", 1).is_err());
    }

    #[test]
    fn flag_errors_are_invalid_config() {
        let f = Flags::parse(&["--size".into(), "abc".into()]).unwrap();
        assert!(matches!(
            f.usize_or("size", 1),
            Err(WacoError::InvalidConfig(_))
        ));
    }

    #[test]
    fn kernel_parsing() {
        let f = Flags::parse(&["--kernel".into(), "spmv".into()]).unwrap();
        assert_eq!(parse_kernel(&f).unwrap(), Kernel::SpMV);
        let f = Flags::parse(&["--kernel".into(), "mttkrp".into()]).unwrap();
        assert!(parse_kernel(&f).is_err());
        let f = Flags::parse(&[]).unwrap();
        assert_eq!(parse_kernel(&f).unwrap(), Kernel::SpMM);
    }
}
