//! `waco-cli` — the command-line face of WACO-rs.
//!
//! ```text
//! waco-cli gen      --family kronecker --size 512 --out graph.mtx
//! waco-cli inspect  graph.mtx
//! waco-cli bench    --kernel spmm graph.mtx
//! waco-cli train    --kernel spmm --out model.ckpt
//! waco-cli tune     --kernel spmm --model model.ckpt graph.mtx
//! ```
//!
//! All tuning runs against the deterministic machine simulator (see the
//! `waco-sim` crate); `tune` prints the chosen SuperSchedule and compares it
//! with the Fixed CSR, MKL-like, and BestFormat baselines.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "gen" => commands::gen(rest),
        "inspect" => commands::inspect(rest),
        "bench" => commands::bench(rest),
        "train" => commands::train(rest),
        "tune" => commands::tune(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
