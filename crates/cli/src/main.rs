//! `waco-cli` — the command-line face of WACO-rs.
//!
//! ```text
//! waco-cli gen      --family kronecker --size 512 --out graph.mtx
//! waco-cli inspect  graph.mtx
//! waco-cli bench    --kernel spmm graph.mtx
//! waco-cli train    --kernel spmm --out model.ckpt
//! waco-cli tune     --kernel spmm --model model.ckpt graph.mtx
//! waco-cli serve    --cache /var/tmp/waco-cache --addr 127.0.0.1:7470
//! waco-cli route    --shards 127.0.0.1:7470,127.0.0.1:7471
//! waco-cli query    --addr 127.0.0.1:7470 graph.mtx
//! waco-cli verify   --seed 42 --budget smoke
//! waco-cli plan     --kernel spmv --rows 1024 --cols 1024
//! ```
//!
//! All tuning runs against the deterministic machine simulator (see the
//! `waco-sim` crate); `tune` prints the chosen SuperSchedule and compares it
//! with the Fixed CSR, MKL-like, and BestFormat baselines.
//!
//! A global `--trace <path>` flag (any command) installs the `waco-obs`
//! subscriber: at exit the span tree is printed to stderr and the full
//! trace is written to `<path>` as JSON.
//!
//! Exit codes: 0 on success, 2 on any error (bad flags, missing files,
//! malformed checkpoints, infeasible tuning) — always with a one-line
//! `error: …` message on stderr.

mod commands;
mod loadgen;

use std::process::ExitCode;
use waco_core::WacoError;

/// Removes a global `--trace <path>` flag pair from the argument list,
/// returning the path when present.
fn extract_trace(args: &mut Vec<String>) -> Result<Option<String>, WacoError> {
    let Some(i) = args.iter().position(|a| a == "--trace") else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(WacoError::InvalidConfig("--trace needs a file path".into()));
    }
    let path = args.remove(i + 1);
    args.remove(i);
    Ok(Some(path))
}

fn run(args: Vec<String>) -> Result<(), WacoError> {
    let Some(cmd) = args.first() else {
        eprintln!("{}", commands::USAGE);
        return Err(WacoError::InvalidConfig("no command given".into()));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "gen" => commands::gen(rest),
        "inspect" => commands::inspect(rest),
        "bench" => commands::bench(rest),
        "train" => commands::train(rest),
        "tune" => commands::tune(rest),
        "serve" => commands::serve(rest),
        "route" => commands::route(rest),
        "query" => commands::query(rest),
        "verify" => commands::verify(rest),
        "loadgen" => loadgen::loadgen(rest),
        "plan" => commands::plan(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("{}", commands::USAGE);
            Err(WacoError::InvalidConfig(format!(
                "unknown command `{other}`"
            )))
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = match extract_trace(&mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if trace.is_some() {
        waco_obs::install();
    }
    let result = run(args);
    if let Some(path) = trace {
        waco_obs::print_tree();
        match waco_obs::write_trace(&path) {
            Ok(p) => eprintln!("trace written to {}", p.display()),
            Err(e) => eprintln!("error: writing trace {path}: {e}"),
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
