//! `waco-cli loadgen` — an open-loop synthetic load generator for a running
//! `waco-cli serve` instance.
//!
//! Two phases, mirroring how a tuning service degrades in practice:
//!
//! 1. **Coalesce probe** — `--connections` clients barrier-start a `tune`
//!    for the *same fresh* fingerprint. A correct server performs exactly
//!    one tuner call and hands every client the identical decision; the
//!    probe records the observed `tune_calls` / `coalesced` deltas from the
//!    server's `stats` frame and checks response identity client-side.
//! 2. **Main run** — an open-loop arrival process (Poisson or 1 Hz bursts,
//!    `--rps` total) over a Zipf-popularity catalog of `--fingerprints`
//!    distinct matrices, round-robin across pipelined connections. Open
//!    loop means arrivals are *not* gated on responses: each connection
//!    splits into a sender thread (sleeps to the schedule, sends) and a
//!    receiver thread (pairs in-order responses with send timestamps), so
//!    queueing delay shows up in the measured latency instead of silently
//!    throttling the offered load.
//!
//! The report written to `--out` (default `results/loadgen.json`) carries
//! exact client-side latency percentiles (overall and per-second
//! trajectories), cache hit-rate trajectories sampled from `stats` polls,
//! and the probe verdict. CI gates read this file: the probe's `coalesced`
//! must be positive and `latency.p99_ms` must stay under a ceiling.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use waco_schedule::Kernel;
use waco_serve::cache::kernel_name;
use waco_serve::protocol::request_json;
use waco_serve::{Client, Json};
use waco_tensor::gen::{self, Rng64};
use waco_tensor::io::write_matrix_market;

use crate::commands::{bad, dense_extent, parse_kernel, Flags, Result};

/// How arrivals are spaced over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arrivals {
    /// Exponential inter-arrival gaps at the target rate.
    Poisson,
    /// The whole second's worth of arrivals lands at the top of the second.
    Burst,
}

/// Parsed loadgen configuration.
struct LoadgenConfig {
    addr: String,
    connections: usize,
    duration: Duration,
    rps: f64,
    fingerprints: usize,
    zipf_s: f64,
    arrivals: Arrivals,
    kernel: Kernel,
    dense: usize,
    size: usize,
    density: f64,
    seed: u64,
    out: String,
    timeout: Duration,
    /// Shard count behind `--addr` when it is a router (1 = single node).
    /// The report then carries the router's forwarding/failover counters so
    /// load results describe the routed topology, not just one process.
    shards: usize,
}

impl LoadgenConfig {
    fn from_flags(flags: &Flags, smoke: bool) -> Result<Self> {
        let addr = flags
            .get("addr")
            .ok_or_else(|| bad("loadgen needs --addr HOST:PORT"))?
            .to_string();
        // Smoke mode shrinks every knob the user didn't pin explicitly.
        let (d_conns, d_dur, d_rps, d_fps) = if smoke {
            (4usize, 2.0f64, 20.0f64, 6usize)
        } else {
            (8, 10.0, 40.0, 24)
        };
        let kernel = parse_kernel(flags)?;
        let cfg = LoadgenConfig {
            addr,
            connections: flags.usize_or("connections", d_conns)?,
            duration: Duration::from_secs_f64(flags.f64_or("duration", d_dur)?),
            rps: flags.f64_or("rps", d_rps)?,
            fingerprints: flags.usize_or("fingerprints", d_fps)?,
            zipf_s: flags.f64_or("zipf", 1.1)?,
            arrivals: match flags.get("arrivals").unwrap_or("poisson") {
                "poisson" => Arrivals::Poisson,
                "burst" => Arrivals::Burst,
                other => {
                    return Err(bad(format!(
                        "--arrivals expects poisson|burst, got `{other}`"
                    )))
                }
            },
            kernel,
            dense: dense_extent(flags, kernel)?,
            size: flags.usize_or("size", 32)?,
            density: flags.f64_or("density", 0.08)?,
            seed: flags.usize_or("seed", 42)? as u64,
            out: flags
                .get("out")
                .unwrap_or("results/loadgen.json")
                .to_string(),
            timeout: Duration::from_secs_f64(flags.f64_or("timeout", 60.0)?),
            shards: flags.usize_or("shards", 1)?,
        };
        if cfg.connections == 0 || cfg.fingerprints == 0 {
            return Err(bad("--connections and --fingerprints must be positive"));
        }
        if cfg.shards == 0 {
            return Err(bad("--shards must be positive"));
        }
        if cfg.rps <= 0.0 || cfg.rps.is_nan() || cfg.duration.is_zero() {
            return Err(bad("--rps and --duration must be positive"));
        }
        if cfg.zipf_s <= 0.0 || cfg.zipf_s.is_nan() {
            return Err(bad("--zipf must be positive"));
        }
        Ok(cfg)
    }
}

/// One completed request, timestamped relative to the run start.
#[derive(Debug, Clone, Copy)]
struct Sample {
    /// Completion time offset from the start of the main phase, seconds.
    at_s: f64,
    latency_ms: f64,
    cached: bool,
}

/// One `stats` poll during the main phase.
#[derive(Debug, Clone, Copy)]
struct StatsPoll {
    at_s: f64,
    cache_hits: f64,
    cache_misses: f64,
    tune_calls: f64,
    coalesced: f64,
}

/// Pre-encoded tune request for one catalog entry.
fn tune_body(m: &waco_tensor::CooMatrix, kernel: Kernel, dense: usize) -> Result<Json> {
    let mut mtx = Vec::new();
    write_matrix_market(&mut mtx, m)
        .map_err(|e| bad(format!("serializing generated matrix: {e}")))?;
    let text = String::from_utf8(mtx).expect("matrix market output is ASCII");
    Ok(request_json("tune", kernel_name(kernel), dense, &text))
}

/// Uniform f64 in [0, 1) from the top 53 bits.
fn unit(rng: &mut Rng64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Zipf CDF over ranks `0..k` with exponent `s` (rank 0 most popular).
fn zipf_cdf(k: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(k);
    for i in 0..k {
        acc += 1.0 / ((i + 1) as f64).powf(s);
        cdf.push(acc);
    }
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

fn zipf_sample(cdf: &[f64], rng: &mut Rng64) -> usize {
    let u = unit(rng);
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Exact percentile (nearest-rank) over an already-sorted slice, in ms.
///
/// Nearest-rank is `ceil(q·n)`, but `q·n` computed in binary can land an
/// ulp above the exact integer (`0.9 × 10 = 9.000000000000002`), and a
/// naive `ceil` then overshoots by a whole rank — at tiny sample counts
/// that silently turns p90/p99/p999 into the max. Snap to the integer when
/// within rounding distance before ceiling.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let raw = q * sorted.len() as f64;
    let rank = if (raw - raw.round()).abs() < 1e-9 {
        raw.round()
    } else {
        raw.ceil()
    };
    sorted[(rank as usize).clamp(1, sorted.len()) - 1]
}

fn u64_field(stats: &Json, section: &str, key: &str) -> f64 {
    stats
        .get(section)
        .and_then(|s| s.get(key))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

/// Phase 1: all connections tune the same fresh fingerprint at once.
fn coalesce_probe(cfg: &LoadgenConfig, body: &Json) -> Result<Json> {
    let mut stats_client = Client::connect(&cfg.addr, cfg.timeout)?;
    let before = stats_client.stats()?;

    let barrier = Arc::new(Barrier::new(cfg.connections));
    let body = Arc::new(body.clone());
    let mut handles = Vec::new();
    for _ in 0..cfg.connections {
        let barrier = Arc::clone(&barrier);
        let body = Arc::clone(&body);
        let addr = cfg.addr.clone();
        let timeout = cfg.timeout;
        handles.push(thread::spawn(
            move || -> std::result::Result<(f64, String), String> {
                let mut client = Client::connect(&addr, timeout).map_err(|e| e.to_string())?;
                barrier.wait();
                let t0 = Instant::now();
                let reply = client.roundtrip(&body).map_err(|e| e.to_string())?;
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                if reply.get("ok").and_then(Json::as_bool) != Some(true) {
                    return Err(format!("probe tune failed: {reply}"));
                }
                let decision = reply
                    .get("decision")
                    .map(|d| d.to_string())
                    .ok_or("probe response carries no decision")?;
                Ok((ms, decision))
            },
        ));
    }
    let mut decisions = Vec::new();
    let mut max_ms = 0.0f64;
    for h in handles {
        let (ms, decision) = h
            .join()
            .expect("probe thread panicked")
            .map_err(|e| bad(format!("coalesce probe: {e}")))?;
        max_ms = max_ms.max(ms);
        decisions.push(decision);
    }
    let identical = decisions.windows(2).all(|w| w[0] == w[1]);

    let after = stats_client.stats()?;
    let tune_calls =
        u64_field(&after, "server", "tune_calls") - u64_field(&before, "server", "tune_calls");
    let coalesced =
        u64_field(&after, "server", "coalesced") - u64_field(&before, "server", "coalesced");
    println!(
        "loadgen: probe connections={} tune_calls={} coalesced={} identical={}",
        cfg.connections, tune_calls, coalesced, identical
    );
    Ok(Json::obj([
        ("connections", Json::num(cfg.connections as f64)),
        ("tune_calls", Json::num(tune_calls)),
        ("coalesced", Json::num(coalesced)),
        ("identical_responses", Json::Bool(identical)),
        ("max_ms", Json::num(max_ms)),
    ]))
}

/// The per-connection arrival schedules: `(offset, catalog index)`.
fn build_schedules(cfg: &LoadgenConfig, rng: &mut Rng64) -> Vec<Vec<(Duration, usize)>> {
    let cdf = zipf_cdf(cfg.fingerprints, cfg.zipf_s);
    let horizon = cfg.duration.as_secs_f64();
    let mut arrivals: Vec<(f64, usize)> = Vec::new();
    match cfg.arrivals {
        Arrivals::Poisson => {
            let mut t = 0.0;
            loop {
                // Exponential gap; guard the log against u == 0.
                t += -(1.0 - unit(rng)).ln() / cfg.rps;
                if t >= horizon {
                    break;
                }
                arrivals.push((t, zipf_sample(&cdf, rng)));
            }
        }
        Arrivals::Burst => {
            let per_burst = cfg.rps.round().max(1.0) as usize;
            let mut second = 0.0;
            while second < horizon {
                for i in 0..per_burst {
                    // A microsecond stagger keeps the schedule strictly
                    // ordered without spreading the burst.
                    arrivals.push((second + i as f64 * 1e-6, zipf_sample(&cdf, rng)));
                }
                second += 1.0;
            }
        }
    }
    let mut schedules = vec![Vec::new(); cfg.connections];
    for (i, (t, idx)) in arrivals.into_iter().enumerate() {
        schedules[i % cfg.connections].push((Duration::from_secs_f64(t), idx));
    }
    schedules
}

/// Phase 2: the open-loop main run. Returns (samples, errors, polls).
fn main_run(
    cfg: &LoadgenConfig,
    bodies: &[Json],
    schedules: Vec<Vec<(Duration, usize)>>,
) -> Result<(Vec<Sample>, u64, Vec<StatsPoll>)> {
    let bodies: Arc<Vec<Json>> = Arc::new(bodies.to_vec());
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let errors = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    // Stats sampler: cumulative counters every ~1/8 of the run (>=100ms).
    let poll_every = Duration::from_secs_f64((cfg.duration.as_secs_f64() / 8.0).max(0.1));
    let sampler = {
        let addr = cfg.addr.clone();
        let timeout = cfg.timeout;
        let done = Arc::clone(&done);
        thread::spawn(move || -> Vec<StatsPoll> {
            let mut polls = Vec::new();
            let Ok(mut client) = Client::connect(&addr, timeout) else {
                return polls;
            };
            while !done.load(Ordering::Acquire) {
                thread::sleep(poll_every);
                let Ok(stats) = client.stats() else { break };
                polls.push(StatsPoll {
                    at_s: start.elapsed().as_secs_f64(),
                    cache_hits: u64_field(&stats, "cache", "hits"),
                    cache_misses: u64_field(&stats, "cache", "misses"),
                    tune_calls: u64_field(&stats, "server", "tune_calls"),
                    coalesced: u64_field(&stats, "server", "coalesced"),
                });
            }
            polls
        })
    };

    let mut pairs = Vec::new();
    for schedule in schedules {
        if schedule.is_empty() {
            continue;
        }
        let sender_client = Client::connect(&cfg.addr, cfg.timeout)?;
        let receiver_client = sender_client.try_clone()?;
        let expected = schedule.len();
        // Send timestamps cross from sender to receiver in FIFO order —
        // the server answers pipelined frames strictly in order.
        let sent: Arc<Mutex<VecDeque<Instant>>> = Arc::new(Mutex::new(VecDeque::new()));

        let send_half = {
            let bodies = Arc::clone(&bodies);
            let sent = Arc::clone(&sent);
            let errors = Arc::clone(&errors);
            let mut client = sender_client;
            thread::spawn(move || {
                for (at, idx) in schedule {
                    let target = start + at;
                    let now = Instant::now();
                    if target > now {
                        thread::sleep(target - now);
                    }
                    sent.lock()
                        .expect("send queue lock")
                        .push_back(Instant::now());
                    if client.send(&bodies[idx]).is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                        sent.lock().expect("send queue lock").pop_back();
                        return;
                    }
                }
            })
        };
        let recv_half = {
            let sent = Arc::clone(&sent);
            let samples = Arc::clone(&samples);
            let errors = Arc::clone(&errors);
            let mut client = receiver_client;
            thread::spawn(move || {
                for _ in 0..expected {
                    let reply = match client.recv() {
                        Ok(r) => r,
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                    // Block until the matching send timestamp is queued
                    // (the server cannot answer before we send, so this
                    // spin resolves immediately in practice).
                    let sent_at = loop {
                        if let Some(t) = sent.lock().expect("send queue lock").pop_front() {
                            break t;
                        }
                        thread::yield_now();
                    };
                    let ok = reply.get("ok").and_then(Json::as_bool) == Some(true);
                    if !ok {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    samples.lock().expect("samples lock").push(Sample {
                        at_s: start.elapsed().as_secs_f64(),
                        latency_ms: sent_at.elapsed().as_secs_f64() * 1e3,
                        cached: reply.get("cached").and_then(Json::as_bool).unwrap_or(false),
                    });
                }
            })
        };
        pairs.push((send_half, recv_half));
    }
    for (s, r) in pairs {
        s.join().expect("sender thread panicked");
        r.join().expect("receiver thread panicked");
    }
    done.store(true, Ordering::Release);
    let polls = sampler.join().expect("stats sampler panicked");

    let samples = Arc::try_unwrap(samples)
        .expect("all sample holders joined")
        .into_inner()
        .expect("samples lock");
    Ok((samples, errors.load(Ordering::Relaxed), polls))
}

/// Overall latency summary from raw samples.
fn latency_json(samples: &[Sample], errors: u64) -> Json {
    let mut sorted: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    let hits = samples.iter().filter(|s| s.cached).count();
    let hit_rate = if samples.is_empty() {
        0.0
    } else {
        hits as f64 / samples.len() as f64
    };
    Json::obj([
        ("count", Json::num(samples.len() as f64)),
        ("errors", Json::num(errors as f64)),
        ("mean_ms", Json::num(mean)),
        ("p50_ms", Json::num(percentile(&sorted, 0.50))),
        ("p90_ms", Json::num(percentile(&sorted, 0.90))),
        ("p99_ms", Json::num(percentile(&sorted, 0.99))),
        ("p999_ms", Json::num(percentile(&sorted, 0.999))),
        ("max_ms", Json::num(sorted.last().copied().unwrap_or(0.0))),
        ("cache_hit_rate", Json::num(hit_rate)),
    ])
}

/// Per-second latency/hit-rate trajectory, bucketed by completion time.
fn trajectory_json(samples: &[Sample], horizon_s: f64) -> Json {
    let buckets = (horizon_s.ceil() as usize).max(1);
    let mut by_bucket: Vec<Vec<&Sample>> = vec![Vec::new(); buckets];
    for s in samples {
        let i = (s.at_s.floor() as usize).min(buckets - 1);
        by_bucket[i].push(s);
    }
    let mut out = Vec::new();
    for (i, bucket) in by_bucket.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let mut sorted: Vec<f64> = bucket.iter().map(|s| s.latency_ms).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let hits = bucket.iter().filter(|s| s.cached).count();
        out.push(Json::obj([
            ("t_s", Json::num((i + 1) as f64)),
            ("count", Json::num(bucket.len() as f64)),
            ("p50_ms", Json::num(percentile(&sorted, 0.50))),
            ("p99_ms", Json::num(percentile(&sorted, 0.99))),
            (
                "cache_hit_rate",
                Json::num(hits as f64 / bucket.len() as f64),
            ),
        ]));
    }
    Json::Arr(out)
}

fn polls_json(polls: &[StatsPoll]) -> Json {
    Json::Arr(
        polls
            .iter()
            .map(|p| {
                let looked = p.cache_hits + p.cache_misses;
                let rate = if looked > 0.0 {
                    p.cache_hits / looked
                } else {
                    0.0
                };
                Json::obj([
                    ("t_s", Json::num(p.at_s)),
                    ("cache_hit_rate", Json::num(rate)),
                    ("tune_calls", Json::num(p.tune_calls)),
                    ("coalesced", Json::num(p.coalesced)),
                ])
            })
            .collect(),
    )
}

/// Entry point for `waco-cli loadgen`.
pub fn loadgen(args: &[String]) -> Result<()> {
    // `--smoke` is a bare flag; strip it before the `--key value` parser.
    let mut args: Vec<String> = args.to_vec();
    let smoke = if let Some(i) = args.iter().position(|a| a == "--smoke") {
        args.remove(i);
        true
    } else {
        false
    };
    let flags = Flags::parse(&args)?;
    let cfg = LoadgenConfig::from_flags(&flags, smoke)?;

    // Catalog: `fingerprints` structurally distinct matrices (distinct
    // seeds → distinct nnz patterns → distinct fingerprints), plus one
    // held-out probe matrix that phase 1 tunes fresh.
    let mut bodies = Vec::with_capacity(cfg.fingerprints);
    for i in 0..cfg.fingerprints {
        let mut rng = Rng64::seed_from(cfg.seed.wrapping_add(1 + i as u64));
        let m = gen::uniform_random(cfg.size, cfg.size, cfg.density, &mut rng);
        bodies.push(tune_body(&m, cfg.kernel, cfg.dense)?);
    }
    let probe_body = {
        let mut rng = Rng64::seed_from(cfg.seed.wrapping_add(0x9E37_79B9));
        let m = gen::uniform_random(cfg.size, cfg.size, cfg.density, &mut rng);
        tune_body(&m, cfg.kernel, cfg.dense)?
    };

    let probe = coalesce_probe(&cfg, &probe_body)?;

    let mut rng = Rng64::seed_from(cfg.seed ^ 0xC0A1_E5CE);
    let schedules = build_schedules(&cfg, &mut rng);
    let offered: usize = schedules.iter().map(Vec::len).sum();
    println!(
        "loadgen: main run {} requests over {:.1}s ({} connections, {:?} arrivals, {} fingerprints)",
        offered,
        cfg.duration.as_secs_f64(),
        cfg.connections,
        cfg.arrivals,
        cfg.fingerprints
    );
    let (samples, errors, polls) = main_run(&cfg, &bodies, schedules)?;

    let latency = latency_json(&samples, errors);
    let p50 = latency.get("p50_ms").and_then(Json::as_f64).unwrap_or(0.0);
    let p99 = latency.get("p99_ms").and_then(Json::as_f64).unwrap_or(0.0);
    let hit_rate = latency
        .get("cache_hit_rate")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    println!(
        "loadgen: {} completed, {} errors, p50={:.2}ms p99={:.2}ms, cache hit rate {:.2}",
        samples.len(),
        errors,
        p50,
        p99,
        hit_rate
    );

    // Final server-side stats snapshot rides along for context.
    let final_stats = Client::connect(&cfg.addr, cfg.timeout)?.stats()?;

    // Routed topology: surface the router's counters as a first-class
    // section so CI can gate on failover behaviour from this one file.
    let router = if cfg.shards > 1 {
        let field = |key: &str| u64_field(&final_stats, "router", key);
        if final_stats.get("router").is_none() {
            eprintln!(
                "warning: --shards {} given but {} reports no router section; \
                 is the address a shard, not a router?",
                cfg.shards, cfg.addr
            );
        } else if field("shards") != cfg.shards as f64 {
            eprintln!(
                "warning: --shards {} given but the router reports {} shards",
                cfg.shards,
                field("shards")
            );
        } else {
            println!(
                "loadgen: router forwarded={} failover={} shard_down={}",
                field("forwarded"),
                field("failover"),
                field("shard_down")
            );
        }
        Some(Json::obj([
            ("shards", Json::num(field("shards"))),
            ("requests", Json::num(field("requests"))),
            ("forwarded", Json::num(field("forwarded"))),
            ("failover", Json::num(field("failover"))),
            ("shard_down", Json::num(field("shard_down"))),
        ]))
    } else {
        None
    };

    let report = Json::obj([
        (
            "config",
            Json::obj([
                ("addr", Json::str(cfg.addr.clone())),
                ("connections", Json::num(cfg.connections as f64)),
                ("duration_s", Json::num(cfg.duration.as_secs_f64())),
                ("rps", Json::num(cfg.rps)),
                ("fingerprints", Json::num(cfg.fingerprints as f64)),
                ("zipf_s", Json::num(cfg.zipf_s)),
                (
                    "arrivals",
                    Json::str(match cfg.arrivals {
                        Arrivals::Poisson => "poisson",
                        Arrivals::Burst => "burst",
                    }),
                ),
                ("kernel", Json::str(kernel_name(cfg.kernel))),
                ("dense_extent", Json::num(cfg.dense as f64)),
                ("size", Json::num(cfg.size as f64)),
                ("seed", Json::num(cfg.seed as f64)),
                ("shards", Json::num(cfg.shards as f64)),
                ("smoke", Json::Bool(smoke)),
            ]),
        ),
        ("coalesce_probe", probe),
        ("latency", latency),
        (
            "trajectory",
            trajectory_json(&samples, cfg.duration.as_secs_f64()),
        ),
        ("stats_trajectory", polls_json(&polls)),
        ("server", final_stats),
    ]);
    let report = match (report, router) {
        (Json::Obj(mut map), Some(r)) => {
            map.insert("router".to_string(), r);
            Json::Obj(map)
        }
        (report, _) => report,
    };

    if let Some(dir) = std::path::Path::new(&cfg.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| bad(format!("creating {}: {e}", dir.display())))?;
        }
    }
    std::fs::write(&cfg.out, format!("{report}\n"))
        .map_err(|e| bad(format!("writing {}: {e}", cfg.out)))?;
    println!("loadgen: wrote {}", cfg.out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_normalized_and_skewed() {
        let cdf = zipf_cdf(8, 1.1);
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        // Rank 0 carries the largest probability mass.
        assert!(cdf[0] > 0.3);
        let mut rng = Rng64::seed_from(7);
        let mut counts = [0usize; 8];
        for _ in 0..4000 {
            counts[zipf_sample(&cdf, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[7], "head rank must dominate the tail");
        assert!(counts.iter().all(|&c| c > 0), "tail still gets sampled");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_survives_fp_rounding_at_tiny_n() {
        // 0.9 × 10 computes as 9.000000000000002; a naive ceil picks rank
        // 10 and reports the max as the p90.
        let v: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.9), 9.0);
        // 0.95 × 20 lands at 19.000000000000004 the same way.
        let v: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.95), 19.0);
        // Exact-integer ranks and genuine fractional ranks still behave.
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.999), 100.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
    }

    #[test]
    fn p999_tracks_the_tail_at_small_and_large_n() {
        // Below 1000 samples p999 is the max (rank ceil(0.999·n) = n)...
        let v: Vec<f64> = (1..=50).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.999), 50.0);
        // ...and at exactly 1000 it is the 999th value, not the max.
        let v: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.999), 999.0);
    }

    #[test]
    fn shards_flag_defaults_to_one_and_rejects_zero() {
        let cfg = LoadgenConfig::from_flags(&flags_with_addr(), false).unwrap();
        assert_eq!(cfg.shards, 1);
        let flags = Flags::parse(&[
            "--addr".to_string(),
            "127.0.0.1:1".to_string(),
            "--shards".to_string(),
            "0".to_string(),
        ])
        .unwrap();
        assert!(LoadgenConfig::from_flags(&flags, false).is_err());
    }

    #[test]
    fn burst_schedule_lands_on_second_boundaries() {
        let mut cfg = LoadgenConfig::from_flags(&flags_with_addr(), false).unwrap();
        cfg.arrivals = Arrivals::Burst;
        cfg.rps = 3.0;
        cfg.duration = Duration::from_secs(2);
        cfg.connections = 2;
        let mut rng = Rng64::seed_from(1);
        let schedules = build_schedules(&cfg, &mut rng);
        let total: usize = schedules.iter().map(Vec::len).sum();
        assert_eq!(total, 6, "2 seconds x 3 rps");
        let all: Vec<f64> = schedules
            .iter()
            .flatten()
            .map(|(t, _)| t.as_secs_f64())
            .collect();
        assert!(
            all.iter().all(|&t| t.fract() < 1e-3),
            "bursts sit on the boundary"
        );
    }

    #[test]
    fn poisson_schedule_respects_horizon_and_rate() {
        let mut cfg = LoadgenConfig::from_flags(&flags_with_addr(), false).unwrap();
        cfg.rps = 200.0;
        cfg.duration = Duration::from_secs(4);
        let mut rng = Rng64::seed_from(2);
        let schedules = build_schedules(&cfg, &mut rng);
        let total: usize = schedules.iter().map(Vec::len).sum();
        // Poisson(800) stays within ~5 sigma of its mean.
        assert!((650..=950).contains(&total), "got {total} arrivals");
        for sched in &schedules {
            assert!(sched.iter().all(|(t, _)| *t < cfg.duration));
            assert!(
                sched.windows(2).all(|w| w[0].0 <= w[1].0),
                "sorted per conn"
            );
        }
    }

    fn flags_with_addr() -> Flags {
        Flags::parse(&["--addr".to_string(), "127.0.0.1:1".to_string()]).unwrap()
    }
}
