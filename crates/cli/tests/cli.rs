//! End-to-end tests of the `waco-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_waco-cli"))
}

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("waco-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("waco-cli gen"));
    assert!(text.contains("tune"));
}

#[test]
fn unknown_command_fails() {
    let out = cli().arg("bogus").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_inspect_bench_roundtrip() {
    let dir = tmpdir();
    let mtx = dir.join("g.mtx");
    let out = cli()
        .args(["gen", "--family", "blocked", "--size", "128", "--out"])
        .arg(&mtx)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    let out = cli().arg("inspect").arg(&mtx).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nonzeros"));
    assert!(text.contains("128 x 128"));

    let out = cli()
        .args(["bench", "--kernel", "spmv"])
        .arg(&mtx)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("configurations"));
}

#[test]
fn gen_rejects_unknown_family() {
    let dir = tmpdir();
    let out = cli()
        .args(["gen", "--family", "nope", "--out"])
        .arg(dir.join("x.mtx"))
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn train_then_tune_with_checkpoint() {
    let dir = tmpdir();
    let mtx = dir.join("t.mtx");
    let ckpt = dir.join("model.ckpt");
    assert!(cli()
        .args(["gen", "--family", "powerlaw", "--size", "96", "--out"])
        .arg(&mtx)
        .status()
        .expect("runs")
        .success());
    // Tiny training budget to keep the test fast.
    let out = cli()
        .args([
            "train",
            "--kernel",
            "spmv",
            "--matrices",
            "4",
            "--size",
            "48",
            "--epochs",
            "2",
            "--out",
        ])
        .arg(&ckpt)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.exists());

    let out = cli()
        .args([
            "tune",
            "--kernel",
            "spmv",
            "--matrices",
            "4",
            "--size",
            "48",
            "--epochs",
            "1",
            "--model",
        ])
        .arg(&ckpt)
        .arg(&mtx)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("WACO chose"), "{text}");
    assert!(text.contains("FixedCSR"));
}

#[test]
fn tune_missing_file_fails_cleanly() {
    let out = cli()
        .args(["tune", "--kernel", "spmv", "/nonexistent/path.mtx"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn errors_exit_with_code_2() {
    // Bad flag value.
    let out = cli()
        .args(["bench", "--dense", "abc", "x.mtx"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error: "), "{err}");
    // Missing input file.
    let out = cli()
        .args(["inspect", "/nonexistent/path.mtx"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    // Unknown command.
    let out = cli().arg("bogus").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_flag_writes_json_with_pipeline_spans() {
    let dir = tmpdir();
    let mtx = dir.join("trace.mtx");
    let trace = dir.join("trace.json");
    assert!(cli()
        .args(["gen", "--family", "uniform", "--size", "64", "--out"])
        .arg(&mtx)
        .status()
        .expect("runs")
        .success());
    let out = cli()
        .args([
            "tune", "--kernel", "spmv", "--matrices", "3", "--size", "48", "--epochs", "1",
            "--trace",
        ])
        .arg(&trace)
        .arg(&mtx)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    // Structured trace: parses as our JSON and carries the extractor/ANNS
    // split that fig16b consumes.
    assert!(text.trim_start().starts_with('{'), "not JSON: {text}");
    assert!(text.contains("\"trace\": \"waco-obs\""), "{text}");
    assert!(text.contains("feature_extraction"), "{text}");
    assert!(text.contains("anns_traversal"), "{text}");
    assert!(text.contains("tune/measure"), "{text}");
    // The span tree went to stderr.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("trace written to"), "{err}");
}
