//! End-to-end tests of the `waco-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_waco-cli"))
}

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("waco-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("waco-cli gen"));
    assert!(text.contains("tune"));
}

#[test]
fn unknown_command_fails() {
    let out = cli().arg("bogus").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_inspect_bench_roundtrip() {
    let dir = tmpdir();
    let mtx = dir.join("g.mtx");
    let out = cli()
        .args(["gen", "--family", "blocked", "--size", "128", "--out"])
        .arg(&mtx)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    let out = cli().arg("inspect").arg(&mtx).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nonzeros"));
    assert!(text.contains("128 x 128"));

    let out = cli()
        .args(["bench", "--kernel", "spmv"])
        .arg(&mtx)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("configurations"));
}

#[test]
fn gen_rejects_unknown_family() {
    let dir = tmpdir();
    let out = cli()
        .args(["gen", "--family", "nope", "--out"])
        .arg(dir.join("x.mtx"))
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn train_then_tune_with_checkpoint() {
    let dir = tmpdir();
    let mtx = dir.join("t.mtx");
    let ckpt = dir.join("model.ckpt");
    assert!(cli()
        .args(["gen", "--family", "powerlaw", "--size", "96", "--out"])
        .arg(&mtx)
        .status()
        .expect("runs")
        .success());
    // Tiny training budget to keep the test fast.
    let out = cli()
        .args([
            "train",
            "--kernel",
            "spmv",
            "--matrices",
            "4",
            "--size",
            "48",
            "--epochs",
            "2",
            "--out",
        ])
        .arg(&ckpt)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.exists());

    let out = cli()
        .args([
            "tune",
            "--kernel",
            "spmv",
            "--matrices",
            "4",
            "--size",
            "48",
            "--epochs",
            "1",
            "--model",
        ])
        .arg(&ckpt)
        .arg(&mtx)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("WACO chose"), "{text}");
    assert!(text.contains("FixedCSR"));
}

#[test]
fn tune_missing_file_fails_cleanly() {
    let out = cli()
        .args(["tune", "--kernel", "spmv", "/nonexistent/path.mtx"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn errors_exit_with_code_2() {
    // Bad flag value.
    let out = cli()
        .args(["bench", "--dense", "abc", "x.mtx"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error: "), "{err}");
    // Missing input file.
    let out = cli()
        .args(["inspect", "/nonexistent/path.mtx"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    // Unknown command.
    let out = cli().arg("bogus").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn serve_and_query_roundtrip_on_ephemeral_port() {
    use std::io::BufRead;

    let dir = tmpdir().join("serve");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create serve dir");
    let mtx = dir.join("q.mtx");
    assert!(cli()
        .args(["gen", "--family", "banded", "--size", "64", "--out"])
        .arg(&mtx)
        .status()
        .expect("runs")
        .success());

    // Bind port 0 and parse the real port from the startup line.
    let trace = dir.join("serve-trace.json");
    let mut server = cli()
        .args(["serve", "--addr", "127.0.0.1:0", "--cache"])
        .arg(dir.join("cache"))
        .arg("--trace")
        .arg(&trace)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut stdout = std::io::BufReader::new(server.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).expect("startup line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();

    let query = |args: &[&str]| {
        let out = cli()
            .args(["query", "--addr", &addr])
            .args(args)
            .output()
            .expect("query runs");
        assert!(
            out.status.success(),
            "query {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    // lookup before tuning: no decision yet.
    let text = query(&["--op", "lookup", "--kernel", "spmv", mtx.to_str().unwrap()]);
    assert!(text.contains("no cached decision"), "{text}");

    // First tune is computed, second is served from cache.
    let text = query(&["--kernel", "spmv", mtx.to_str().unwrap()]);
    assert!(text.contains("computed SpMV decision"), "{text}");
    assert!(text.contains("fingerprint"), "{text}");
    let text = query(&["--kernel", "spmv", mtx.to_str().unwrap()]);
    assert!(text.contains("cached SpMV decision"), "{text}");

    // The hit shows up in stats.
    let text = query(&["--op", "stats"]);
    assert!(text.contains("\"hits\":1"), "{text}");

    // Graceful drain; the server process exits 0 and writes its trace.
    let text = query(&["--op", "shutdown"]);
    assert!(text.contains("shutting down"), "{text}");
    let status = server.wait().expect("server exits");
    assert!(status.success());
    let trace_text = std::fs::read_to_string(&trace).expect("server trace written");
    assert!(trace_text.contains("serve.requests"), "{trace_text}");
}

#[test]
fn serve_rejects_bad_flags() {
    // Missing --cache.
    let out = cli()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--cache"));
    // Non-loopback address.
    let out = cli()
        .args(["serve", "--addr", "8.8.8.8:80", "--cache", "/tmp/x"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    // Query without a server.
    let out = cli()
        .args([
            "query",
            "--op",
            "stats",
            "--timeout",
            "0.5",
            "--addr",
            "127.0.0.1:1",
        ])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_flag_writes_json_with_pipeline_spans() {
    let dir = tmpdir();
    let mtx = dir.join("trace.mtx");
    let trace = dir.join("trace.json");
    assert!(cli()
        .args(["gen", "--family", "uniform", "--size", "64", "--out"])
        .arg(&mtx)
        .status()
        .expect("runs")
        .success());
    let out = cli()
        .args([
            "tune",
            "--kernel",
            "spmv",
            "--matrices",
            "3",
            "--size",
            "48",
            "--epochs",
            "1",
            "--trace",
        ])
        .arg(&trace)
        .arg(&mtx)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    // Structured trace: parses as our JSON and carries the extractor/ANNS
    // split that fig16b consumes.
    assert!(text.trim_start().starts_with('{'), "not JSON: {text}");
    assert!(text.contains("\"trace\": \"waco-obs\""), "{text}");
    assert!(text.contains("feature_extraction"), "{text}");
    assert!(text.contains("anns_traversal"), "{text}");
    assert!(text.contains("tune/measure"), "{text}");
    // The span tree went to stderr.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("trace written to"), "{err}");
}

#[test]
fn plan_dumps_text_and_json() {
    let out = cli()
        .args(["plan", "--kernel", "spmv", "--rows", "64", "--cols", "64"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ExecutionPlan SpMV over [64, 64]"), "{text}");
    assert!(text.contains("parallel_chunk"), "{text}");
    assert!(text.contains("body"), "{text}");

    let out = cli()
        .args([
            "plan", "--kernel", "spmm", "--rows", "32", "--cols", "48", "--dense", "8", "--format",
            "json",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // A wide row-major CSR SpMM is claimed by the register-tiled tier, and
    // the report says why.
    assert!(text.contains("\"fast_path\":\"reg_block_spmm\""), "{text}");
    assert!(text.contains("\"fast_path_reason\":"), "{text}");
    assert!(text.contains("\"sparse_dims\":[32,48]"), "{text}");
    // The dumped schedule must round-trip through the serve wire form.
    assert!(text.contains("\"schedule\":"), "{text}");
}

#[test]
fn plan_rejects_bad_schedule_json() {
    let out = cli()
        .args(["plan", "--kernel", "spmv", "--schedule", "{not json"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--schedule"));
}
