//! ASpT-like adaptive sparse tiling (Hong et al., PPoPP 2019).
//!
//! ASpT reorders the rows of the sparse matrix so that rows sharing column
//! tiles become adjacent, creating dense tiles that are executed with a
//! blocked kernel while the sparse remainder stays CSR-like. We reproduce
//! the two essential mechanisms:
//!
//! * **similarity reordering** — rows are sorted by their column-tile
//!   occupancy signature, clustering rows that touch the same tiles;
//! * **tiled execution** — the reordered matrix runs under a column-tiled
//!   schedule (a large `k` split with a compressed inner level), which is
//!   what converts the clustering into cache reuse.
//!
//! As in the released artifact, only SpMM and SDDMM are supported.

use crate::TunedResult;
use waco_format::{Axis, LevelFormat};
use waco_schedule::{named, FormatSchedule, Kernel, SuperSchedule};
use waco_sim::{Result, Simulator};
use waco_tensor::CooMatrix;

/// Column-tile width used for the similarity signature.
pub const TILE_WIDTH: usize = 32;

/// Reorders rows by their column-tile occupancy signature (rows touching
/// the same tiles become adjacent). Returns the permuted matrix and the
/// permutation (`new_row = position of old row`).
pub fn similarity_reorder(m: &CooMatrix) -> (CooMatrix, Vec<usize>) {
    let ntiles = m.ncols().div_ceil(TILE_WIDTH);
    // Signature: sorted list of occupied tiles (+ nnz for tie-breaking).
    let mut sigs: Vec<(Vec<usize>, usize, usize)> = Vec::with_capacity(m.nrows());
    let mut tiles: Vec<Vec<usize>> = vec![Vec::new(); m.nrows()];
    for (r, c, _) in m.iter() {
        tiles[r].push(c / TILE_WIDTH);
    }
    for (r, mut t) in tiles.into_iter().enumerate() {
        t.sort_unstable();
        t.dedup();
        let nnz = t.len();
        sigs.push((t, nnz, r));
    }
    let _ = ntiles;
    // Sort rows by signature (dense, clustered rows group together).
    sigs.sort();
    let mut perm = vec![0usize; m.nrows()];
    for (new_pos, (_, _, old_row)) in sigs.iter().enumerate() {
        perm[*old_row] = new_pos;
    }
    let permuted = CooMatrix::from_triplets(
        m.nrows(),
        m.ncols(),
        m.iter().map(|(r, c, v)| (perm[r], c, v)),
    )
    .expect("permutation preserves bounds");
    (permuted, perm)
}

/// The tiled schedule ASpT's executor corresponds to in the SuperSchedule
/// space: concordant traversal of a `k`-tiled format
/// (`k1(U) i1(U) k0(C) i0(U)`), fine dynamic chunks.
pub fn aspt_schedule(space: &waco_schedule::Space) -> SuperSchedule {
    let u = LevelFormat::Uncompressed;
    let c = LevelFormat::Compressed;
    let mut splits = vec![1usize; space.kernel.ndims()];
    splits[1] = TILE_WIDTH * 4;
    let fmt = FormatSchedule {
        order: vec![
            Axis::outer(1),
            Axis::outer(0),
            Axis::inner(1),
            Axis::inner(0),
        ],
        formats: vec![u, u, c, u],
    };
    let threads = *space.thread_options.iter().max().expect("non-empty menu");
    let mut sched = named::concordant(space, splits, fmt, threads, 8);
    // ASpT distributes row panels over threads (inside the column-tile
    // loop); for SDDMM the concordant default would otherwise parallelize
    // the short tile loop itself and starve the workers.
    sched.parallel = Some(waco_schedule::Parallelize {
        var: waco_schedule::LoopVar::outer(0),
        threads,
        chunk: 8,
    });
    sched
}

/// Runs the ASpT-like baseline: reorder, tile, simulate.
///
/// `T_tuning` is the reordering inspection (one signature sort);
/// `T_formatconvert` is the tiled-format assembly.
///
/// # Errors
///
/// Simulation failures.
///
/// # Panics
///
/// Panics unless `kernel` is SpMM or SDDMM (the kernels the authors
/// released, §5.1).
pub fn aspt_matrix(
    sim: &Simulator,
    kernel: Kernel,
    m: &CooMatrix,
    dense_extent: usize,
) -> Result<TunedResult> {
    assert!(
        matches!(kernel, Kernel::SpMM | Kernel::SDDMM),
        "ASpT supports SpMM and SDDMM only"
    );
    let (permuted, _) = similarity_reorder(m);
    let space = sim.space_for(kernel, vec![m.nrows(), m.ncols()], dense_extent);
    let sched = aspt_schedule(&space);
    let report = sim.time_matrix(&permuted, &sched, &space)?;
    // Inspection: one pass over nonzeros plus a row sort.
    let tuning = m.nnz() as f64 * 2e-9 + m.nrows() as f64 * (m.nrows().max(2) as f64).log2() * 2e-9;
    Ok(TunedResult {
        name: "ASpT".into(),
        sched,
        kernel_seconds: report.seconds,
        tuning_seconds: tuning,
        convert_seconds: report.convert_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_sim::MachineConfig;
    use waco_tensor::gen::{self, Rng64};
    use waco_tensor::MatrixStats;

    #[test]
    fn reorder_preserves_content() {
        let mut rng = Rng64::seed_from(1);
        let m = gen::uniform_random(64, 64, 0.05, &mut rng);
        let (p, perm) = similarity_reorder(&m);
        assert_eq!(p.nnz(), m.nnz());
        // Every original entry maps to its permuted row.
        for (r, c, v) in m.iter() {
            assert_eq!(p.get(perm[r], c), Some(v));
        }
    }

    #[test]
    fn reorder_clusters_similar_rows() {
        let _rng = Rng64::seed_from(2);
        // Two row families using disjoint column tiles, interleaved.
        let mut triplets = Vec::new();
        for r in 0..64 {
            let base = if r % 2 == 0 { 0 } else { 128 };
            for j in 0..8 {
                triplets.push((r, base + (j * 4 + r % 4) % 64, 1.0f32));
            }
        }
        let m = CooMatrix::from_triplets(64, 256, triplets).unwrap();
        let (p, _) = similarity_reorder(&m);
        // After reordering, adjacent rows should mostly share their tile
        // family: count adjacent pairs whose first tile matches.
        let first_tile = |mat: &CooMatrix, r: usize| {
            mat.iter()
                .find(|&(rr, _, _)| rr == r)
                .map(|(_, c, _)| c / TILE_WIDTH)
        };
        let score = |mat: &CooMatrix| {
            (0..63)
                .filter(|&r| first_tile(mat, r) == first_tile(mat, r + 1))
                .count()
        };
        assert!(
            score(&p) > score(&m),
            "reordering must cluster: {} vs {}",
            score(&p),
            score(&m)
        );
        // Locality statistic should improve too.
        let _ = MatrixStats::compute(&p);
    }

    #[test]
    fn aspt_runs_spmm_and_sddmm() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(3);
        let m = gen::blocked(128, 128, 8, 40, 0.7, &mut rng);
        for kernel in [Kernel::SpMM, Kernel::SDDMM] {
            let r = aspt_matrix(&sim, kernel, &m, 16).unwrap();
            assert!(r.kernel_seconds > 0.0, "{kernel}");
            assert!(r.tuning_seconds > 0.0);
            assert!(r.convert_seconds > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "SpMM and SDDMM only")]
    fn spmv_unsupported() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let m = gen::mesh2d(4, 4);
        let _ = aspt_matrix(&sim, Kernel::SpMV, &m, 0);
    }
}
