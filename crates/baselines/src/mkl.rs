//! MKL-like inspector-executor: schedule-only tuning on a fixed CSR format.
//!
//! Intel MKL's inspector-executor sparse BLAS (§5.1) keeps the format fixed
//! and tunes the execution strategy by inspecting the matrix. We model the
//! inspector as actually timing a small menu of (threads × chunk)
//! candidates — its tuning cost is the sum of those trial runs, which is
//! why MKL's `T_tuning` is small but its reachable space is, too (the
//! "Absence of co-optimization" limitation of §1).

use crate::fixed::space_for_matrix;
use crate::TunedResult;
use waco_schedule::{named, Kernel, LoopVar, Parallelize};
use waco_sim::{Result, Simulator};
use waco_tensor::CooMatrix;

/// The chunk-size menu the inspector tries.
pub const CHUNK_MENU: [usize; 4] = [1, 8, 32, 128];

/// Runs the MKL-like inspector-executor.
///
/// # Errors
///
/// Simulation failures of the default configuration.
///
/// # Panics
///
/// Panics unless `kernel` is SpMV or SpMM (the routines MKL supports,
/// §5.1).
pub fn mkl_like_matrix(
    sim: &Simulator,
    kernel: Kernel,
    m: &CooMatrix,
    dense_extent: usize,
) -> Result<TunedResult> {
    assert!(
        matches!(kernel, Kernel::SpMV | Kernel::SpMM),
        "MKL inspector-executor supports SpMV and SpMM only"
    );
    let space = space_for_matrix(sim, kernel, m, dense_extent);
    let base = named::default_csr(&space);

    let mut tuning = 0.0f64;
    let mut best: Option<(f64, usize, usize)> = None;
    for &threads in &space.thread_options {
        for &chunk in &CHUNK_MENU {
            let mut cand = base.clone();
            cand.parallel = Some(Parallelize {
                var: LoopVar::outer(0),
                threads,
                chunk,
            });
            match sim.time_matrix(m, &cand, &space) {
                Ok(r) => {
                    tuning += r.seconds; // the inspector actually runs it
                    if best.map(|(b, _, _)| r.seconds < b).unwrap_or(true) {
                        best = Some((r.seconds, threads, chunk));
                    }
                }
                Err(_) => continue,
            }
        }
    }
    let (seconds, threads, chunk) = match best {
        Some(b) => b,
        None => {
            let r = sim.time_matrix(m, &base, &space)?;
            let p = base.parallel.expect("default is parallel");
            (r.seconds, p.threads, p.chunk)
        }
    };
    let mut sched = base;
    sched.parallel = Some(Parallelize {
        var: LoopVar::outer(0),
        threads,
        chunk,
    });
    Ok(TunedResult {
        name: "MKL".into(),
        sched,
        kernel_seconds: seconds,
        tuning_seconds: tuning,
        convert_seconds: 0.0, // format stays CSR
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::fixed_csr_matrix;
    use waco_sim::MachineConfig;
    use waco_tensor::gen::{self, Rng64};

    #[test]
    fn mkl_never_loses_to_fixed_csr() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(1);
        for m in [
            gen::powerlaw_rows(256, 256, 8.0, 1.3, &mut rng),
            gen::uniform_random(256, 256, 0.02, &mut rng),
        ] {
            let fixed = fixed_csr_matrix(&sim, Kernel::SpMV, &m, 0).unwrap();
            let mkl = mkl_like_matrix(&sim, Kernel::SpMV, &m, 0).unwrap();
            assert!(
                mkl.kernel_seconds <= fixed.kernel_seconds * 1.0001,
                "inspector tries the fixed config too: {} vs {}",
                mkl.kernel_seconds,
                fixed.kernel_seconds
            );
            assert!(mkl.tuning_seconds > 0.0, "inspection costs time");
        }
    }

    #[test]
    fn skewed_matrix_gets_fine_chunks() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(2);
        let skewed = gen::powerlaw_rows(512, 512, 16.0, 1.5, &mut rng);
        let mkl = mkl_like_matrix(&sim, Kernel::SpMV, &skewed, 0).unwrap();
        let chunk = mkl.sched.parallel.unwrap().chunk;
        assert!(chunk <= 32, "skew should prefer fine chunks, got {chunk}");
    }

    #[test]
    #[should_panic(expected = "SpMV and SpMM only")]
    fn sddmm_unsupported() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let m = gen::mesh2d(4, 4);
        let _ = mkl_like_matrix(&sim, Kernel::SDDMM, &m, 4);
    }
}
