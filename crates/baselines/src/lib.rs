//! The four baselines WACO is compared against (§5.1).
//!
//! * [`fixed::fixed_csr_matrix`] / [`fixed::fixed_csf_tensor`] — **Fixed
//!   CSR**: TACO's default format and schedule (CSR for matrices, CSF for
//!   MTTKRP, OpenMP chunk 128/32). Also serves as the "MKL-Naive"
//!   reference of Figure 17 / Table 8 (a plain CSR kernel with no tuning).
//! * [`mkl::mkl_like_matrix`] — the **MKL inspector-executor**: the format
//!   is pinned to CSR and only the schedule (threads × chunk size) is
//!   tuned, by actually running a small candidate menu — the
//!   schedule-only auto-tuner. SpMV and SpMM only, like the real routines.
//! * [`best_format::best_format_matrix`] / `_tensor` — **BestFormat**:
//!   format-only selection among five candidate formats with concordant
//!   traversal (the Zhao et al. / SpTFS-style classifier; selection here is
//!   oracle-quality, which is *generous* to this baseline).
//! * [`aspt::aspt_matrix`] — **ASpT-like**: adaptive sparse tiling — rows
//!   reordered by column-tile signature to densify tiles, executed with a
//!   tiled schedule. SpMM and SDDMM only, like the released artifact.
//!
//! All baselines produce a [`TunedResult`] with simulated kernel time plus
//! their tuning and format-conversion overheads, so the end-to-end
//! amortization analyses (Figure 17, Table 8) can be reproduced. The input
//! matrix is assumed to arrive in CSR (hence Fixed CSR and MKL pay no
//! conversion, exactly like Table 8's accounting).

pub mod aspt;
pub mod best_format;
pub mod fixed;
pub mod mkl;

use waco_schedule::SuperSchedule;

/// Outcome of running one baseline tuner on one workload.
#[derive(Debug, Clone)]
pub struct TunedResult {
    /// Baseline name (for experiment tables).
    pub name: String,
    /// The chosen format + schedule.
    pub sched: SuperSchedule,
    /// Simulated time of one tuned kernel invocation, seconds.
    pub kernel_seconds: f64,
    /// Simulated tuning time (`T_tuning`), seconds.
    pub tuning_seconds: f64,
    /// Simulated format conversion time (`T_formatconvert`), seconds;
    /// zero when the chosen format is the input CSR.
    pub convert_seconds: f64,
}

impl TunedResult {
    /// End-to-end time for `n_runs` kernel invocations
    /// (`T_tuning + T_formatconvert + n · T_kernel`, §5.6).
    pub fn end_to_end(&self, n_runs: usize) -> f64 {
        self.tuning_seconds + self.convert_seconds + self.kernel_seconds * n_runs as f64
    }
}
