//! BestFormat: format-only selection among a candidate menu.
//!
//! The paper's BestFormat baseline (§5.1) predicts the best of "a handful"
//! of candidate formats with a CNN classifier (Zhao et al. for matrices,
//! SpTFS for tensors) and runs a concordant schedule on it. We select among
//! the same five-candidate menus with an *oracle* (simulating every
//! candidate and taking the true best) — an upper bound on any classifier's
//! quality — and charge as `T_tuning` a classifier-inference cost model
//! (downsample + small CNN: linear in nnz plus a constant).

use crate::TunedResult;
use waco_schedule::{named, Kernel, Space, SuperSchedule};
use waco_sim::{Result, SimError, Simulator};
use waco_tensor::{CooMatrix, CooTensor3};

/// Simulated classifier-inference time: downsampling each nonzero plus a
/// fixed CNN forward pass.
pub fn classifier_seconds(nnz: usize) -> f64 {
    5e-4 + nnz as f64 * 2e-9
}

fn pick_best(
    _sim: &Simulator,
    space: &Space,
    candidates: Vec<(String, Vec<usize>, waco_schedule::FormatSchedule)>,
    mut time: impl FnMut(&SuperSchedule) -> Result<(f64, f64)>,
) -> Result<TunedResult> {
    let threads = *space.thread_options.iter().max().expect("non-empty menu");
    let chunk = 32;
    let mut best: Option<(f64, f64, SuperSchedule, String)> = None;
    for (name, splits, fmt) in candidates {
        let sched = named::concordant(space, splits, fmt, threads, chunk);
        match time(&sched) {
            Ok((seconds, convert)) => {
                // CSR arrives for free; other formats pay conversion.
                let convert = if name == "CSR" { 0.0 } else { convert };
                if best
                    .as_ref()
                    .map(|(b, _, _, _)| seconds < *b)
                    .unwrap_or(true)
                {
                    best = Some((seconds, convert, sched, name));
                }
            }
            Err(_) => continue,
        }
    }
    let (seconds, convert, sched, fmt_name) = best.ok_or(SimError::TooExpensive {
        estimate: f64::INFINITY,
        limit: 0.0,
    })?;
    Ok(TunedResult {
        name: format!("BestFormat({fmt_name})"),
        sched,
        kernel_seconds: seconds,
        tuning_seconds: 0.0, // filled by callers with the classifier cost
        convert_seconds: convert,
    })
}

/// BestFormat for 2-D kernels over the five-candidate menu of
/// [`named::best_format_candidates`].
///
/// # Errors
///
/// When no candidate simulates successfully.
///
/// # Panics
///
/// Panics if `kernel` is MTTKRP (use [`best_format_tensor`]).
pub fn best_format_matrix(
    sim: &Simulator,
    kernel: Kernel,
    m: &CooMatrix,
    dense_extent: usize,
) -> Result<TunedResult> {
    assert_ne!(kernel, Kernel::MTTKRP, "use best_format_tensor for MTTKRP");
    let space = sim.space_for(kernel, vec![m.nrows(), m.ncols()], dense_extent);
    let cands = named::best_format_candidates(&space);
    let mut result = pick_best(sim, &space, cands, |sched| {
        let report = sim.time_matrix(m, sched, &space)?;
        Ok((report.seconds, report.convert_seconds))
    })?;
    result.tuning_seconds = classifier_seconds(m.nnz());
    Ok(result)
}

/// BestFormat for MTTKRP over the SpTFS-style CSF menu.
///
/// # Errors
///
/// When no candidate simulates successfully.
pub fn best_format_tensor(sim: &Simulator, t: &CooTensor3, rank: usize) -> Result<TunedResult> {
    let space = sim.space_for(Kernel::MTTKRP, t.dims().to_vec(), rank);
    let cands = named::best_format_candidates_3d(&space);
    let mut result = pick_best(sim, &space, cands, |sched| {
        let report = sim.time_tensor3(t, sched, &space)?;
        Ok((report.seconds, report.convert_seconds))
    })?;
    // CSF-ikl is the assumed input format for tensors.
    if result.name == "BestFormat(CSF-ikl)" {
        result.convert_seconds = 0.0;
    }
    result.tuning_seconds = classifier_seconds(t.nnz());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{fixed_csf_tensor, fixed_csr_matrix};
    use waco_sim::MachineConfig;
    use waco_tensor::gen::{self, Rng64};

    #[test]
    fn best_format_at_least_matches_csr_candidate() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(1);
        let m = gen::blocked(128, 128, 4, 60, 0.9, &mut rng);
        let bf = best_format_matrix(&sim, Kernel::SpMM, &m, 16).unwrap();
        assert!(bf.kernel_seconds > 0.0);
        assert!(bf.tuning_seconds > 0.0);
        assert!(bf.name.starts_with("BestFormat("));
    }

    #[test]
    fn blocked_matrix_prefers_blocked_or_better_than_fixed() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(2);
        let m = gen::blocked(256, 256, 16, 40, 1.0, &mut rng);
        let fixed = fixed_csr_matrix(&sim, Kernel::SpMV, &m, 0).unwrap();
        let bf = best_format_matrix(&sim, Kernel::SpMV, &m, 0).unwrap();
        // Oracle selection can't be slower than its own CSR candidate, and
        // the concordant CSR candidate ≈ fixed CSR up to chunk defaults.
        assert!(
            bf.kernel_seconds <= fixed.kernel_seconds * 1.5,
            "bf {} vs fixed {}",
            bf.kernel_seconds,
            fixed.kernel_seconds
        );
    }

    #[test]
    fn tensor_menu_works() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(3);
        let t = gen::fibered_tensor3([16, 16, 16], 3, 0.6, &mut rng);
        let fixed = fixed_csf_tensor(&sim, &t, 8).unwrap();
        let bf = best_format_tensor(&sim, &t, 8).unwrap();
        assert!(bf.kernel_seconds <= fixed.kernel_seconds * 1.5);
    }

    #[test]
    fn csr_choice_has_no_conversion_cost() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(4);
        // Uniform scatter strongly favors plain CSR.
        let m = gen::uniform_random(128, 128, 0.01, &mut rng);
        let bf = best_format_matrix(&sim, Kernel::SpMV, &m, 0).unwrap();
        if bf.name == "BestFormat(CSR)" {
            assert_eq!(bf.convert_seconds, 0.0);
        }
    }
}
