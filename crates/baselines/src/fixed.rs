//! Fixed CSR / CSF: TACO defaults, no tuning (also the "MKL-Naive"
//! reference implementation).

use crate::TunedResult;
use waco_schedule::{named, Kernel, Space};
use waco_sim::{Result, Simulator};
use waco_tensor::{CooMatrix, CooTensor3};

/// Fixed CSR for a 2-D kernel: the paper's §5.1 defaults (UC format, chunk
/// 128 for SpMV / 32 otherwise, max threads).
///
/// # Errors
///
/// Simulation failures (over-budget storage, over-limit work).
///
/// # Panics
///
/// Panics if `kernel` is MTTKRP (use [`fixed_csf_tensor`]).
pub fn fixed_csr_matrix(
    sim: &Simulator,
    kernel: Kernel,
    m: &CooMatrix,
    dense_extent: usize,
) -> Result<TunedResult> {
    assert_ne!(kernel, Kernel::MTTKRP, "use fixed_csf_tensor for MTTKRP");
    let space = sim.space_for(kernel, vec![m.nrows(), m.ncols()], dense_extent);
    let sched = named::default_csr(&space);
    let report = sim.time_matrix(m, &sched, &space)?;
    Ok(TunedResult {
        name: "FixedCSR".into(),
        sched,
        kernel_seconds: report.seconds,
        tuning_seconds: 0.0,
        convert_seconds: 0.0, // the input arrives in CSR
    })
}

/// Fixed CSF (CCC) for MTTKRP.
///
/// # Errors
///
/// Simulation failures.
pub fn fixed_csf_tensor(sim: &Simulator, t: &CooTensor3, rank: usize) -> Result<TunedResult> {
    let space = sim.space_for(Kernel::MTTKRP, t.dims().to_vec(), rank);
    let sched = named::default_csr(&space);
    let report = sim.time_tensor3(t, &sched, &space)?;
    Ok(TunedResult {
        name: "FixedCSF".into(),
        sched,
        kernel_seconds: report.seconds,
        tuning_seconds: 0.0,
        convert_seconds: 0.0,
    })
}

/// The schedule space a fixed/tuned baseline works in (shared helper).
pub fn space_for_matrix(
    sim: &Simulator,
    kernel: Kernel,
    m: &CooMatrix,
    dense_extent: usize,
) -> Space {
    sim.space_for(kernel, vec![m.nrows(), m.ncols()], dense_extent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_sim::MachineConfig;
    use waco_tensor::gen::{self, Rng64};

    #[test]
    fn fixed_csr_runs_all_2d_kernels() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(1);
        let m = gen::uniform_random(64, 64, 0.05, &mut rng);
        for kernel in [Kernel::SpMV, Kernel::SpMM, Kernel::SDDMM] {
            let r = fixed_csr_matrix(&sim, kernel, &m, 16).unwrap();
            assert!(r.kernel_seconds > 0.0, "{kernel}");
            assert_eq!(r.tuning_seconds, 0.0);
            assert_eq!(r.convert_seconds, 0.0);
        }
    }

    #[test]
    fn fixed_csf_runs() {
        let sim = Simulator::new(MachineConfig::xeon_like());
        let mut rng = Rng64::seed_from(2);
        let t = gen::random_tensor3([16, 16, 16], 120, &mut rng);
        let r = fixed_csf_tensor(&sim, &t, 8).unwrap();
        assert!(r.kernel_seconds > 0.0);
        assert_eq!(r.name, "FixedCSF");
    }

    #[test]
    fn end_to_end_accounting() {
        let r = TunedResult {
            name: "x".into(),
            sched: named::default_csr(&Space::new(Kernel::SpMV, vec![4, 4], 0)),
            kernel_seconds: 2.0,
            tuning_seconds: 10.0,
            convert_seconds: 5.0,
        };
        assert_eq!(r.end_to_end(0), 15.0);
        assert_eq!(r.end_to_end(3), 21.0);
    }
}
