//! The two-tier tuning cache: sharded in-memory LRU in front of the
//! append-only journal.
//!
//! A [`Decision`] is one tuning outcome — the winning [`SuperSchedule`]
//! plus its simulated costs — keyed by (fingerprint, kernel, dense extent).
//! Lookups hit the LRU only; inserts go to both tiers (journal first, so a
//! crash between the two can at worst lose an in-memory entry that the next
//! reload restores). Reload replays the journal into the LRU, compacting
//! superseded records on the way.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use waco_core::WacoError;
use waco_format::{Axis, AxisPart, LevelFormat};
use waco_schedule::{FormatSchedule, Kernel, LoopVar, Parallelize, SuperSchedule};

use crate::fingerprint::{Fingerprint, Fnv64};
use crate::journal::{Journal, OpenReport};
use crate::json::Json;
use crate::lru::ShardedLru;

/// A cached tuning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Fingerprint of the matrix the decision was tuned for.
    pub fingerprint: Fingerprint,
    /// Kernel the schedule targets.
    pub kernel: Kernel,
    /// Dense extent (`0` for SpMV) the schedule was tuned with.
    pub dense_extent: usize,
    /// The winning format + schedule.
    pub schedule: SuperSchedule,
    /// Simulated time of one tuned kernel invocation, seconds.
    pub kernel_seconds: f64,
    /// Simulated tuning cost that produced the decision, seconds.
    pub tuning_seconds: f64,
}

/// Cache statistics since the cache was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a decision.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Decisions inserted.
    pub inserts: u64,
    /// Entries currently resident in memory.
    pub resident: u64,
    /// Records replayed from the journal at open.
    pub replayed: u64,
}

/// The two-tier tuning cache.
#[derive(Debug)]
pub struct TuningCache {
    lru: ShardedLru<Decision>,
    journal: Mutex<Journal>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    replayed: u64,
}

impl TuningCache {
    /// Opens the cache over a journal file, replaying every recoverable
    /// record into memory. `capacity` bounds the in-memory tier.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] on filesystem failure; corruption in the journal is
    /// repaired, not reported as an error.
    pub fn open(journal_path: impl AsRef<Path>, capacity: usize) -> Result<Self, WacoError> {
        let _span = waco_obs::span("serve.cache.open");
        let (journal, records, report) = Journal::open(journal_path, dead_records)?;
        let lru = ShardedLru::new(capacity);
        let mut replayed = 0u64;
        for rec in &records {
            if let Some(d) = decode_payload(rec) {
                lru.insert(d.key(), d);
                replayed += 1;
            } else {
                // Checksum-valid but semantically unreadable (e.g. hand
                // edits): skip rather than fail the whole cache.
                waco_obs::counter("serve.cache.replay_skipped", 1);
            }
        }
        waco_obs::counter("serve.cache.replayed", replayed);
        report_open(&report);
        Ok(TuningCache {
            lru,
            journal: Mutex::new(journal),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            replayed,
        })
    }

    /// Looks up a decision for `(fingerprint, kernel, dense_extent)`.
    pub fn lookup(
        &self,
        fingerprint: Fingerprint,
        kernel: Kernel,
        dense_extent: usize,
    ) -> Option<Decision> {
        let key = cache_key(fingerprint, kernel, dense_extent);
        match self.lru.get(key) {
            // Shard-hash collisions are possible in principle; serve only an
            // exact match.
            Some(d)
                if d.fingerprint == fingerprint
                    && d.kernel == kernel
                    && d.dense_extent == dense_extent =>
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                waco_obs::counter("serve.cache.hits", 1);
                Some(d)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                waco_obs::counter("serve.cache.misses", 1);
                None
            }
        }
    }

    /// Inserts a decision: journal first, then the in-memory tier.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] if the journal append fails (the LRU is then left
    /// untouched so memory never claims more durability than disk has).
    pub fn insert(&self, decision: Decision) -> Result<(), WacoError> {
        let payload = encode_payload(&decision);
        self.journal
            .lock()
            .expect("journal lock poisoned")
            .append(payload.as_bytes())?;
        self.lru.insert(decision.key(), decision);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        waco_obs::counter("serve.cache.inserts", 1);
        Ok(())
    }

    /// Forces journaled decisions to stable storage.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`].
    pub fn sync(&self) -> Result<(), WacoError> {
        self.journal.lock().expect("journal lock poisoned").sync()
    }

    /// Journal record payloads from record index `from` on, in append order
    /// — what a `sync` response streams to a joining peer. Re-reads the
    /// file, so records appended since open are included.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`].
    pub fn journal_records(&self, from: usize) -> Result<(Vec<Vec<u8>>, usize), WacoError> {
        let records = self
            .journal
            .lock()
            .expect("journal lock poisoned")
            .read_records()?;
        let total = records.len();
        let tail = records.into_iter().skip(from).collect();
        Ok((tail, total))
    }

    /// Ingests one record payload streamed from a peer: append the exact
    /// bytes to the journal (so a fully-streamed journal is byte-identical
    /// to its source) and insert the decoded decision into memory.
    ///
    /// # Errors
    ///
    /// [`WacoError::Checkpoint`] when the payload does not decode to a
    /// decision — the caller must treat the stream as corrupt;
    /// [`WacoError::Io`] on journal failure. On either, the in-memory tier
    /// is untouched.
    pub fn ingest_record(&self, payload: &[u8]) -> Result<(), WacoError> {
        let Some(decision) = decode_payload(payload) else {
            return Err(WacoError::Checkpoint(
                "sync record payload does not decode to a tuning decision".into(),
            ));
        };
        self.journal
            .lock()
            .expect("journal lock poisoned")
            .append(payload)?;
        self.lru.insert(decision.key(), decision);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        waco_obs::counter("serve.cache.inserts", 1);
        Ok(())
    }

    /// Snapshot of hit/miss/insert counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            resident: self.lru.len() as u64,
            replayed: self.replayed,
        }
    }

    /// Maximum in-memory entries.
    pub fn capacity(&self) -> usize {
        self.lru.capacity()
    }
}

impl Decision {
    /// The 64-bit LRU key of this decision.
    pub fn key(&self) -> u64 {
        cache_key(self.fingerprint, self.kernel, self.dense_extent)
    }
}

/// Folds the full cache key (fingerprint × kernel × dense extent) to the
/// 64-bit LRU key.
fn cache_key(fp: Fingerprint, kernel: Kernel, dense_extent: usize) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(fp.hi);
    h.write_u64(fp.lo);
    h.write(kernel_name(kernel).as_bytes());
    h.write_u64(dense_extent as u64);
    h.finish()
}

fn report_open(report: &OpenReport) {
    if report.bytes_truncated > 0 {
        waco_obs::counter("serve.cache.tail_repairs", 1);
    }
    if report.compacted {
        waco_obs::counter("serve.cache.open_compactions", 1);
    }
}

/// Compaction classifier for [`Journal::open`]: a record is dead when a
/// later record carries the same (fingerprint, kernel, dense extent) key.
fn dead_records(records: &[Vec<u8>]) -> Vec<usize> {
    use std::collections::HashMap;
    let mut last: HashMap<u64, usize> = HashMap::new();
    let keys: Vec<Option<u64>> = records
        .iter()
        .map(|r| decode_payload(r).map(|d| d.key()))
        .collect();
    for (i, k) in keys.iter().enumerate() {
        if let Some(k) = k {
            last.insert(*k, i);
        }
    }
    keys.iter()
        .enumerate()
        .filter(|(i, k)| matches!(k, Some(k) if last[k] != *i))
        .map(|(i, _)| i)
        .collect()
}

// --- JSON payload encoding -------------------------------------------------

/// Kernel → lowercase wire name.
pub fn kernel_name(k: Kernel) -> &'static str {
    match k {
        Kernel::SpMV => "spmv",
        Kernel::SpMM => "spmm",
        Kernel::SDDMM => "sddmm",
        Kernel::MTTKRP => "mttkrp",
        Kernel::SpGEMM => "spgemm",
        Kernel::SddmmSpmm => "sddmm_spmm",
    }
}

/// Lowercase wire name → kernel.
pub fn kernel_from_name(name: &str) -> Option<Kernel> {
    match name {
        "spmv" => Some(Kernel::SpMV),
        "spmm" => Some(Kernel::SpMM),
        "sddmm" => Some(Kernel::SDDMM),
        "mttkrp" => Some(Kernel::MTTKRP),
        "spgemm" => Some(Kernel::SpGEMM),
        "sddmm_spmm" => Some(Kernel::SddmmSpmm),
        _ => None,
    }
}

/// Serializes a decision to its JSON journal payload / wire form.
pub fn encode_payload(d: &Decision) -> String {
    decision_to_json(d).to_string()
}

/// Decision → JSON value (shared by the journal and the protocol).
pub fn decision_to_json(d: &Decision) -> Json {
    Json::obj([
        ("fingerprint", Json::str(d.fingerprint.to_string())),
        ("kernel", Json::str(kernel_name(d.kernel))),
        ("dense_extent", Json::num(d.dense_extent as f64)),
        ("schedule", schedule_to_json(&d.schedule)),
        ("kernel_seconds", Json::num(d.kernel_seconds)),
        ("tuning_seconds", Json::num(d.tuning_seconds)),
    ])
}

/// Parses a journal payload back to a decision; `None` on any mismatch.
pub fn decode_payload(bytes: &[u8]) -> Option<Decision> {
    let text = std::str::from_utf8(bytes).ok()?;
    decision_from_json(&Json::parse(text).ok()?)
}

/// JSON value → decision (shared by the journal and the protocol).
pub fn decision_from_json(v: &Json) -> Option<Decision> {
    let kernel = kernel_from_name(v.get("kernel")?.as_str()?)?;
    Some(Decision {
        fingerprint: Fingerprint::parse(v.get("fingerprint")?.as_str()?)?,
        kernel,
        dense_extent: v.get("dense_extent")?.as_u64()? as usize,
        schedule: schedule_from_json(v.get("schedule")?, kernel)?,
        kernel_seconds: v.get("kernel_seconds")?.as_f64()?,
        tuning_seconds: v.get("tuning_seconds")?.as_f64()?,
    })
}

/// SuperSchedule → JSON. Axis/loop-var parts encode as `"o"`/`"i"` pairs,
/// level formats as `"u"`/`"c"`.
pub fn schedule_to_json(s: &SuperSchedule) -> Json {
    let vars = |vars: &[LoopVar]| {
        Json::Arr(
            vars.iter()
                .map(|v| Json::Arr(vec![Json::num(v.dim as f64), Json::str(part_name(v.part))]))
                .collect(),
        )
    };
    let mut obj = vec![
        (
            "splits",
            Json::Arr(s.splits.iter().map(|&x| Json::num(x as f64)).collect()),
        ),
        ("loops", vars(&s.loop_order)),
        (
            "order",
            Json::Arr(
                s.format
                    .order
                    .iter()
                    .map(|a| Json::Arr(vec![Json::num(a.dim as f64), Json::str(part_name(a.part))]))
                    .collect(),
            ),
        ),
        (
            "formats",
            Json::Arr(
                s.format
                    .formats
                    .iter()
                    .map(|f| {
                        Json::str(match f {
                            LevelFormat::Uncompressed => "u",
                            LevelFormat::Compressed => "c",
                        })
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(p) = &s.parallel {
        obj.push((
            "parallel",
            Json::obj([
                ("dim", Json::num(p.var.dim as f64)),
                ("part", Json::str(part_name(p.var.part))),
                ("threads", Json::num(p.threads as f64)),
                ("chunk", Json::num(p.chunk as f64)),
            ]),
        ));
    }
    Json::obj(obj)
}

/// JSON → SuperSchedule for `kernel`; `None` on shape mismatch.
pub fn schedule_from_json(v: &Json, kernel: Kernel) -> Option<SuperSchedule> {
    let splits = v
        .get("splits")?
        .as_arr()?
        .iter()
        .map(|x| x.as_u64().map(|u| u as usize))
        .collect::<Option<Vec<_>>>()?;
    let pair = |item: &Json| -> Option<(usize, AxisPart)> {
        let arr = item.as_arr()?;
        if arr.len() != 2 {
            return None;
        }
        Some((arr[0].as_u64()? as usize, part_from_name(arr[1].as_str()?)?))
    };
    let loop_order = v
        .get("loops")?
        .as_arr()?
        .iter()
        .map(|item| pair(item).map(|(dim, part)| LoopVar { dim, part }))
        .collect::<Option<Vec<_>>>()?;
    let order = v
        .get("order")?
        .as_arr()?
        .iter()
        .map(|item| pair(item).map(|(dim, part)| Axis { dim, part }))
        .collect::<Option<Vec<_>>>()?;
    let formats = v
        .get("formats")?
        .as_arr()?
        .iter()
        .map(|f| match f.as_str()? {
            "u" => Some(LevelFormat::Uncompressed),
            "c" => Some(LevelFormat::Compressed),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()?;
    let parallel = match v.get("parallel") {
        None => None,
        Some(p) => Some(Parallelize {
            var: LoopVar {
                dim: p.get("dim")?.as_u64()? as usize,
                part: part_from_name(p.get("part")?.as_str()?)?,
            },
            threads: p.get("threads")?.as_u64()? as usize,
            chunk: p.get("chunk")?.as_u64()? as usize,
        }),
    };
    Some(SuperSchedule {
        kernel,
        splits,
        loop_order,
        parallel,
        format: FormatSchedule { order, formats },
    })
}

fn part_name(p: AxisPart) -> &'static str {
    match p {
        AxisPart::Outer => "o",
        AxisPart::Inner => "i",
    }
}

fn part_from_name(s: &str) -> Option<AxisPart> {
    match s {
        "o" => Some(AxisPart::Outer),
        "i" => Some(AxisPart::Inner),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use waco_schedule::Space;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("waco-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("tuning.journal")
    }

    fn sample_decision(seed: u64) -> Decision {
        let space = Space::new(Kernel::SpMM, vec![512, 512], 32);
        let sched = waco_schedule::sample::sample_indexed(&space, seed, 42);
        Decision {
            fingerprint: Fingerprint {
                hi: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                lo: !seed,
            },
            kernel: Kernel::SpMM,
            dense_extent: 32,
            schedule: sched,
            kernel_seconds: 1.25e-3 + seed as f64 * 1e-6,
            tuning_seconds: 0.5,
        }
    }

    #[test]
    fn decision_json_roundtrip() {
        for seed in 0..50 {
            let d = sample_decision(seed);
            let back = decode_payload(encode_payload(&d).as_bytes()).unwrap();
            assert_eq!(back, d, "seed {seed}");
        }
    }

    #[test]
    fn insert_lookup_hit_miss() {
        let cache = TuningCache::open(tmp("hitmiss"), 64).unwrap();
        let d = sample_decision(1);
        assert!(cache
            .lookup(d.fingerprint, d.kernel, d.dense_extent)
            .is_none());
        cache.insert(d.clone()).unwrap();
        let hit = cache
            .lookup(d.fingerprint, d.kernel, d.dense_extent)
            .unwrap();
        assert_eq!(hit, d);
        // Different dense extent is a different key.
        assert!(cache.lookup(d.fingerprint, d.kernel, 64).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
    }

    #[test]
    fn survives_reload() {
        let path = tmp("reload");
        let d = sample_decision(2);
        {
            let cache = TuningCache::open(&path, 64).unwrap();
            cache.insert(d.clone()).unwrap();
            cache.sync().unwrap();
        }
        let cache = TuningCache::open(&path, 64).unwrap();
        assert_eq!(cache.stats().replayed, 1);
        let hit = cache
            .lookup(d.fingerprint, d.kernel, d.dense_extent)
            .unwrap();
        assert_eq!(hit, d);
    }

    #[test]
    fn journal_records_and_ingest_roundtrip() {
        let src_path = tmp("stream-src");
        let dst_path = tmp("stream-dst");
        let src = TuningCache::open(&src_path, 64).unwrap();
        let decisions: Vec<Decision> = (0..4).map(sample_decision).collect();
        for d in &decisions {
            src.insert(d.clone()).unwrap();
        }
        let (all, total) = src.journal_records(0).unwrap();
        assert_eq!((all.len(), total), (4, 4));
        let (tail, total) = src.journal_records(3).unwrap();
        assert_eq!((tail.len(), total), (1, 4));
        assert_eq!(tail[0], all[3]);

        // Ingest into a second cache: decisions become live immediately and
        // the two journals are byte-identical.
        let dst = TuningCache::open(&dst_path, 64).unwrap();
        for rec in &all {
            dst.ingest_record(rec).unwrap();
        }
        for d in &decisions {
            assert_eq!(
                dst.lookup(d.fingerprint, d.kernel, d.dense_extent).as_ref(),
                Some(d)
            );
        }
        dst.sync().unwrap();
        src.sync().unwrap();
        assert_eq!(
            std::fs::read(&src_path).unwrap(),
            std::fs::read(&dst_path).unwrap(),
            "streamed journal must be byte-identical to its source"
        );

        // A payload that is not a decision is a typed error, and the cache
        // (both tiers) stays untouched.
        let before = dst.journal_records(0).unwrap().1;
        let err = dst.ingest_record(b"not a decision").unwrap_err();
        assert!(matches!(err, WacoError::Checkpoint(_)));
        assert_eq!(dst.journal_records(0).unwrap().1, before);
    }

    #[test]
    fn updated_key_compacts_on_reload() {
        let path = tmp("compact");
        let mut d = sample_decision(3);
        {
            let cache = TuningCache::open(&path, 64).unwrap();
            for i in 0..5 {
                d.kernel_seconds = 1e-3 * (i + 1) as f64;
                cache.insert(d.clone()).unwrap();
            }
            cache.sync().unwrap();
        }
        let cache = TuningCache::open(&path, 64).unwrap();
        assert_eq!(cache.stats().replayed, 1, "dead versions compacted away");
        let hit = cache
            .lookup(d.fingerprint, d.kernel, d.dense_extent)
            .unwrap();
        assert!((hit.kernel_seconds - 5e-3).abs() < 1e-12, "latest wins");
    }
}
