//! Peer warm-up: stream a running shard's journal into a local cache.
//!
//! A shard joining a ring should not pay cold-tune latency for decisions a
//! peer already holds, so before it starts serving it drains the peer's
//! journal over the `sync` protocol op ([`crate::protocol::sync_request`])
//! and replays it locally. Three properties matter more than speed:
//!
//! * **Resumable** — the stream is addressed by record index, so a dropped
//!   connection mid-stream reconnects and continues from the last offset it
//!   confirmed (up to [`MAX_RECONNECTS`] times) instead of starting over.
//! * **Verified** — every record's FNV-1a 64 checksum is recomputed on
//!   ingest and every payload must decode to a [`crate::Decision`]; any
//!   mismatch is a typed [`WacoError::Checkpoint`], never a partial record.
//! * **All-or-nothing** — records are collected and verified in memory
//!   first and committed to the cache only once the peer reports the stream
//!   complete. A truncated or corrupted stream therefore leaves the joiner
//!   exactly as cold as it started, and it falls back to cold tuning —
//!   degraded, never wrong.
//!
//! Because [`crate::cache::TuningCache::ingest_record`] appends the exact
//! payload bytes, a fully-warmed journal is byte-identical to replaying the
//! source journal locally — the `sync_stream` equivalence test pins this.

use std::time::Duration;

use waco_core::WacoError;

use crate::cache::{decode_payload, TuningCache};
use crate::client::Client;
use crate::fingerprint::fnv1a64;
use crate::json::Json;
use crate::protocol::{sync_batch_from_json, sync_request};

/// Reconnect attempts tolerated across one warm-up before the I/O error is
/// surfaced to the caller.
pub const MAX_RECONNECTS: usize = 3;

/// What a completed warm-up did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Records streamed, verified, and committed.
    pub records: usize,
    /// Response batches the stream took.
    pub batches: usize,
    /// Times the stream resumed after a dropped connection.
    pub resumes: usize,
}

/// Streams the journal of the shard at `addr` into `cache`.
///
/// # Errors
///
/// * [`WacoError::Io`] — connection/socket failure that survived
///   [`MAX_RECONNECTS`] resume attempts.
/// * [`WacoError::Checkpoint`] — a record failed checksum or decision
///   verification, or the peer sent a malformed/error response. The cache
///   is untouched; the caller serves cold.
pub fn warm_from_peer(
    addr: &str,
    timeout: Duration,
    cache: &TuningCache,
) -> Result<SyncReport, WacoError> {
    let _span = waco_obs::span("serve.sync.warm");
    let mut report = SyncReport {
        records: 0,
        batches: 0,
        resumes: 0,
    };
    let mut verified: Vec<String> = Vec::new();
    let mut offset = 0usize;
    let mut reconnects = 0usize;
    let mut client = Client::connect(addr, timeout)?;
    loop {
        let reply = match client.roundtrip(&sync_request(offset)) {
            Ok(r) => r,
            Err(WacoError::Io { .. }) if reconnects < MAX_RECONNECTS => {
                // The peer (or the network) dropped us mid-stream: resume
                // from the last offset whose batch we fully received.
                reconnects += 1;
                report.resumes += 1;
                waco_obs::counter("serve.sync.resumes", 1);
                client = Client::connect(addr, timeout)?;
                continue;
            }
            Err(e) => return Err(e),
        };
        let Some(batch) = sync_batch_from_json(&reply) else {
            let msg = reply
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("peer sent a malformed sync response");
            return Err(WacoError::Checkpoint(format!(
                "sync from {addr} failed: {msg}"
            )));
        };
        for (i, rec) in batch.records.iter().enumerate() {
            if fnv1a64(rec.payload.as_bytes()) != rec.crc {
                waco_obs::counter("serve.sync.corrupt", 1);
                return Err(WacoError::Checkpoint(format!(
                    "sync record {} from {addr} failed checksum verification",
                    offset + i
                )));
            }
            if decode_payload(rec.payload.as_bytes()).is_none() {
                waco_obs::counter("serve.sync.corrupt", 1);
                return Err(WacoError::Checkpoint(format!(
                    "sync record {} from {addr} does not decode to a tuning decision",
                    offset + i
                )));
            }
        }
        if !batch.done && batch.records.is_empty() {
            // A compliant peer always makes progress; a stuck cursor would
            // loop forever.
            return Err(WacoError::Checkpoint(format!(
                "sync from {addr} stalled at offset {offset} with no records"
            )));
        }
        report.batches += 1;
        report.records += batch.records.len();
        offset = batch.next_offset;
        verified.extend(batch.records.into_iter().map(|r| r.payload));
        if batch.done {
            break;
        }
    }

    // Every record arrived and verified: commit. Doing this only now is
    // what makes a failed stream leave the cache byte-for-byte cold.
    for payload in &verified {
        cache.ingest_record(payload.as_bytes())?;
    }
    waco_obs::counter("serve.sync.warmed", report.records as u64);
    Ok(report)
}
