//! Sparsity fingerprints: a compact, deterministic digest of a matrix's
//! sparsity structure used to key cached tuning decisions.
//!
//! WACO's amortization story (PAPER.md §5–6) relies on one cost-model
//! training run serving many deployment-time queries; BestFormat-style
//! format selection goes further and reuses *decisions* across structurally
//! similar matrices. The fingerprint captures the structure signals the cost
//! model itself consumes — dimensions, nnz, row/column population
//! histograms, and the block-density statistics from
//! [`waco_tensor::MatrixStats`] — and hashes a canonical byte encoding of
//! them with two independent FNV-1a 64 passes, yielding a 128-bit digest.
//!
//! Determinism notes:
//! * [`CooMatrix`] sorts and deduplicates on construction, so the digest is
//!   insensitive to the order triplets were supplied in.
//! * Floating-point statistics are quantized (`QUANT` decimal places) before
//!   encoding so that bit-level noise in alternative computation orders
//!   cannot split structurally identical matrices across cache keys.

use std::fmt;

use waco_tensor::{CooMatrix, MatrixStats};

/// Number of log₂ buckets in the row/column population histograms.
/// Bucket `i` counts lines whose nnz `c` satisfies `floor(log2(c)) == i`
/// (empty lines land in bucket 0 alongside singletons' `c = 1`); counts of
/// `2^15` and above saturate into the last bucket.
pub const HIST_BUCKETS: usize = 16;

/// FNV-1a 64-bit offset basis (first pass).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis for the second, independent pass (first pass basis hashed
/// through one FNV step so the two streams decorrelate immediately).
const FNV_OFFSET2: u64 = (FNV_OFFSET ^ 0xa5a5_a5a5_a5a5_a5a5).wrapping_mul(FNV_PRIME);

/// Fixed-point quantization factor for float statistics: 6 decimal places.
const QUANT: f64 = 1e6;

/// Streaming FNV-1a 64-bit hasher. Shared by the fingerprint, the journal
/// record checksums, and the ANNS snapshot trailer — one hash function for
/// every integrity check in the serving layer.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Starts a hasher from the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Starts a hasher from an arbitrary basis (for independent streams).
    pub fn with_basis(basis: u64) -> Self {
        Fnv64(basis)
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// A 128-bit sparsity fingerprint.
///
/// Equal fingerprints indicate (up to hash collision, ~2⁻¹²⁸) matrices whose
/// sparsity structure is indistinguishable to the tuning pipeline, so a
/// cached decision for one applies to the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// First 64 bits (standard FNV-1a basis).
    pub hi: u64,
    /// Second 64 bits (independent basis over the same canonical bytes).
    pub lo: u64,
}

impl Fingerprint {
    /// Computes the fingerprint of a matrix's sparsity structure.
    ///
    /// Values are ignored: two matrices with the same pattern but different
    /// stored numbers fingerprint identically, which is exactly the reuse
    /// granularity of format/schedule decisions.
    pub fn of_matrix(m: &CooMatrix) -> Self {
        let _span = waco_obs::span("serve.fingerprint");
        let bytes = canonical_bytes(m);
        let mut a = Fnv64::new();
        a.write(&bytes);
        let mut b = Fnv64::with_basis(FNV_OFFSET2);
        b.write(&bytes);
        let fp = Fingerprint {
            hi: a.finish(),
            lo: b.finish(),
        };
        waco_obs::counter("serve.fingerprint.computed", 1);
        fp
    }

    /// Parses the `hi:lo` hex form produced by [`fmt::Display`].
    pub fn parse(text: &str) -> Option<Self> {
        let (hi, lo) = text.split_once(':')?;
        Some(Fingerprint {
            hi: u64::from_str_radix(hi, 16).ok()?,
            lo: u64::from_str_radix(lo, 16).ok()?,
        })
    }

    /// Folds the two halves into one `u64` (shard/bucket selection).
    pub fn fold(&self) -> u64 {
        self.hi ^ self.lo.rotate_left(32)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}:{:016x}", self.hi, self.lo)
    }
}

/// Canonical byte encoding of the structure signals. Field order and widths
/// are part of the cache-key contract — changing them invalidates every
/// journal on disk, so bump [`crate::journal::JOURNAL_VERSION`] if you do.
fn canonical_bytes(m: &CooMatrix) -> Vec<u8> {
    let stats = MatrixStats::compute(m);
    let mut out = Vec::with_capacity(64 + HIST_BUCKETS * 16);

    out.extend_from_slice(b"waco-fp-v1");
    push_u64(&mut out, m.nrows() as u64);
    push_u64(&mut out, m.ncols() as u64);
    push_u64(&mut out, m.nnz() as u64);

    for bucket in log2_histogram(&m.row_nnz()) {
        push_u64(&mut out, bucket);
    }
    for bucket in log2_histogram(&m.col_nnz()) {
        push_u64(&mut out, bucket);
    }

    push_u64(&mut out, stats.row_nnz_max as u64);
    push_u64(&mut out, stats.block8_count as u64);
    push_quantized(&mut out, stats.density);
    push_quantized(&mut out, stats.row_cv);
    push_quantized(&mut out, stats.diag_distance_mean);
    push_quantized(&mut out, stats.symmetry);
    push_quantized(&mut out, stats.block8_fill_mean);
    out
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Quantizes a finite statistic to 6 decimal places and encodes the signed
/// fixed-point integer. Non-finite inputs (possible only for degenerate
/// shapes) map to a sentinel.
fn push_quantized(out: &mut Vec<u8>, v: f64) {
    let q: i64 = if v.is_finite() {
        (v * QUANT).round() as i64
    } else {
        i64::MIN
    };
    out.extend_from_slice(&q.to_le_bytes());
}

/// Histogram of per-line populations over log₂ buckets.
fn log2_histogram(counts: &[usize]) -> [u64; HIST_BUCKETS] {
    let mut hist = [0u64; HIST_BUCKETS];
    for &c in counts {
        let bucket = if c <= 1 {
            0
        } else {
            (usize::BITS - 1 - c.leading_zeros()) as usize
        };
        hist[bucket.min(HIST_BUCKETS - 1)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_tensor::gen::{self, Rng64};

    #[test]
    fn deterministic_across_calls() {
        let m = gen::mesh2d(16, 16);
        assert_eq!(Fingerprint::of_matrix(&m), Fingerprint::of_matrix(&m));
    }

    #[test]
    fn entry_order_insensitive() {
        let mut rng = Rng64::seed_from(7);
        let m = gen::uniform_random(64, 64, 0.05, &mut rng);
        let mut trips: Vec<_> = m.iter().collect();
        trips.reverse();
        let shuffled = CooMatrix::from_triplets(m.nrows(), m.ncols(), trips).unwrap();
        assert_eq!(
            Fingerprint::of_matrix(&m),
            Fingerprint::of_matrix(&shuffled)
        );
    }

    #[test]
    fn value_insensitive_pattern_sensitive() {
        let mut rng = Rng64::seed_from(9);
        let m = gen::uniform_random(64, 64, 0.05, &mut rng);
        let rescaled = m.with_uniform_values(42.0);
        assert_eq!(
            Fingerprint::of_matrix(&m),
            Fingerprint::of_matrix(&rescaled)
        );

        let different = gen::uniform_random(64, 64, 0.05, &mut rng);
        assert_ne!(
            Fingerprint::of_matrix(&m),
            Fingerprint::of_matrix(&different),
            "different patterns must not collide"
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        let fp = Fingerprint {
            hi: 0xdead_beef_0000_0001,
            lo: 0x0123_4567_89ab_cdef,
        };
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("nope"), None);
        assert_eq!(Fingerprint::parse("12:zz"), None);
    }

    #[test]
    fn histogram_buckets() {
        let hist = log2_histogram(&[0, 1, 2, 3, 4, 1000, usize::MAX]);
        assert_eq!(hist[0], 2, "0 and 1 share bucket 0");
        assert_eq!(hist[1], 2, "2 and 3");
        assert_eq!(hist[2], 1, "4");
        assert_eq!(hist[9], 1, "1000");
        assert_eq!(hist[HIST_BUCKETS - 1], 1, "saturates");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
