//! A blocking client for the serve protocol — used by `waco query`, the CI
//! smoke test, and the integration tests.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use waco_core::WacoError;
use waco_tensor::{io::write_matrix_market, CooMatrix};

use crate::cache::Decision;
use crate::json::Json;
use crate::protocol::{read_frame, request_json, response_decision, write_frame};

/// Outcome of a `tune`/`lookup` call.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// The decision, when the server had or produced one.
    pub decision: Option<Decision>,
    /// Whether it was served from cache (`tune`) / found (`lookup`).
    pub cached: bool,
}

/// A connected protocol client. One request at a time; requests may be
/// pipelined sequentially on the same connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with a timeout that also bounds each read/write.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] / [`WacoError::InvalidConfig`] on bad addresses.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Client, WacoError> {
        let sockaddr: SocketAddr = addr
            .parse()
            .map_err(|_| WacoError::InvalidConfig(format!("`{addr}` is not a socket address")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)
            .map_err(|e| WacoError::io(format!("connecting to {addr}"), e))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| WacoError::io("configuring socket", e))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| WacoError::io("configuring socket", e))?;
        Ok(Client { stream })
    }

    /// Sends one frame and reads one response frame.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] on socket failure or if the server closed without
    /// responding.
    pub fn roundtrip(&mut self, body: &Json) -> Result<Json, WacoError> {
        self.send(body)?;
        self.recv()
    }

    /// Sends one request frame without waiting for the response — the
    /// server answers pipelined requests strictly in order, so `N` sends
    /// followed by `N` [`Client::recv`]s pair up positionally. The load
    /// generator uses this split from two threads over
    /// [`Client::try_clone`]d halves.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] on socket failure.
    pub fn send(&mut self, body: &Json) -> Result<(), WacoError> {
        write_frame(&mut self.stream, body)
    }

    /// Reads one response frame (see [`Client::send`] for pipelining).
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] on socket failure or if the server closed without
    /// responding.
    pub fn recv(&mut self) -> Result<Json, WacoError> {
        read_frame(&mut self.stream)?.ok_or_else(|| {
            WacoError::io(
                "reading response",
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ),
            )
        })
    }

    /// Duplicates the connection handle so one thread can [`Client::send`]
    /// while another [`Client::recv`]s.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] if the socket cannot be duplicated.
    pub fn try_clone(&self) -> Result<Client, WacoError> {
        Ok(Client {
            stream: self
                .stream
                .try_clone()
                .map_err(|e| WacoError::io("cloning client socket", e))?,
        })
    }

    /// `tune` for an in-memory matrix: serialize, send, decode.
    ///
    /// # Errors
    ///
    /// Socket errors, or [`WacoError::Infeasible`]-style errors relayed
    /// from the server as [`WacoError::InvalidConfig`] messages.
    pub fn tune(
        &mut self,
        m: &CooMatrix,
        kernel: &str,
        dense_extent: usize,
    ) -> Result<QueryReply, WacoError> {
        self.matrix_request("tune", m, kernel, dense_extent)
    }

    /// `lookup` for an in-memory matrix (never triggers tuning).
    ///
    /// # Errors
    ///
    /// As [`Client::tune`].
    pub fn lookup(
        &mut self,
        m: &CooMatrix,
        kernel: &str,
        dense_extent: usize,
    ) -> Result<QueryReply, WacoError> {
        self.matrix_request("lookup", m, kernel, dense_extent)
    }

    /// Fetches the stats document.
    ///
    /// # Errors
    ///
    /// Socket errors or a server-side error response.
    pub fn stats(&mut self) -> Result<Json, WacoError> {
        let reply = self.roundtrip(&Json::obj([("op", Json::str("stats"))]))?;
        expect_ok(&reply)?;
        Ok(reply)
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// Socket errors or a server-side error response.
    pub fn shutdown(&mut self) -> Result<(), WacoError> {
        let reply = self.roundtrip(&Json::obj([("op", Json::str("shutdown"))]))?;
        expect_ok(&reply)
    }

    fn matrix_request(
        &mut self,
        op: &str,
        m: &CooMatrix,
        kernel: &str,
        dense_extent: usize,
    ) -> Result<QueryReply, WacoError> {
        let mut mtx = Vec::new();
        write_matrix_market(&mut mtx, m)
            .map_err(|e| WacoError::InvalidConfig(format!("serializing matrix: {e}")))?;
        let text = String::from_utf8(mtx).expect("matrix market output is ASCII");
        let reply = self.roundtrip(&request_json(op, kernel, dense_extent, &text))?;
        expect_ok(&reply)?;
        let cached = reply
            .get("cached")
            .or_else(|| reply.get("found"))
            .and_then(Json::as_bool)
            .unwrap_or(false);
        Ok(QueryReply {
            decision: response_decision(&reply),
            cached,
        })
    }
}

/// Turns an `{"ok":false,...}` response into a [`WacoError`].
fn expect_ok(reply: &Json) -> Result<(), WacoError> {
    if reply.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(());
    }
    let msg = reply
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("malformed server response");
    if reply.get("busy").and_then(Json::as_bool) == Some(true) {
        return Err(WacoError::InvalidConfig(format!("server busy: {msg}")));
    }
    Err(WacoError::InvalidConfig(format!("server error: {msg}")))
}
