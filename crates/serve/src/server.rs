//! The request loop: a nonblocking, epoll-multiplexed localhost listener
//! with pipelined framing, off-loop tune execution, and in-flight tune
//! coalescing.
//!
//! Life of a request:
//!
//! 1. A single event-loop thread owns the listener and every connection
//!    (capped by [`ServeConfigBuilder::queue_depth`]; beyond the cap a
//!    connection is answered with a `busy` error frame and closed). All
//!    sockets are nonblocking; readiness comes from
//!    [`waco_runtime::poll::Poller`].
//! 2. Complete frames are decoded straight out of each connection's read
//!    buffer, so a connection may pipeline many requests; responses are
//!    queued per connection and always flushed in request order.
//! 3. Cheap verbs (`stats`, `shutdown`, malformed bodies) are answered on
//!    the loop. `tune`/`lookup` ship to a small executor pool
//!    ([`ServeConfigBuilder::workers`] threads) so matrix parsing and
//!    tuning never stall the loop.
//! 4. **Coalescing:** concurrent `tune` misses for the same
//!    `(fingerprint, kernel, dense extent)` key register as waiters on the
//!    first in-flight tune; the single result answers all of them. Each
//!    waiter increments `serve.tune.coalesced` — under a load spike for one
//!    hot matrix, the tuner runs once.
//! 5. A `shutdown` request (or [`Server::begin_shutdown`]) closes the
//!    listener; the loop drains once every connection is gone, executors
//!    drain their queue, and [`Server::wait`] joins everything and syncs
//!    the journal.
//!
//! Every stage is observable: `serve.requests`, `serve.rejected_busy`,
//! `serve.rejected_timeout`, `serve.tune.calls`, `serve.tune.coalesced`,
//! and a `serve.request_seconds` histogram; the `stats` frame additionally
//! reports an always-on latency histogram (p50/p99) and cache / plan-cache
//! hit rates.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use waco_core::WacoError;
use waco_runtime::poll::{wake_pair, Interest, Poller, WakeReceiver, Waker};
use waco_runtime::ThreadPool;
use waco_schedule::Kernel;
use waco_tensor::io::read_matrix_market;

use crate::cache::{Decision, TuningCache};
use crate::fingerprint::{fnv1a64, Fingerprint};
use crate::json::Json;
use crate::protocol::{
    decode_frame, encode_frame, error_response, lookup_response, sync_response, tune_response,
    Decoded, Frame, Request, SyncRecord,
};
use crate::tuner::Tuner;

/// Records per `sync` response frame. Small enough that one frame stays far
/// under [`crate::protocol::MAX_FRAME_LEN`] even with large schedules, large
/// enough that warming a realistic journal takes a handful of roundtrips.
const SYNC_BATCH: usize = 32;

/// Validated server configuration. Construct via [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    addr: SocketAddr,
    cache_dir: PathBuf,
    cache_capacity: usize,
    workers: usize,
    queue_depth: usize,
    timeout: Duration,
}

impl ServeConfig {
    /// Starts a builder with localhost defaults (ephemeral port, 1024-entry
    /// cache, workers = min(4, pool participants), 64-connection cap, 30 s
    /// idle timeout).
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: None,
            cache_capacity: 1024,
            workers: ThreadPool::global().max_participants().min(4),
            queue_depth: 64,
            timeout_secs: 30.0,
        }
    }

    /// The configured bind address (port 0 = ephemeral).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cache directory.
    pub fn cache_dir(&self) -> &PathBuf {
        &self.cache_dir
    }
}

/// Validating builder for [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    addr: String,
    cache_dir: Option<PathBuf>,
    cache_capacity: usize,
    workers: usize,
    queue_depth: usize,
    timeout_secs: f64,
}

impl ServeConfigBuilder {
    /// Bind address, e.g. `127.0.0.1:7077`. Must be a loopback address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Directory holding the tuning journal (and, via the tuner, index
    /// snapshots). Required.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// In-memory cache capacity (entries).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Number of tune-executor threads (matrix parsing + tuner calls run
    /// here, off the event loop).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Maximum concurrently open connections; excess connections are
    /// answered with a `busy` error frame and closed.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Idle timeout in seconds: a connection with no traffic and no
    /// response in flight for this long is closed.
    pub fn timeout_secs(mut self, secs: f64) -> Self {
        self.timeout_secs = secs;
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// [`WacoError::InvalidConfig`] for a missing cache dir, a non-loopback
    /// or unparseable address, zero workers/queue/capacity, or a
    /// non-positive timeout.
    pub fn build(self) -> Result<ServeConfig, WacoError> {
        let addr: SocketAddr = self.addr.parse().map_err(|_| {
            WacoError::InvalidConfig(format!(
                "serve.addr `{}` is not a socket address",
                self.addr
            ))
        })?;
        if !addr.ip().is_loopback() {
            return Err(WacoError::InvalidConfig(format!(
                "serve.addr `{addr}` is not a loopback address; the tuning service is localhost-only"
            )));
        }
        let cache_dir = self
            .cache_dir
            .ok_or_else(|| WacoError::InvalidConfig("serve.cache_dir is required".into()))?;
        if self.cache_capacity == 0 {
            return Err(WacoError::InvalidConfig(
                "serve.cache_capacity must be at least 1".into(),
            ));
        }
        if self.workers == 0 {
            return Err(WacoError::InvalidConfig(
                "serve.workers must be at least 1".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(WacoError::InvalidConfig(
                "serve.queue_depth must be at least 1".into(),
            ));
        }
        if !(self.timeout_secs > 0.0 && self.timeout_secs.is_finite()) {
            return Err(WacoError::InvalidConfig(format!(
                "serve.timeout_secs must be positive and finite, got {}",
                self.timeout_secs
            )));
        }
        Ok(ServeConfig {
            addr,
            cache_dir,
            cache_capacity: self.cache_capacity,
            workers: self.workers,
            queue_depth: self.queue_depth,
            timeout: Duration::from_secs_f64(self.timeout_secs),
        })
    }
}

// ---------------------------------------------------------------------------
// Always-on latency histogram
// ---------------------------------------------------------------------------

/// Power-of-two microsecond buckets: index `i` counts requests whose
/// service time in µs lies in `[2^(i-1), 2^i)` (index 0 absorbs sub-µs).
/// 40 buckets span past 2^39 µs ≈ 6 days.
const LAT_BUCKETS: usize = 40;

/// Lock-free latency recorder backing the `stats` frame's p50/p99 even when
/// `waco-obs` is not installed. Quantiles interpolate geometrically inside
/// a bucket, so they are exact to within a factor of 2.
struct LatencyHist {
    buckets: [AtomicU64; LAT_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl LatencyHist {
    fn new() -> LatencyHist {
        LatencyHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = (u64::BITS - us.leading_zeros()) as usize;
        self.buckets[idx.min(LAT_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Estimated `q`-quantile in seconds.
    fn quantile_seconds(&self, q: f64) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Bucket i spans [2^(i-1), 2^i) µs; interpolate
                // geometrically by the in-bucket rank fraction.
                let lo_us = if i == 0 {
                    0.5
                } else {
                    (1u64 << (i - 1)) as f64
                };
                let frac = (rank - seen) as f64 / n as f64;
                let est_us = lo_us * 2f64.powf(frac);
                let max_s = self.max_ns.load(Ordering::Relaxed) as f64 * 1e-9;
                return (est_us * 1e-6).min(max_s);
            }
            seen += n;
        }
        self.max_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    fn to_json(&self) -> Json {
        let count = self.count.load(Ordering::Relaxed);
        let mean_s = if count == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9 / count as f64
        };
        Json::obj([
            ("count", Json::num(count as f64)),
            ("mean_ms", Json::num(mean_s * 1e3)),
            ("p50_ms", Json::num(self.quantile_seconds(0.5) * 1e3)),
            ("p99_ms", Json::num(self.quantile_seconds(0.99) * 1e3)),
            (
                "max_ms",
                Json::num(self.max_ns.load(Ordering::Relaxed) as f64 * 1e-6),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

type InflightKey = (Fingerprint, Kernel, usize);

/// A coalesced request waiting on another request's in-flight tune.
struct Waiter {
    conn: u64,
    slot: u64,
    started: Instant,
}

/// A finished off-loop response on its way back to the event loop.
struct Completion {
    conn: u64,
    slot: u64,
    body: Json,
    started: Instant,
}

/// What an off-loop job does.
enum JobKind {
    /// `tune`/`lookup`: parse the matrix, consult the cache, maybe tune.
    Matrix {
        lookup_only: bool,
        kernel: Kernel,
        dense_extent: usize,
        matrix: String,
    },
    /// `sync`: read one batch of journal records (file I/O off the loop).
    Sync { offset: usize },
}

/// A request shipped to the executor pool.
struct Job {
    conn: u64,
    slot: u64,
    kind: JobKind,
    started: Instant,
}

/// State shared by the event loop, the executors, and [`Server`] handles.
struct Shared {
    cache: TuningCache,
    tuner: Arc<dyn Tuner>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    busy_rejects: AtomicU64,
    timeout_rejects: AtomicU64,
    connections: AtomicUsize,
    tune_calls: AtomicU64,
    coalesced: AtomicU64,
    latency: LatencyHist,
    inflight: Mutex<HashMap<InflightKey, Vec<Waiter>>>,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    timeout: Duration,
}

impl Shared {
    fn complete_all(&self, batch: Vec<Completion>) {
        self.completions
            .lock()
            .expect("completion lock poisoned")
            .extend(batch);
        self.waker.wake();
    }

    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        waco_obs::counter("serve.shutdowns", 1);
        self.waker.wake();
    }
}

// ---------------------------------------------------------------------------
// Executors: matrix parsing, cache consultation, tuning, coalescing
// ---------------------------------------------------------------------------

fn executor_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = rx.lock().expect("job queue lock poisoned").recv();
        let Ok(job) = job else {
            return; // loop exited and the queue is drained
        };
        handle_job(shared, job);
    }
}

fn handle_job(shared: &Shared, job: Job) {
    match &job.kind {
        JobKind::Matrix {
            lookup_only,
            kernel,
            dense_extent,
            matrix,
        } => {
            handle_matrix_job(shared, &job, *lookup_only, *kernel, *dense_extent, matrix);
        }
        JobKind::Sync { offset } => {
            let response = sync_batch_response(shared, *offset);
            complete_one(shared, &job, response);
        }
    }
}

/// Answers one `sync` request: a batch of journal records from `offset`,
/// each with its checksum, plus the resume cursor.
fn sync_batch_response(shared: &Shared, offset: usize) -> Json {
    let _span = waco_obs::span("serve.request.sync");
    let (tail, total) = match shared.cache.journal_records(offset) {
        Ok(v) => v,
        Err(e) => return error_response(&e.to_string(), false),
    };
    let mut records = Vec::with_capacity(tail.len().min(SYNC_BATCH));
    for payload in tail.iter().take(SYNC_BATCH) {
        let Ok(text) = std::str::from_utf8(payload) else {
            // Journal payloads are written as UTF-8 JSON; anything else
            // means local corruption we must not propagate to a peer.
            return error_response("journal holds a non-UTF-8 record; cannot stream it", false);
        };
        records.push(SyncRecord {
            crc: fnv1a64(payload),
            payload: text.to_string(),
        });
    }
    let next_offset = (offset + records.len()).min(total);
    waco_obs::counter("serve.sync.batches", 1);
    waco_obs::counter("serve.sync.records", records.len() as u64);
    sync_response(&records, next_offset, next_offset >= total, total)
}

fn handle_matrix_job(
    shared: &Shared,
    job: &Job,
    lookup_only: bool,
    kernel: Kernel,
    dense_extent: usize,
    matrix: &str,
) {
    let _span = waco_obs::span(if lookup_only {
        "serve.request.lookup"
    } else {
        "serve.request.tune"
    });
    let (m, fp) = match parse_and_fingerprint(matrix) {
        Ok(v) => v,
        Err(e) => return complete_one(shared, job, error_response(&e, false)),
    };
    if lookup_only {
        let found = shared.cache.lookup(fp, kernel, dense_extent);
        return complete_one(shared, job, lookup_response(found.as_ref()));
    }
    if let Some(d) = shared.cache.lookup(fp, kernel, dense_extent) {
        return complete_one(shared, job, tune_response(&d, true));
    }

    // Cache miss: either join an in-flight tune for this key as a waiter, or
    // become the owner and tune once for everyone who piles up meanwhile.
    let key = (fp, kernel, dense_extent);
    {
        let mut inflight = shared.inflight.lock().expect("inflight lock poisoned");
        if let Some(waiters) = inflight.get_mut(&key) {
            waiters.push(Waiter {
                conn: job.conn,
                slot: job.slot,
                started: job.started,
            });
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
            waco_obs::counter("serve.tune.coalesced", 1);
            return;
        }
        inflight.insert(key, Vec::new());
    }

    // Owner path. Re-check the cache: another owner may have finished
    // between our miss above and our registration.
    let response = match shared.cache.lookup(fp, kernel, dense_extent) {
        Some(d) => tune_response(&d, true),
        None => {
            shared.tune_calls.fetch_add(1, Ordering::Relaxed);
            waco_obs::counter("serve.tune.calls", 1);
            match shared.tuner.tune(&m, kernel, dense_extent) {
                Ok(outcome) => {
                    let decision = Decision {
                        fingerprint: fp,
                        kernel,
                        dense_extent,
                        schedule: outcome.schedule,
                        kernel_seconds: outcome.kernel_seconds,
                        tuning_seconds: outcome.tuning_seconds,
                    };
                    if shared.cache.insert(decision.clone()).is_err() {
                        // The decision is still valid; degraded durability is
                        // worth reporting but not worth failing the request.
                        waco_obs::counter("serve.cache.insert_failures", 1);
                    }
                    tune_response(&decision, false)
                }
                Err(e) => error_response(&e.to_string(), false),
            }
        }
    };

    // Deliver the one result to the owner and every coalesced waiter.
    let waiters = shared
        .inflight
        .lock()
        .expect("inflight lock poisoned")
        .remove(&key)
        .unwrap_or_default();
    let mut batch = Vec::with_capacity(1 + waiters.len());
    batch.push(Completion {
        conn: job.conn,
        slot: job.slot,
        body: response.clone(),
        started: job.started,
    });
    for w in waiters {
        batch.push(Completion {
            conn: w.conn,
            slot: w.slot,
            body: response.clone(),
            started: w.started,
        });
    }
    shared.complete_all(batch);
}

fn complete_one(shared: &Shared, job: &Job, body: Json) {
    shared.complete_all(vec![Completion {
        conn: job.conn,
        slot: job.slot,
        body,
        started: job.started,
    }]);
}

pub(crate) fn parse_and_fingerprint(
    matrix: &str,
) -> Result<(waco_tensor::CooMatrix, Fingerprint), String> {
    let m =
        read_matrix_market(matrix.as_bytes()).map_err(|e| format!("parsing inline matrix: {e}"))?;
    let fp = Fingerprint::of_matrix(&m);
    Ok((m, fp))
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_BASE: u64 = 2;

/// A response slot: responses flush strictly in request order, so a slot
/// holds either a finished body or a placeholder for an off-loop request.
enum SlotState {
    Waiting,
    Ready(Json),
}

struct Slot {
    id: u64,
    state: SlotState,
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    pending: VecDeque<Slot>,
    next_slot: u64,
    last_activity: Instant,
    close_after_flush: bool,
    interest: Interest,
}

impl Conn {
    fn push_ready(&mut self, body: &Json) {
        let id = self.next_slot;
        self.next_slot += 1;
        self.pending.push_back(Slot {
            id,
            state: SlotState::Ready(body.clone()),
        });
    }

    fn push_waiting(&mut self) -> u64 {
        let id = self.next_slot;
        self.next_slot += 1;
        self.pending.push_back(Slot {
            id,
            state: SlotState::Waiting,
        });
        id
    }

    /// Whether the idle sweeper may close this connection: nothing buffered
    /// to write and no response in flight.
    fn idle(&self) -> bool {
        self.pending.is_empty() && self.wbuf.is_empty()
    }
}

struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: WakeReceiver,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    jobs: Sender<Job>,
    max_connections: usize,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                if let Some(l) = self.listener.take() {
                    let _ = self.poller.delete(l.as_raw_fd());
                }
            }
            if self.listener.is_none() && self.conns.is_empty() {
                return;
            }
            let timeout = self.wait_budget();
            if self.poller.wait(&mut events, timeout).is_err() {
                return; // poller failure is unrecoverable
            }
            let mut touched = Vec::new();
            for ev in events.iter() {
                match ev.token {
                    TOKEN_LISTENER => self.accept_all(&mut touched),
                    TOKEN_WAKER => self.wake_rx.drain(),
                    token => {
                        if ev.readable && self.conns.contains_key(&token) {
                            self.read_conn(token);
                        }
                        touched.push(token);
                    }
                }
            }
            touched.extend(self.drain_completions());
            touched.sort_unstable();
            touched.dedup();
            for token in touched {
                self.advance(token);
            }
            self.sweep_idle();
        }
    }

    /// How long the poll wait may block: until the earliest idle deadline
    /// among closable connections, capped to a 1 s heartbeat whenever any
    /// connection exists (so stuck flushes cannot wedge the loop), and
    /// unbounded only for an idle listener.
    fn wait_budget(&self) -> Option<Duration> {
        if self.conns.is_empty() {
            return None;
        }
        let now = Instant::now();
        let mut budget = Duration::from_secs(1);
        for c in self.conns.values() {
            if c.idle() {
                let deadline = c.last_activity + self.shared.timeout;
                let remaining = deadline.saturating_duration_since(now);
                budget = budget.min(remaining.max(Duration::from_millis(10)));
            }
        }
        Some(budget)
    }

    fn accept_all(&mut self, touched: &mut Vec<u64>) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn {
                        stream,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        pending: VecDeque::new(),
                        next_slot: 0,
                        last_activity: Instant::now(),
                        close_after_flush: false,
                        interest: Interest::READ,
                    };
                    if self.conns.len() >= self.max_connections {
                        // Over the connection cap: answer busy and close.
                        self.shared.busy_rejects.fetch_add(1, Ordering::Relaxed);
                        waco_obs::counter("serve.rejected_busy", 1);
                        conn.push_ready(&error_response(
                            "server busy: connection limit reached",
                            true,
                        ));
                        conn.close_after_flush = true;
                    }
                    if self
                        .poller
                        .add(conn.stream.as_raw_fd(), token, conn.interest)
                        .is_err()
                    {
                        continue; // the stream drops and resets the peer
                    }
                    self.conns.insert(token, conn);
                    self.shared
                        .connections
                        .store(self.conns.len(), Ordering::Relaxed);
                    touched.push(token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn read_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed; any response still in flight has nobody
                    // left to read it.
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.parse_frames(token);
    }

    fn parse_frames(&mut self, token: u64) {
        let mut consumed = 0;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.close_after_flush {
                break; // framing lost or draining: ignore the tail
            }
            match decode_frame(&conn.rbuf[consumed..]) {
                Decoded::Incomplete => break,
                Decoded::Oversized(msg) => {
                    // Answer, then close: the connection cannot be re-synced.
                    conn.push_ready(&error_response(&msg, false));
                    conn.close_after_flush = true;
                    break;
                }
                Decoded::Complete(n, frame) => {
                    consumed += n;
                    match frame {
                        Frame::Malformed(msg) => {
                            // Framing is intact: answer and keep serving.
                            conn.push_ready(&error_response(&msg, false));
                        }
                        Frame::Body(body) => self.handle_request(token, &body),
                    }
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.rbuf.drain(..consumed);
        }
    }

    fn handle_request(&mut self, token: u64, body: &Json) {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        waco_obs::counter("serve.requests", 1);
        let started = Instant::now();
        let req = match Request::from_json(body) {
            Ok(r) => r,
            Err(e) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.push_ready(&error_response(&e.to_string(), false));
                }
                return;
            }
        };
        let lookup_only = matches!(req, Request::Lookup { .. });
        match req {
            Request::Sync { offset } => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                let slot = conn.push_waiting();
                let job = Job {
                    conn: token,
                    slot,
                    kind: JobKind::Sync { offset },
                    started,
                };
                if self.jobs.send(job).is_err() {
                    self.fill_slot(
                        token,
                        slot,
                        &error_response("server is shutting down", false),
                    );
                }
            }
            Request::Stats => {
                let _span = waco_obs::span("serve.request.stats");
                let response = stats_response(&self.shared);
                self.record_latency(started);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.push_ready(&response);
                }
            }
            Request::Shutdown => {
                let _span = waco_obs::span("serve.request.shutdown");
                self.record_latency(started);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.push_ready(&Json::obj([
                        ("ok", Json::Bool(true)),
                        ("draining", Json::Bool(true)),
                    ]));
                    conn.close_after_flush = true;
                }
                self.shared.begin_shutdown();
            }
            Request::Tune {
                kernel,
                dense_extent,
                matrix,
            }
            | Request::Lookup {
                kernel,
                dense_extent,
                matrix,
            } => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                let slot = conn.push_waiting();
                let job = Job {
                    conn: token,
                    slot,
                    kind: JobKind::Matrix {
                        lookup_only,
                        kernel,
                        dense_extent,
                        matrix,
                    },
                    started,
                };
                if self.jobs.send(job).is_err() {
                    // Executors are gone (shutdown race): fail the slot.
                    self.fill_slot(
                        token,
                        slot,
                        &error_response("server is shutting down", false),
                    );
                }
            }
        }
    }

    fn record_latency(&self, started: Instant) {
        let elapsed = started.elapsed();
        self.shared.latency.record(elapsed);
        waco_obs::record("serve.request_seconds", elapsed.as_secs_f64());
    }

    fn drain_completions(&mut self) -> Vec<u64> {
        let batch: Vec<Completion> = {
            let mut guard = self
                .shared
                .completions
                .lock()
                .expect("completion lock poisoned");
            std::mem::take(&mut *guard)
        };
        let mut touched = Vec::with_capacity(batch.len());
        for c in batch {
            let elapsed = c.started.elapsed();
            self.shared.latency.record(elapsed);
            waco_obs::record("serve.request_seconds", elapsed.as_secs_f64());
            self.fill_slot(c.conn, c.slot, &c.body);
            touched.push(c.conn);
        }
        touched
    }

    fn fill_slot(&mut self, token: u64, slot: u64, body: &Json) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // connection closed while the response was in flight
        };
        if let Some(s) = conn.pending.iter_mut().find(|s| s.id == slot) {
            s.state = SlotState::Ready(body.clone());
        }
    }

    /// Flushes a connection as far as the socket allows: encode the ready
    /// prefix of the slot queue, write, and retune poll interest.
    fn advance(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while let Some(front) = conn.pending.front() {
            match &front.state {
                SlotState::Waiting => break,
                SlotState::Ready(body) => {
                    conn.wbuf.extend_from_slice(&encode_frame(body));
                    conn.pending.pop_front();
                }
            }
        }
        let mut written = 0;
        while written < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[written..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    written += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        conn.wbuf.drain(..written);
        if conn.close_after_flush && conn.wbuf.is_empty() && conn.pending.is_empty() {
            self.close_conn(token);
            return;
        }
        let want = Interest {
            read: !conn.close_after_flush,
            write: !conn.wbuf.is_empty(),
        };
        if want != conn.interest {
            conn.interest = want;
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_err()
            {
                self.close_conn(token);
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
        }
        self.shared
            .connections
            .store(self.conns.len(), Ordering::Relaxed);
    }

    /// Closes connections idle past the timeout. A half-received frame at
    /// expiry counts as a timed-out request (`serve.rejected_timeout`) —
    /// this is what unwedges the loop from peers that die mid-frame.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let timeout = self.shared.timeout;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.idle() && now.duration_since(c.last_activity) > timeout)
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            if let Some(conn) = self.conns.get(&token) {
                if !conn.rbuf.is_empty() {
                    self.shared.timeout_rejects.fetch_add(1, Ordering::Relaxed);
                    waco_obs::counter("serve.rejected_timeout", 1);
                }
            }
            self.close_conn(token);
        }
    }
}

// ---------------------------------------------------------------------------
// Server handle
// ---------------------------------------------------------------------------

/// A running tuning server.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    event_loop: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("executors", &self.executors.len())
            .finish()
    }
}

impl Server {
    /// Binds, opens the cache, and starts the event loop + executor pool.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] when the bind, the cache open, or the poller
    /// creation fails.
    pub fn start(config: ServeConfig, tuner: Arc<dyn Tuner>) -> Result<Server, WacoError> {
        let _span = waco_obs::span("serve.start");
        let cache = TuningCache::open(
            config.cache_dir.join("tuning.journal"),
            config.cache_capacity,
        )?;
        let listener = TcpListener::bind(config.addr)
            .map_err(|e| WacoError::io(format!("binding {}", config.addr), e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| WacoError::io("setting listener nonblocking", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| WacoError::io("reading bound address", e))?;

        let (waker, wake_rx) =
            wake_pair().map_err(|e| WacoError::io("creating event-loop waker", e))?;
        let poller = Poller::new().map_err(|e| WacoError::io("creating poller", e))?;
        poller
            .add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .map_err(|e| WacoError::io("registering listener", e))?;
        poller
            .add(wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)
            .map_err(|e| WacoError::io("registering waker", e))?;

        let shared = Arc::new(Shared {
            cache,
            tuner,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            busy_rejects: AtomicU64::new(0),
            timeout_rejects: AtomicU64::new(0),
            connections: AtomicUsize::new(0),
            tune_calls: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            latency: LatencyHist::new(),
            inflight: Mutex::new(HashMap::new()),
            completions: Mutex::new(Vec::new()),
            waker,
            timeout: config.timeout,
        });

        let (jobs_tx, jobs_rx) = channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let mut executors = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&jobs_rx);
            executors.push(std::thread::spawn(move || executor_loop(&shared, &rx)));
        }

        let event_loop = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut el = EventLoop {
                    max_connections: config.queue_depth,
                    shared,
                    poller,
                    listener: Some(listener),
                    wake_rx,
                    conns: HashMap::new(),
                    next_token: TOKEN_BASE,
                    jobs: jobs_tx,
                };
                el.run();
                // Dropping `el` drops the job sender; executors drain the
                // queue (late completions go nowhere) and exit.
            })
        };

        Ok(Server {
            shared,
            local_addr,
            event_loop: Some(event_loop),
            executors,
        })
    }

    /// The actual bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Flips the drain flag and wakes the loop. Idempotent;
    /// [`Server::wait`] completes the drain.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for drain: joins the event loop and every executor, then syncs
    /// the journal.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] if the final journal sync fails.
    pub fn wait(mut self) -> Result<(), WacoError> {
        if let Some(l) = self.event_loop.take() {
            let _ = l.join();
        }
        for w in self.executors.drain(..) {
            let _ = w.join();
        }
        self.shared.cache.sync()
    }
}

// ---------------------------------------------------------------------------
// The stats frame
// ---------------------------------------------------------------------------

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

fn stats_response(shared: &Shared) -> Json {
    let cache = shared.cache.stats();
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        (
            "cache",
            Json::obj([
                ("hits", Json::num(cache.hits as f64)),
                ("misses", Json::num(cache.misses as f64)),
                ("inserts", Json::num(cache.inserts as f64)),
                ("resident", Json::num(cache.resident as f64)),
                ("replayed", Json::num(cache.replayed as f64)),
                ("capacity", Json::num(shared.cache.capacity() as f64)),
                ("hit_rate", Json::num(rate(cache.hits, cache.misses))),
            ]),
        ),
        (
            "server",
            Json::obj([
                (
                    "requests",
                    Json::num(shared.requests.load(Ordering::Relaxed) as f64),
                ),
                (
                    "rejected_busy",
                    Json::num(shared.busy_rejects.load(Ordering::Relaxed) as f64),
                ),
                (
                    "rejected_timeout",
                    Json::num(shared.timeout_rejects.load(Ordering::Relaxed) as f64),
                ),
                (
                    "connections",
                    Json::num(shared.connections.load(Ordering::Relaxed) as f64),
                ),
                (
                    "tune_calls",
                    Json::num(shared.tune_calls.load(Ordering::Relaxed) as f64),
                ),
                (
                    "coalesced",
                    Json::num(shared.coalesced.load(Ordering::Relaxed) as f64),
                ),
                (
                    "draining",
                    Json::Bool(shared.shutdown.load(Ordering::SeqCst)),
                ),
            ]),
        ),
        ("latency", shared.latency.to_json()),
    ];
    if let Some(pc) = shared.tuner.plan_cache_stats() {
        fields.push((
            "plan_cache",
            Json::obj([
                ("hits", Json::num(pc.hits as f64)),
                ("misses", Json::num(pc.misses as f64)),
                ("resident", Json::num(pc.resident as f64)),
                ("capacity", Json::num(pc.capacity as f64)),
                ("hit_rate", Json::num(rate(pc.hits, pc.misses))),
            ]),
        ));
    }
    if waco_obs::enabled() {
        fields.push(("obs", obs_json()));
    }
    Json::obj(fields)
}

/// Live `waco-obs` counters and histogram quantiles, exported when a
/// subscriber is installed (`waco-cli serve --trace`).
fn obs_json() -> Json {
    let snap = waco_obs::snapshot();
    let counters = Json::Obj(
        snap.counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::num(*v as f64)))
            .collect(),
    );
    let hists = Json::Obj(
        snap.hists
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::obj([
                        ("count", Json::num(h.count as f64)),
                        ("mean", Json::num(h.mean())),
                        ("p50", Json::num(h.quantile(0.5))),
                        ("p99", Json::num(h.quantile(0.99))),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj([("counters", counters), ("hists", hists)])
}
