//! The request loop: a localhost TCP listener, a bounded admission queue,
//! a worker pool, and graceful drain.
//!
//! Life of a request:
//!
//! 1. The acceptor thread accepts a connection and `try_send`s it into a
//!    bounded channel sized by [`ServeConfig`]'s `queue_depth`. A full
//!    queue rejects the connection immediately with a `busy` error frame —
//!    overload sheds load at the door instead of queueing unboundedly.
//! 2. A worker dequeues the connection. If it waited longer than the
//!    per-request timeout, the worker answers with a timeout error and
//!    closes. Otherwise it serves frames until the peer closes (socket
//!    read/write timeouts bound each frame).
//! 3. `tune` requests fingerprint the matrix, consult the two-tier cache,
//!    and only fall through to the [`Tuner`] on a miss; the tuner's
//!    data-parallel work runs on the shared `waco-runtime` pool.
//! 4. A `shutdown` request (or [`Server::begin_shutdown`]) flips the drain
//!    flag and pokes the listener; the acceptor stops, the channel sender
//!    drops, workers drain what was admitted, and [`Server::wait`] joins
//!    everything. The journal is synced on the way out.
//!
//! Every stage is observable: `serve.requests`, `serve.rejected_busy`,
//! `serve.rejected_timeout`, a `serve.queue.depth` histogram, and a span
//! per request op.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use waco_core::WacoError;
use waco_runtime::ThreadPool;
use waco_tensor::io::read_matrix_market;

use crate::cache::{Decision, TuningCache};
use crate::fingerprint::Fingerprint;
use crate::json::Json;
use crate::protocol::{
    error_response, lookup_response, read_frame_lenient, tune_response, write_frame, Frame, Request,
};
use crate::tuner::Tuner;

/// Validated server configuration. Construct via [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    addr: SocketAddr,
    cache_dir: PathBuf,
    cache_capacity: usize,
    workers: usize,
    queue_depth: usize,
    timeout: Duration,
}

impl ServeConfig {
    /// Starts a builder with localhost defaults (ephemeral port, 1024-entry
    /// cache, workers = min(4, pool participants), queue depth 64, 30 s
    /// timeout).
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: None,
            cache_capacity: 1024,
            workers: ThreadPool::global().max_participants().min(4),
            queue_depth: 64,
            timeout_secs: 30.0,
        }
    }

    /// The configured bind address (port 0 = ephemeral).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cache directory.
    pub fn cache_dir(&self) -> &PathBuf {
        &self.cache_dir
    }
}

/// Validating builder for [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    addr: String,
    cache_dir: Option<PathBuf>,
    cache_capacity: usize,
    workers: usize,
    queue_depth: usize,
    timeout_secs: f64,
}

impl ServeConfigBuilder {
    /// Bind address, e.g. `127.0.0.1:7077`. Must be a loopback address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Directory holding the tuning journal (and, via the tuner, index
    /// snapshots). Required.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// In-memory cache capacity (entries).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Number of worker threads serving connections.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Admission queue depth (connections awaiting a worker).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Per-request timeout in seconds (queue wait + socket I/O).
    pub fn timeout_secs(mut self, secs: f64) -> Self {
        self.timeout_secs = secs;
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// [`WacoError::InvalidConfig`] for a missing cache dir, a non-loopback
    /// or unparseable address, zero workers/queue/capacity, or a
    /// non-positive timeout.
    pub fn build(self) -> Result<ServeConfig, WacoError> {
        let addr: SocketAddr = self.addr.parse().map_err(|_| {
            WacoError::InvalidConfig(format!(
                "serve.addr `{}` is not a socket address",
                self.addr
            ))
        })?;
        if !addr.ip().is_loopback() {
            return Err(WacoError::InvalidConfig(format!(
                "serve.addr `{addr}` is not a loopback address; the tuning service is localhost-only"
            )));
        }
        let cache_dir = self
            .cache_dir
            .ok_or_else(|| WacoError::InvalidConfig("serve.cache_dir is required".into()))?;
        if self.cache_capacity == 0 {
            return Err(WacoError::InvalidConfig(
                "serve.cache_capacity must be at least 1".into(),
            ));
        }
        if self.workers == 0 {
            return Err(WacoError::InvalidConfig(
                "serve.workers must be at least 1".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(WacoError::InvalidConfig(
                "serve.queue_depth must be at least 1".into(),
            ));
        }
        if !(self.timeout_secs > 0.0 && self.timeout_secs.is_finite()) {
            return Err(WacoError::InvalidConfig(format!(
                "serve.timeout_secs must be positive and finite, got {}",
                self.timeout_secs
            )));
        }
        Ok(ServeConfig {
            addr,
            cache_dir,
            cache_capacity: self.cache_capacity,
            workers: self.workers,
            queue_depth: self.queue_depth,
            timeout: Duration::from_secs_f64(self.timeout_secs),
        })
    }
}

/// Shared server state.
struct Shared {
    cache: TuningCache,
    tuner: Arc<dyn Tuner>,
    shutdown: AtomicBool,
    queue_len: AtomicUsize,
    requests: AtomicU64,
    busy_rejects: AtomicU64,
    timeout_rejects: AtomicU64,
    timeout: Duration,
}

/// A running tuning server.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Server {
    /// Binds, opens the cache, and starts the acceptor + workers.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] when the bind or the cache open fails.
    pub fn start(config: ServeConfig, tuner: Arc<dyn Tuner>) -> Result<Server, WacoError> {
        let _span = waco_obs::span("serve.start");
        let cache = TuningCache::open(
            config.cache_dir.join("tuning.journal"),
            config.cache_capacity,
        )?;
        let listener = TcpListener::bind(config.addr)
            .map_err(|e| WacoError::io(format!("binding {}", config.addr), e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| WacoError::io("reading bound address", e))?;

        let shared = Arc::new(Shared {
            cache,
            tuner,
            shutdown: AtomicBool::new(false),
            queue_len: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            busy_rejects: AtomicU64::new(0),
            timeout_rejects: AtomicU64::new(0),
            timeout: config.timeout,
        });

        let (tx, rx) = sync_channel::<(TcpStream, Instant)>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    waco_obs::record(
                        "serve.queue.depth",
                        shared.queue_len.load(Ordering::Relaxed) as f64,
                    );
                    match tx.try_send((stream, Instant::now())) {
                        Ok(()) => {
                            shared.queue_len.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Full((mut stream, _))) => {
                            shared.busy_rejects.fetch_add(1, Ordering::Relaxed);
                            waco_obs::counter("serve.rejected_busy", 1);
                            let _ = write_frame(
                                &mut stream,
                                &error_response("server busy: admission queue full", true),
                            );
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                // Dropping `tx` lets workers drain the queue and exit.
            })
        };

        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The actual bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Flips the drain flag and unblocks the acceptor. Idempotent;
    /// [`Server::wait`] completes the drain.
    pub fn begin_shutdown(&self) {
        begin_shutdown(&self.shared, self.local_addr);
    }

    /// Waits for drain: joins the acceptor and every worker, then syncs the
    /// journal.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] if the final journal sync fails.
    pub fn wait(mut self) -> Result<(), WacoError> {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.cache.sync()
    }
}

fn begin_shutdown(shared: &Shared, local_addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    waco_obs::counter("serve.shutdowns", 1);
    // Poke the blocking accept so the acceptor observes the flag.
    let _ = TcpStream::connect(local_addr);
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<(TcpStream, Instant)>>) {
    loop {
        let msg = rx.lock().expect("queue lock poisoned").recv();
        let Ok((stream, admitted)) = msg else {
            return; // sender dropped and queue drained
        };
        shared.queue_len.fetch_sub(1, Ordering::Relaxed);
        if admitted.elapsed() > shared.timeout {
            shared.timeout_rejects.fetch_add(1, Ordering::Relaxed);
            waco_obs::counter("serve.rejected_timeout", 1);
            let mut stream = stream;
            let _ = write_frame(
                &mut stream,
                &error_response("request timed out waiting for a worker", false),
            );
            continue;
        }
        serve_connection(shared, stream);
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.timeout));
    let _ = stream.set_write_timeout(Some(shared.timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let body = match read_frame_lenient(&mut reader) {
            Ok(Some(Frame::Body(b))) => b,
            Ok(Some(Frame::Malformed(msg))) => {
                // Body-level garbage (bad JSON, zero-length frame): framing
                // is intact, so answer and keep serving the connection.
                if write_frame(&mut writer, &error_response(&msg, false)).is_err() {
                    return;
                }
                continue;
            }
            Ok(None) => return, // peer closed cleanly
            Err(WacoError::InvalidConfig(msg)) => {
                // Oversized length prefix: answer, then close (framing is lost).
                let _ = write_frame(&mut writer, &error_response(&msg, false));
                return;
            }
            Err(_) => return, // socket error or timeout
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        waco_obs::counter("serve.requests", 1);
        let started = Instant::now();
        let (response, shutdown) = handle_body(shared, &body);
        waco_obs::record("serve.request_seconds", started.elapsed().as_secs_f64());
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
        if shutdown {
            // The local address is recoverable from the connection itself.
            if let Ok(addr) = writer.local_addr() {
                begin_shutdown(shared, addr);
            }
            return;
        }
    }
}

/// Dispatches one request body; returns the response and whether this was a
/// shutdown request.
fn handle_body(shared: &Shared, body: &Json) -> (Json, bool) {
    let req = match Request::from_json(body) {
        Ok(r) => r,
        Err(e) => return (error_response(&e.to_string(), false), false),
    };
    let _span = waco_obs::span_owned(format!("serve.request.{}", req.op()));
    match req {
        Request::Tune {
            kernel,
            dense_extent,
            matrix,
        } => (handle_tune(shared, kernel, dense_extent, &matrix), false),
        Request::Lookup {
            kernel,
            dense_extent,
            matrix,
        } => (handle_lookup(shared, kernel, dense_extent, &matrix), false),
        Request::Stats => (stats_response(shared), false),
        Request::Shutdown => (
            Json::obj([("ok", Json::Bool(true)), ("draining", Json::Bool(true))]),
            true,
        ),
    }
}

fn handle_tune(
    shared: &Shared,
    kernel: waco_schedule::Kernel,
    dense_extent: usize,
    matrix: &str,
) -> Json {
    let (m, fp) = match parse_and_fingerprint(matrix) {
        Ok(v) => v,
        Err(e) => return error_response(&e, false),
    };
    if let Some(decision) = shared.cache.lookup(fp, kernel, dense_extent) {
        return tune_response(&decision, true);
    }
    match shared.tuner.tune(&m, kernel, dense_extent) {
        Ok(outcome) => {
            let decision = Decision {
                fingerprint: fp,
                kernel,
                dense_extent,
                schedule: outcome.schedule,
                kernel_seconds: outcome.kernel_seconds,
                tuning_seconds: outcome.tuning_seconds,
            };
            if let Err(e) = shared.cache.insert(decision.clone()) {
                // The decision is still valid; degraded durability is worth
                // reporting but not worth failing the request.
                waco_obs::counter("serve.cache.insert_failures", 1);
                let _ = e;
            }
            tune_response(&decision, false)
        }
        Err(e) => error_response(&e.to_string(), false),
    }
}

fn handle_lookup(
    shared: &Shared,
    kernel: waco_schedule::Kernel,
    dense_extent: usize,
    matrix: &str,
) -> Json {
    match parse_and_fingerprint(matrix) {
        Ok((_m, fp)) => lookup_response(shared.cache.lookup(fp, kernel, dense_extent).as_ref()),
        Err(e) => error_response(&e, false),
    }
}

fn parse_and_fingerprint(matrix: &str) -> Result<(waco_tensor::CooMatrix, Fingerprint), String> {
    let m =
        read_matrix_market(matrix.as_bytes()).map_err(|e| format!("parsing inline matrix: {e}"))?;
    let fp = Fingerprint::of_matrix(&m);
    Ok((m, fp))
}

fn stats_response(shared: &Shared) -> Json {
    let cache = shared.cache.stats();
    Json::obj([
        ("ok", Json::Bool(true)),
        (
            "cache",
            Json::obj([
                ("hits", Json::num(cache.hits as f64)),
                ("misses", Json::num(cache.misses as f64)),
                ("inserts", Json::num(cache.inserts as f64)),
                ("resident", Json::num(cache.resident as f64)),
                ("replayed", Json::num(cache.replayed as f64)),
                ("capacity", Json::num(shared.cache.capacity() as f64)),
            ]),
        ),
        (
            "server",
            Json::obj([
                (
                    "requests",
                    Json::num(shared.requests.load(Ordering::Relaxed) as f64),
                ),
                (
                    "rejected_busy",
                    Json::num(shared.busy_rejects.load(Ordering::Relaxed) as f64),
                ),
                (
                    "rejected_timeout",
                    Json::num(shared.timeout_rejects.load(Ordering::Relaxed) as f64),
                ),
                (
                    "queue_len",
                    Json::num(shared.queue_len.load(Ordering::Relaxed) as f64),
                ),
                (
                    "draining",
                    Json::Bool(shared.shutdown.load(Ordering::SeqCst)),
                ),
            ]),
        ),
    ])
}
