//! A sharded, capacity-bounded LRU map — the in-memory tier of the tuning
//! cache.
//!
//! Shard count is sized to the `waco-runtime` pool (next power of two ≥
//! participants) so that under full-pool concurrency the expected lock
//! contention per shard is ~1 thread. Each shard is a `Mutex` around a
//! `HashMap` plus a slab-backed intrusive doubly-linked recency list, giving
//! O(1) get/insert/evict without per-access allocation.

use std::collections::HashMap;
use std::sync::Mutex;

use waco_runtime::ThreadPool;

/// Slab sentinel for "no link".
const NIL: usize = usize::MAX;

/// A sharded LRU map with per-shard capacity bounds.
///
/// Total capacity is split evenly across shards (rounded up), so the map
/// holds at most `capacity_per_shard × shards` entries and each shard
/// evicts independently — no global lock anywhere on the hot path.
#[derive(Debug)]
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// `shards.len() - 1`; shard count is a power of two so selection is a
    /// mask, keeping the full 64-bit key entropy in play.
    mask: u64,
    capacity_per_shard: usize,
}

#[derive(Debug)]
struct Shard<V> {
    map: HashMap<u64, usize>,
    slab: Vec<Node<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

#[derive(Debug)]
struct Node<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

impl<V: Clone> ShardedLru<V> {
    /// Creates a map with `capacity` total entries spread over shards sized
    /// to the global `waco-runtime` pool.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, ThreadPool::global().max_participants())
    }

    /// Creates a map with an explicit shard hint (rounded up to a power of
    /// two, at least 1). Exposed for tests; servers use [`ShardedLru::new`].
    pub fn with_shards(capacity: usize, shard_hint: usize) -> Self {
        let shards = shard_hint.max(1).next_power_of_two();
        let capacity_per_shard = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        slab: Vec::new(),
                        free: Vec::new(),
                        head: NIL,
                        tail: NIL,
                    })
                })
                .collect(),
            mask: (shards - 1) as u64,
            capacity_per_shard,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Maximum number of entries the map can hold.
    pub fn capacity(&self) -> usize {
        self.capacity_per_shard * self.shards.len()
    }

    /// Current number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lru shard poisoned").map.len())
            .sum()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut shard = self.shard(key);
        let idx = *shard.map.get(&key)?;
        shard.touch(idx);
        Some(shard.slab[idx].value.clone())
    }

    /// Inserts or replaces `key`, marking it most-recently-used. Evicts the
    /// shard's least-recently-used entry when the shard is at capacity.
    /// Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&self, key: u64, value: V) -> Option<(u64, V)> {
        let mut shard = self.shard(key);
        if let Some(&idx) = shard.map.get(&key) {
            shard.slab[idx].value = value;
            shard.touch(idx);
            return None;
        }
        let evicted = if shard.map.len() >= self.capacity_per_shard {
            shard.evict_lru()
        } else {
            None
        };
        shard.push_front(key, value);
        evicted
    }

    /// Visits every entry (recency order within a shard, most recent first).
    /// Holds one shard lock at a time.
    pub fn for_each(&self, mut f: impl FnMut(u64, &V)) {
        for s in &self.shards {
            let shard = s.lock().expect("lru shard poisoned");
            let mut idx = shard.head;
            while idx != NIL {
                let node = &shard.slab[idx];
                f(node.key, &node.value);
                idx = node.next;
            }
        }
    }

    fn shard(&self, key: u64) -> std::sync::MutexGuard<'_, Shard<V>> {
        // Shard on the high half so the low bits stay available to HashMap.
        let i = ((key >> 32 ^ key) & self.mask) as usize;
        self.shards[i].lock().expect("lru shard poisoned")
    }
}

impl<V> Shard<V> {
    /// Unlinks node `idx` and reinserts it at the head (most recent).
    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.link_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn link_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn push_front(&mut self, key: u64, value: V) {
        let node = Node {
            key,
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = node;
                i
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.link_front(idx);
        self.map.insert(key, idx);
    }

    fn evict_lru(&mut self) -> Option<(u64, V)>
    where
        V: Clone,
    {
        let idx = self.tail;
        if idx == NIL {
            return None;
        }
        self.unlink(idx);
        let key = self.slab[idx].key;
        self.map.remove(&key);
        self.free.push(idx);
        Some((key, self.slab[idx].value.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_insert() {
        let lru = ShardedLru::with_shards(8, 1);
        assert!(lru.is_empty());
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(1), Some("a"));
        assert_eq!(lru.get(3), None);
        lru.insert(1, "a2");
        assert_eq!(lru.get(1), Some("a2"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let lru = ShardedLru::with_shards(2, 1);
        lru.insert(1, 1);
        lru.insert(2, 2);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(lru.get(1), Some(1));
        let evicted = lru.insert(3, 3);
        assert_eq!(evicted, Some((2, 2)));
        assert_eq!(lru.get(2), None);
        assert_eq!(lru.get(1), Some(1));
        assert_eq!(lru.get(3), Some(3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn capacity_never_exceeded_single_thread() {
        let lru = ShardedLru::with_shards(16, 4);
        for k in 0..1000u64 {
            lru.insert(k, k);
            assert!(lru.len() <= lru.capacity());
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedLru::<u8>::with_shards(10, 5).shard_count(), 8);
        assert_eq!(ShardedLru::<u8>::with_shards(10, 1).shard_count(), 1);
        assert_eq!(ShardedLru::<u8>::with_shards(10, 0).shard_count(), 1);
    }

    #[test]
    fn for_each_sees_all_entries() {
        let lru = ShardedLru::with_shards(64, 4);
        for k in 0..32u64 {
            lru.insert(k, k * 10);
        }
        let mut seen = Vec::new();
        lru.for_each(|k, &v| seen.push((k, v)));
        seen.sort_unstable();
        assert_eq!(seen.len(), 32);
        for (i, (k, v)) in seen.iter().enumerate() {
            assert_eq!(*k, i as u64);
            assert_eq!(*v, i as u64 * 10);
        }
    }

    #[test]
    fn slab_slots_are_reused() {
        let lru = ShardedLru::with_shards(1, 1);
        for k in 0..100u64 {
            lru.insert(k, k);
        }
        let shard = lru.shards[0].lock().unwrap();
        assert!(
            shard.slab.len() <= 2,
            "evicted slots must be recycled, slab grew to {}",
            shard.slab.len()
        );
    }
}
