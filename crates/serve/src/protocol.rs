//! The length-prefixed JSON wire protocol spoken by the serve loop.
//!
//! Frame format: a big-endian `u32` byte length followed by exactly that
//! many bytes of UTF-8 JSON. One request frame yields one response frame on
//! the same connection; connections may pipeline sequential requests.
//!
//! Requests (`op` selects the verb):
//! * `{"op":"tune","kernel":"spmm","dense":32,"matrix":"<MatrixMarket>"}` —
//!   fingerprint the matrix, serve from cache or tune and cache.
//! * `{"op":"lookup",...}` — same key derivation, but never tunes.
//! * `{"op":"stats"}` — cache and server counters.
//! * `{"op":"sync","offset":N}` — stream the shard's journal to a joining
//!   peer: one batch of records starting at record index `N`, each carrying
//!   its FNV-1a 64 checksum (hex, since JSON numbers are `f64`), plus the
//!   cursor for the next batch. Offsets make the stream resumable: a peer
//!   that loses its connection mid-stream reconnects and asks again from
//!   where it stopped.
//! * `{"op":"shutdown"}` — begin graceful drain; the response is sent
//!   before the listener closes.
//!
//! Responses always carry `"ok"`: `true` with verb-specific fields, or
//! `false` with a one-line `"error"` (plus `"busy":true` when the admission
//! queue rejected the request).

use std::io::{Read, Write};

use waco_core::WacoError;
use waco_schedule::Kernel;

use crate::cache::{decision_from_json, decision_to_json, kernel_from_name, Decision};
use crate::json::Json;

/// Largest accepted frame body (a matrix uploaded inline can be large, but
/// not unbounded).
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Tune (or serve from cache) a decision for an inline matrix.
    Tune {
        /// Kernel wire name already resolved.
        kernel: Kernel,
        /// Dense extent (columns of the dense operand; 0 for SpMV).
        dense_extent: usize,
        /// Matrix Market text of the sparse operand.
        matrix: String,
    },
    /// Cache-only lookup for an inline matrix; never tunes.
    Lookup {
        /// Kernel wire name already resolved.
        kernel: Kernel,
        /// Dense extent.
        dense_extent: usize,
        /// Matrix Market text.
        matrix: String,
    },
    /// Counter snapshot.
    Stats,
    /// One batch of journal records starting at this record index
    /// (peer-warmup streaming).
    Sync {
        /// Record index of the first record to return.
        offset: usize,
    },
    /// Begin graceful drain.
    Shutdown,
}

impl Request {
    /// Parses a request frame body.
    ///
    /// # Errors
    ///
    /// [`WacoError::InvalidConfig`] with a one-line message suitable for an
    /// error response.
    pub fn from_json(v: &Json) -> Result<Request, WacoError> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| WacoError::InvalidConfig("request missing `op`".into()))?;
        let matrix_key = |v: &Json| -> Result<(Kernel, usize, String), WacoError> {
            let kernel_name = v.get("kernel").and_then(Json::as_str).unwrap_or("spmm");
            let kernel = kernel_from_name(kernel_name).ok_or_else(|| {
                WacoError::InvalidConfig(format!("unknown kernel `{kernel_name}`"))
            })?;
            let dense_extent = match v.get("dense") {
                None => {
                    if kernel == Kernel::SpMV {
                        0
                    } else {
                        32
                    }
                }
                Some(d) => d.as_u64().ok_or_else(|| {
                    WacoError::InvalidConfig("`dense` must be a non-negative integer".into())
                })? as usize,
            };
            let matrix = v
                .get("matrix")
                .and_then(Json::as_str)
                .ok_or_else(|| WacoError::InvalidConfig("request missing `matrix`".into()))?
                .to_string();
            Ok((kernel, dense_extent, matrix))
        };
        match op {
            "tune" => {
                let (kernel, dense_extent, matrix) = matrix_key(v)?;
                Ok(Request::Tune {
                    kernel,
                    dense_extent,
                    matrix,
                })
            }
            "lookup" => {
                let (kernel, dense_extent, matrix) = matrix_key(v)?;
                Ok(Request::Lookup {
                    kernel,
                    dense_extent,
                    matrix,
                })
            }
            "stats" => Ok(Request::Stats),
            "sync" => {
                let offset = match v.get("offset") {
                    None => 0,
                    Some(o) => o.as_u64().ok_or_else(|| {
                        WacoError::InvalidConfig("`offset` must be a non-negative integer".into())
                    })? as usize,
                };
                Ok(Request::Sync { offset })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(WacoError::InvalidConfig(format!("unknown op `{other}`"))),
        }
    }

    /// The verb name, for spans and logs.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Tune { .. } => "tune",
            Request::Lookup { .. } => "lookup",
            Request::Stats => "stats",
            Request::Sync { .. } => "sync",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Builds a `tune`/`lookup` request body (client side).
pub fn request_json(op: &str, kernel: &str, dense_extent: usize, matrix: &str) -> Json {
    Json::obj([
        ("op", Json::str(op)),
        ("kernel", Json::str(kernel)),
        ("dense", Json::num(dense_extent as f64)),
        ("matrix", Json::str(matrix)),
    ])
}

/// Builds a success response for `tune`: the decision plus whether it came
/// from cache.
pub fn tune_response(decision: &Decision, cached: bool) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("cached", Json::Bool(cached)),
        ("decision", decision_to_json(decision)),
    ])
}

/// Builds a success response for `lookup`.
pub fn lookup_response(decision: Option<&Decision>) -> Json {
    match decision {
        Some(d) => Json::obj([
            ("ok", Json::Bool(true)),
            ("found", Json::Bool(true)),
            ("decision", decision_to_json(d)),
        ]),
        None => Json::obj([("ok", Json::Bool(true)), ("found", Json::Bool(false))]),
    }
}

/// One journal record on the sync wire: its FNV-1a 64 checksum and the
/// payload text (journal payloads are the UTF-8 JSON decision encoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncRecord {
    /// FNV-1a 64 of the payload bytes, as computed by the source shard.
    pub crc: u64,
    /// The record payload.
    pub payload: String,
}

/// One parsed `sync` response: a batch of records plus the resume cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncBatch {
    /// Records starting at the requested offset, in journal order.
    pub records: Vec<SyncRecord>,
    /// Record index to request next (equals `total` when `done`).
    pub next_offset: usize,
    /// Whether the journal has no records past `next_offset`.
    pub done: bool,
    /// Total records in the source journal at response time.
    pub total: usize,
}

/// Builds a `sync` request body (client side).
pub fn sync_request(offset: usize) -> Json {
    Json::obj([
        ("op", Json::str("sync")),
        ("offset", Json::num(offset as f64)),
    ])
}

/// Builds a success response for `sync`. Checksums travel as 16-digit hex
/// strings: JSON numbers are `f64` and cannot carry a full `u64`.
pub fn sync_response(records: &[SyncRecord], next_offset: usize, done: bool, total: usize) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        (
            "records",
            Json::Arr(
                records
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("crc", Json::str(format!("{:016x}", r.crc))),
                            ("payload", Json::str(&r.payload)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("next_offset", Json::num(next_offset as f64)),
        ("done", Json::Bool(done)),
        ("total", Json::num(total as f64)),
    ])
}

/// Parses a `sync` response body (client side); `None` on any shape
/// mismatch — a peer speaking a different dialect is a sync failure, not a
/// guess.
pub fn sync_batch_from_json(v: &Json) -> Option<SyncBatch> {
    if !v.get("ok")?.as_bool()? {
        return None;
    }
    let records = v
        .get("records")?
        .as_arr()?
        .iter()
        .map(|r| {
            Some(SyncRecord {
                crc: u64::from_str_radix(r.get("crc")?.as_str()?, 16).ok()?,
                payload: r.get("payload")?.as_str()?.to_string(),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(SyncBatch {
        records,
        next_offset: v.get("next_offset")?.as_u64()? as usize,
        done: v.get("done")?.as_bool()?,
        total: v.get("total")?.as_u64()? as usize,
    })
}

/// Builds an error response; `busy` marks admission-queue rejection so
/// clients can distinguish overload from a bad request.
pub fn error_response(message: &str, busy: bool) -> Json {
    let mut fields = vec![("ok", Json::Bool(false)), ("error", Json::str(message))];
    if busy {
        fields.push(("busy", Json::Bool(true)));
    }
    Json::obj(fields)
}

/// Extracts the decision from a `tune`/`lookup` response body (client side).
pub fn response_decision(v: &Json) -> Option<Decision> {
    decision_from_json(v.get("decision")?)
}

/// Writes one frame: `u32` BE length + JSON bytes.
///
/// # Errors
///
/// [`WacoError::Io`].
pub fn write_frame(w: &mut impl Write, body: &Json) -> Result<(), WacoError> {
    let text = body.to_string();
    let bytes = text.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(WacoError::InvalidConfig(format!(
            "frame of {} bytes exceeds the {} byte cap",
            bytes.len(),
            MAX_FRAME_LEN
        )));
    }
    let mut buf = Vec::with_capacity(4 + bytes.len());
    buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    buf.extend_from_slice(bytes);
    w.write_all(&buf)
        .and_then(|()| w.flush())
        .map_err(|e| WacoError::io("writing protocol frame", e))
}

/// One lenient frame read: distinguishes a body-level problem (the frame
/// was consumed to its advertised length but its bytes are not a JSON
/// document) from framing loss, so a server can answer the former on a
/// still-synchronized connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A parsed JSON body.
    Body(Json),
    /// The body was read in full but is not valid UTF-8 / JSON (this
    /// includes the degenerate zero-length frame). The connection's framing
    /// is intact; the message is suitable for an error response.
    Malformed(String),
}

/// Reads one frame without rejecting malformed bodies. Returns `Ok(None)`
/// on clean EOF before the length prefix (peer closed between requests).
///
/// # Errors
///
/// [`WacoError::Io`] on truncated frames or socket errors,
/// [`WacoError::InvalidConfig`] on an oversized length prefix — both lose
/// framing, so the connection cannot be reused.
pub fn read_frame_lenient(r: &mut impl Read) -> Result<Option<Frame>, WacoError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => {
            r.read_exact(&mut len_buf[n..])
                .map_err(|e| WacoError::io("reading frame length", e))?;
        }
        Err(e) => return Err(WacoError::io("reading frame length", e)),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(WacoError::InvalidConfig(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte cap"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| WacoError::io("reading frame body", e))?;
    let Ok(text) = std::str::from_utf8(&body) else {
        return Ok(Some(Frame::Malformed("frame body is not UTF-8".into())));
    };
    Ok(Some(match Json::parse(text) {
        Ok(v) => Frame::Body(v),
        Err(e) => Frame::Malformed(format!("frame body is not JSON: {e}")),
    }))
}

/// Serializes one frame (`u32` BE length + JSON bytes) to a buffer — the
/// building block for nonblocking writers that cannot use [`write_frame`]'s
/// blocking `Write` contract.
pub fn encode_frame(body: &Json) -> Vec<u8> {
    let text = body.to_string();
    let bytes = text.as_bytes();
    debug_assert!(bytes.len() as u64 <= MAX_FRAME_LEN as u64);
    let mut buf = Vec::with_capacity(4 + bytes.len());
    buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    buf.extend_from_slice(bytes);
    buf
}

/// Outcome of [`decode_frame`] over an accumulation buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Decoded {
    /// The buffer does not yet hold a complete frame; read more bytes.
    Incomplete,
    /// One complete frame: how many bytes it occupied (prefix + body) and
    /// its lenient interpretation (see [`Frame`]).
    Complete(usize, Frame),
    /// The length prefix exceeds [`MAX_FRAME_LEN`]: framing is lost, so the
    /// connection must close after answering with this message.
    Oversized(String),
}

/// Decodes the first frame of `buf` without consuming input — the
/// nonblocking twin of [`read_frame_lenient`], sharing its malformed-body
/// vs framing-loss distinction. Callers drain `consumed` bytes from the
/// buffer on [`Decoded::Complete`].
pub fn decode_frame(buf: &[u8]) -> Decoded {
    if buf.len() < 4 {
        return Decoded::Incomplete;
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME_LEN {
        return Decoded::Oversized(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte cap"
        ));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Decoded::Incomplete;
    }
    let body = &buf[4..total];
    let frame = match std::str::from_utf8(body) {
        Err(_) => Frame::Malformed("frame body is not UTF-8".into()),
        Ok(text) => match Json::parse(text) {
            Ok(v) => Frame::Body(v),
            Err(e) => Frame::Malformed(format!("frame body is not JSON: {e}")),
        },
    };
    Decoded::Complete(total, frame)
}

/// Reads one frame. Returns `Ok(None)` on clean EOF before the length
/// prefix (peer closed between requests).
///
/// # Errors
///
/// [`WacoError::Io`] on truncated frames or socket errors,
/// [`WacoError::InvalidConfig`] on oversized frames or malformed JSON.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, WacoError> {
    match read_frame_lenient(r)? {
        None => Ok(None),
        Some(Frame::Body(v)) => Ok(Some(v)),
        Some(Frame::Malformed(msg)) => Err(WacoError::InvalidConfig(msg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let body = request_json(
            "tune",
            "spmm",
            32,
            "%%MatrixMarket matrix\n1 1 1\n1 1 1.0\n",
        );
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        assert_eq!(&buf[..4], &(buf.len() as u32 - 4).to_be_bytes());
        let mut cursor = &buf[..];
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, body);
        // Clean EOF after the frame.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj([("op", Json::str("stats"))])).unwrap();
        let mut cursor = &buf[..buf.len() - 3];
        assert!(matches!(read_frame(&mut cursor), Err(WacoError::Io { .. })));
    }

    #[test]
    fn oversized_frame_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WacoError::InvalidConfig(_))
        ));
    }

    #[test]
    fn lenient_read_separates_body_errors_from_framing_loss() {
        // Zero-length frame: consumed, malformed, framing intact.
        let buf = 0u32.to_be_bytes();
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame_lenient(&mut cursor).unwrap(),
            Some(Frame::Malformed(_))
        ));
        assert!(cursor.is_empty(), "frame fully consumed");

        // Non-JSON body followed by a valid frame: both readable in turn.
        let mut buf = Vec::new();
        let junk = b"{\"op\":\"sta"; // truncated JSON *inside* a whole frame
        buf.extend_from_slice(&(junk.len() as u32).to_be_bytes());
        buf.extend_from_slice(junk);
        write_frame(&mut buf, &Json::obj([("op", Json::str("stats"))])).unwrap();
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame_lenient(&mut cursor).unwrap(),
            Some(Frame::Malformed(_))
        ));
        assert!(matches!(
            read_frame_lenient(&mut cursor).unwrap(),
            Some(Frame::Body(_))
        ));

        // Non-UTF-8 body.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame_lenient(&mut cursor).unwrap(),
            Some(Frame::Malformed(_))
        ));

        // Oversized length prefix is still a hard (framing-lost) error.
        let buf = (MAX_FRAME_LEN + 1).to_be_bytes();
        assert!(matches!(
            read_frame_lenient(&mut &buf[..]),
            Err(WacoError::InvalidConfig(_))
        ));
    }

    #[test]
    fn buffer_decode_matches_streaming_read() {
        // Pipelined buffer: malformed frame, then a valid one, then a tail.
        let mut buf = Vec::new();
        let junk = b"not json";
        buf.extend_from_slice(&(junk.len() as u32).to_be_bytes());
        buf.extend_from_slice(junk);
        write_frame(&mut buf, &Json::obj([("op", Json::str("stats"))])).unwrap();
        buf.extend_from_slice(&[0, 0]); // partial next prefix

        let Decoded::Complete(n1, Frame::Malformed(_)) = decode_frame(&buf) else {
            panic!("first frame must decode as malformed");
        };
        assert_eq!(n1, 4 + junk.len());
        let Decoded::Complete(n2, Frame::Body(v)) = decode_frame(&buf[n1..]) else {
            panic!("second frame must decode as a body");
        };
        assert_eq!(v.get("op").unwrap().as_str(), Some("stats"));
        assert_eq!(decode_frame(&buf[n1 + n2..]), Decoded::Incomplete);

        // Oversized prefix loses framing.
        let over = (MAX_FRAME_LEN + 1).to_be_bytes();
        assert!(matches!(decode_frame(&over), Decoded::Oversized(_)));

        // encode_frame is byte-identical to write_frame.
        let body = request_json("tune", "spmv", 0, "m");
        let mut streamed = Vec::new();
        write_frame(&mut streamed, &body).unwrap();
        assert_eq!(encode_frame(&body), streamed);
    }

    #[test]
    fn request_parsing() {
        let v = request_json("tune", "spmv", 0, "m");
        let r = Request::from_json(&v).unwrap();
        assert_eq!(r.op(), "tune");
        assert!(matches!(
            r,
            Request::Tune {
                kernel: Kernel::SpMV,
                dense_extent: 0,
                ..
            }
        ));

        let stats = Request::from_json(&Json::obj([("op", Json::str("stats"))])).unwrap();
        assert_eq!(stats, Request::Stats);

        // Defaults: kernel spmm, dense 32.
        let v = Json::obj([("op", Json::str("lookup")), ("matrix", Json::str("m"))]);
        assert!(matches!(
            Request::from_json(&v).unwrap(),
            Request::Lookup {
                kernel: Kernel::SpMM,
                dense_extent: 32,
                ..
            }
        ));

        for bad in [
            Json::obj([]),
            Json::obj([("op", Json::str("fly"))]),
            Json::obj([("op", Json::str("tune"))]),
            Json::obj([
                ("op", Json::str("tune")),
                ("kernel", Json::str("gemm")),
                ("matrix", Json::str("m")),
            ]),
        ] {
            assert!(matches!(
                Request::from_json(&bad),
                Err(WacoError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn sync_request_parsing_and_batch_roundtrip() {
        // Request: explicit offset, default offset, bad offset.
        let r = Request::from_json(&sync_request(17)).unwrap();
        assert_eq!(r, Request::Sync { offset: 17 });
        assert_eq!(r.op(), "sync");
        let r = Request::from_json(&Json::obj([("op", Json::str("sync"))])).unwrap();
        assert_eq!(r, Request::Sync { offset: 0 });
        let bad = Json::obj([("op", Json::str("sync")), ("offset", Json::str("x"))]);
        assert!(matches!(
            Request::from_json(&bad),
            Err(WacoError::InvalidConfig(_))
        ));

        // Batch roundtrip, including a checksum above 2^53 that would be
        // mangled by an f64 JSON number.
        let records = vec![
            SyncRecord {
                crc: 0xffee_ddcc_bbaa_9988,
                payload: "{\"k\":1}".into(),
            },
            SyncRecord {
                crc: 7,
                payload: "{\"k\":2}".into(),
            },
        ];
        let body = sync_response(&records, 2, false, 5);
        let batch = sync_batch_from_json(&body).unwrap();
        assert_eq!(batch.records, records);
        assert_eq!((batch.next_offset, batch.done, batch.total), (2, false, 5));

        // Error responses and shape mismatches parse to None.
        assert!(sync_batch_from_json(&error_response("nope", false)).is_none());
        assert!(sync_batch_from_json(&Json::obj([("ok", Json::Bool(true))])).is_none());
    }

    #[test]
    fn error_response_shape() {
        let e = error_response("server busy", true);
        assert_eq!(e.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(e.get("busy").unwrap().as_bool(), Some(true));
        let e = error_response("bad request", false);
        assert!(e.get("busy").is_none());
    }
}
