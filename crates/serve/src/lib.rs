//! `waco-serve`: an online auto-tuning service with a persistent,
//! fingerprint-keyed tuning cache.
//!
//! WACO's value proposition is amortization: train the cost model once,
//! then answer "which format + schedule for *this* sparsity pattern"
//! cheaply at deployment time. This crate turns the one-shot pipeline into
//! a long-running service that amortizes further, BestFormat-style —
//! decisions are reusable across structurally similar matrices, so they are
//! cached under a sparsity [`Fingerprint`] and survive restarts:
//!
//! * [`fingerprint`] — a 128-bit digest of the sparsity structure (dims,
//!   nnz, row/column nnz histograms, block-density statistics), FNV-1a
//!   hashed over a canonical byte encoding.
//! * [`lru`] + [`journal`] + [`cache`] — the two-tier [`TuningCache`]: a
//!   sharded in-memory LRU (shards sized to the `waco-runtime` pool) over
//!   an append-only, checksummed on-disk journal with corrupt-tail
//!   truncation and compaction on load.
//! * [`protocol`] + [`server`] + [`client`] — a localhost TCP request loop
//!   speaking length-prefixed JSON (`tune` / `lookup` / `stats` / `sync` /
//!   `shutdown`) with a bounded admission queue, per-request timeouts, and
//!   graceful drain.
//! * [`ring`] + [`router`] + [`sync`] — the distributed tier: a consistent
//!   hash ring over the fingerprint, a proxy that shards requests across N
//!   servers with failover to the ring's next live shard, and peer journal
//!   streaming so a joining shard starts warm.
//! * [`tuner`] — the serving backend: lazily-trained [`waco_core::Waco`]
//!   pipelines with warm-start ANNS index snapshots (`waco-anns`'
//!   `persist` module).
//!
//! Everything is std-only, instrumented through `waco-obs`, and fallible
//! through [`waco_core::WacoError`].

pub mod cache;
pub mod client;
pub mod fingerprint;
pub mod journal;
pub mod json;
pub mod lru;
pub mod plan_cache;
pub mod protocol;
pub mod ring;
pub mod router;
pub mod server;
pub mod sync;
pub mod tuner;

pub use cache::{CacheStats, Decision, TuningCache};
pub use client::{Client, QueryReply};
pub use fingerprint::Fingerprint;
pub use journal::Journal;
pub use json::Json;
pub use lru::ShardedLru;
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use ring::HashRing;
pub use router::{Router, RouterConfig};
pub use server::{ServeConfig, Server};
pub use sync::{warm_from_peer, SyncReport};
pub use tuner::{Tuner, WacoTuner, WacoTunerConfig};
