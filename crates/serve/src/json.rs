//! A minimal JSON value, parser, and writer — std-only, no dependencies.
//!
//! The serving protocol and the journal payloads are JSON; the workspace
//! has no external serializer, so this module provides the small subset we
//! need: objects, arrays, strings (with escapes), finite numbers, booleans,
//! and null. Parsing is recursive-descent with a depth limit; writing
//! escapes control characters and emits integers without a fraction so
//! counters round-trip textually.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser (defense against
/// pathological frames).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (integers survive textually up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (`BTreeMap`), which keeps output
    /// deterministic — important for checksummed journal payloads.
    Obj(BTreeMap<String, Json>),
}

/// JSON parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing whitespace is allowed, trailing
    /// garbage is not.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the offending byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// An object builder from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member access: `Some` when `self` is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, when `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` prints integers without a fraction and shortest
                    // round-trip decimals otherwise.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes the value to compact JSON text (`to_string()`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err(format!("non-finite number `{text}`")));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..`-range low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream: back up and take
                    // the full character.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("nonempty");
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let again = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a": [1, 2, {"b": "x\ny", "c": null}], "d": -0.25}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-0.25));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x\ny")
        );
        let again = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""tab\tquote\"u\u00e9\u20ac""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\tquote\"ué€"));
        // Surrogate pair: U+1F600.
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Raw multibyte UTF-8 passes through.
        let v = Json::parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
        // Writer escapes control characters so output reparses.
        let s = Json::str("a\u{0001}b").to_string();
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some("a\u{0001}b"));
    }

    #[test]
    fn rejects_malformed() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "[1,]",
            "nan",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 7, "s": "x", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(Json::Num(1.5).as_u64().is_none());
        assert!(Json::Num(-1.0).as_u64().is_none());
    }

    #[test]
    fn object_keys_are_sorted_deterministically() {
        let a = Json::obj([("z", Json::num(1.0)), ("a", Json::num(2.0))]);
        assert_eq!(a.to_string(), r#"{"a":2,"z":1}"#);
    }
}
