//! Append-only on-disk journal — the persistent tier of the tuning cache.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +----------+---------+   +-----------+------------+------------------+
//! | WACOJRNL | version |   | len: u32  | crc: u64   | payload: len × u8 | …
//! +----------+---------+   +-----------+------------+------------------+
//!   8 bytes    u32           per record; crc = FNV-1a 64 of payload
//! ```
//!
//! The crash-recovery contract:
//! * Records are appended with a single `write_all` then flushed, so after
//!   a crash the file is a valid prefix followed by at most one torn record.
//! * [`Journal::open`] scans from the start; the first record whose length
//!   runs past EOF or whose checksum mismatches marks the torn tail, which
//!   is truncated in place (`set_len`). Every complete record before it is
//!   recovered — never a partial one.
//! * A file whose header is damaged is treated as unrecoverable and
//!   re-initialized empty (a cache can always be rebuilt by re-tuning; a
//!   wrong decision served silently cannot).
//!
//! Compaction: the journal is append-only, so updated keys accumulate dead
//! prior versions. When, at open, dead records outnumber live ones, the
//! caller-visible live set is rewritten to `<path>.compact` and atomically
//! renamed over the original.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use waco_core::WacoError;

use crate::fingerprint::fnv1a64;

/// File magic.
pub const JOURNAL_MAGIC: &[u8; 8] = b"WACOJRNL";
/// Format version. Bump when the record payload schema or the fingerprint's
/// canonical byte encoding changes. Version 2 added the workspace kernels
/// (`spgemm`, `sddmm_spmm`) to the key namespace; the record encoding is
/// unchanged, so version-1 journals replay as-is and are upgraded to the
/// current version on the next rewrite.
pub const JOURNAL_VERSION: u32 = 2;

/// Versions [`Journal::open`] accepts without re-initializing. All of them
/// share the record encoding; older versions simply predate key kinds that
/// newer writers may append.
const COMPATIBLE_VERSIONS: [u32; 2] = [1, JOURNAL_VERSION];
/// Largest record payload accepted on read (corruption guard).
const MAX_RECORD_LEN: u32 = 16 << 20;
/// Header length in bytes: magic + version.
const HEADER_LEN: u64 = 8 + 4;

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenReport {
    /// Complete records recovered (including dead duplicates pre-compaction).
    pub records_recovered: usize,
    /// Bytes of torn/corrupt tail truncated away, if any.
    pub bytes_truncated: u64,
    /// Whether the file was rewritten to drop dead records.
    pub compacted: bool,
    /// Whether the header was damaged and the journal re-initialized empty.
    pub reinitialized: bool,
}

/// An append-only, checksummed record log.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, scanning and repairing it.
    ///
    /// Returns the journal handle positioned for appending, the recovered
    /// payloads in append order, and a report of what recovery did.
    /// `is_dead` classifies payloads for compaction: given the full recovered
    /// sequence, it returns the indices that are superseded (e.g. older
    /// writes of a key that appears again later).
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] on filesystem failure. Corruption is not an error —
    /// it is repaired and reported.
    pub fn open(
        path: impl AsRef<Path>,
        is_dead: impl Fn(&[Vec<u8>]) -> Vec<usize>,
    ) -> Result<(Journal, Vec<Vec<u8>>, OpenReport), WacoError> {
        let _span = waco_obs::span("serve.journal.open");
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| WacoError::io(format!("creating {}", dir.display()), e))?;
            }
        }
        let ctx = |what: &str| format!("{what} journal {}", path.display());
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| WacoError::io(ctx("opening"), e))?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| WacoError::io(ctx("reading"), e))?;

        let mut report = OpenReport {
            records_recovered: 0,
            bytes_truncated: 0,
            compacted: false,
            reinitialized: false,
        };

        // Header: brand-new file gets one; damaged header resets the file.
        let header_ok = bytes.len() >= HEADER_LEN as usize
            && &bytes[..8] == JOURNAL_MAGIC
            && COMPATIBLE_VERSIONS.contains(&u32::from_le_bytes(
                bytes[8..12].try_into().expect("4 bytes"),
            ));
        if !header_ok {
            report.reinitialized = !bytes.is_empty();
            if report.reinitialized {
                waco_obs::counter("serve.journal.reinitialized", 1);
            }
            file.set_len(0)
                .map_err(|e| WacoError::io(ctx("resetting"), e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| WacoError::io(ctx("seeking"), e))?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(JOURNAL_MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            file.write_all(&header)
                .map_err(|e| WacoError::io(ctx("initializing"), e))?;
            file.sync_data()
                .map_err(|e| WacoError::io(ctx("syncing"), e))?;
            return Ok((Journal { file, path }, Vec::new(), report));
        }

        // Scan records; stop at the first torn or corrupt one.
        let (mut records, good_end) = scan_records(&bytes);
        report.records_recovered = records.len();
        report.bytes_truncated = (bytes.len() - good_end) as u64;
        if report.bytes_truncated > 0 {
            waco_obs::counter("serve.journal.truncated_bytes", report.bytes_truncated);
            file.set_len(good_end as u64)
                .map_err(|e| WacoError::io(ctx("truncating"), e))?;
        }

        // Compaction: rewrite when dead records outnumber live ones.
        let dead = is_dead(&records);
        if !dead.is_empty() && dead.len() >= records.len() - dead.len() {
            let mut dead_mask = vec![false; records.len()];
            for &i in &dead {
                if let Some(slot) = dead_mask.get_mut(i) {
                    *slot = true;
                }
            }
            let live: Vec<Vec<u8>> = records
                .iter()
                .zip(&dead_mask)
                .filter(|(_, &d)| !d)
                .map(|(r, _)| r.clone())
                .collect();
            let tmp = path.with_extension("compact");
            {
                let mut out =
                    File::create(&tmp).map_err(|e| WacoError::io(ctx("compacting"), e))?;
                let mut buf = Vec::new();
                buf.extend_from_slice(JOURNAL_MAGIC);
                buf.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
                for r in &live {
                    encode_record(&mut buf, r);
                }
                out.write_all(&buf)
                    .map_err(|e| WacoError::io(ctx("compacting"), e))?;
                out.sync_data()
                    .map_err(|e| WacoError::io(ctx("syncing compacted"), e))?;
            }
            std::fs::rename(&tmp, &path)
                .map_err(|e| WacoError::io(ctx("replacing with compacted"), e))?;
            file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .map_err(|e| WacoError::io(ctx("reopening compacted"), e))?;
            records = live;
            report.compacted = true;
            waco_obs::counter("serve.journal.compactions", 1);
        }

        file.seek(SeekFrom::End(0))
            .map_err(|e| WacoError::io(ctx("seeking"), e))?;
        Ok((Journal { file, path }, records, report))
    }

    /// Appends one record (length + checksum + payload in a single write)
    /// and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`]; also rejects payloads over the 16 MiB record cap.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), WacoError> {
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(WacoError::InvalidConfig(format!(
                "journal record of {} bytes exceeds the {} byte cap",
                payload.len(),
                MAX_RECORD_LEN
            )));
        }
        let mut buf = Vec::with_capacity(12 + payload.len());
        encode_record(&mut buf, payload);
        self.file.write_all(&buf).map_err(|e| {
            WacoError::io(format!("appending to journal {}", self.path.display()), e)
        })?;
        self.file
            .flush()
            .map_err(|e| WacoError::io(format!("flushing journal {}", self.path.display()), e))?;
        waco_obs::counter("serve.journal.appends", 1);
        Ok(())
    }

    /// Forces appended records to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`].
    pub fn sync(&mut self) -> Result<(), WacoError> {
        self.file
            .sync_data()
            .map_err(|e| WacoError::io(format!("syncing journal {}", self.path.display()), e))
    }

    /// Re-reads every complete record currently on disk, in append order —
    /// the snapshot a `sync` stream serves to a joining peer. Records
    /// appended since [`Journal::open`] are included; the append cursor is
    /// restored before returning.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`].
    pub fn read_records(&mut self) -> Result<Vec<Vec<u8>>, WacoError> {
        let ctx = |what: &str| format!("{what} journal {}", self.path.display());
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| WacoError::io(ctx("rewinding"), e))?;
        let mut bytes = Vec::new();
        self.file
            .read_to_end(&mut bytes)
            .map_err(|e| WacoError::io(ctx("re-reading"), e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| WacoError::io(ctx("seeking"), e))?;
        Ok(scan_records(&bytes).0)
    }
}

/// Scans a full journal image past its header: the complete, checksum-valid
/// records in order, plus the byte offset where the valid prefix ends (the
/// truncation point for everything torn or corrupt after it). An image too
/// short to hold a header has no records.
fn scan_records(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records: Vec<Vec<u8>> = Vec::new();
    let mut good_end = (HEADER_LEN as usize).min(bytes.len());
    let mut pos = good_end;
    loop {
        if pos == bytes.len() {
            break; // clean end
        }
        if pos + 12 > bytes.len() {
            break; // torn record header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        if len > MAX_RECORD_LEN {
            break; // corrupt length field
        }
        let start = pos + 12;
        let Some(end) = start
            .checked_add(len as usize)
            .filter(|&e| e <= bytes.len())
        else {
            break; // torn payload
        };
        let payload = &bytes[start..end];
        if fnv1a64(payload) != crc {
            break; // corrupt payload
        }
        records.push(payload.to_vec());
        pos = end;
        good_end = end;
    }
    (records, good_end)
}

fn encode_record(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("waco-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.journal")
    }

    fn no_dead(_: &[Vec<u8>]) -> Vec<usize> {
        Vec::new()
    }

    #[test]
    fn fresh_then_reload() {
        let path = tmp("fresh");
        let (mut j, recs, rep) = Journal::open(&path, no_dead).unwrap();
        assert!(recs.is_empty());
        assert!(!rep.reinitialized);
        j.append(b"alpha").unwrap();
        j.append(b"beta").unwrap();
        drop(j);

        let (_, recs, rep) = Journal::open(&path, no_dead).unwrap();
        assert_eq!(recs, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(rep.records_recovered, 2);
        assert_eq!(rep.bytes_truncated, 0);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        let (mut j, _, _) = Journal::open(&path, no_dead).unwrap();
        j.append(b"complete-1").unwrap();
        j.append(b"complete-2").unwrap();
        drop(j);

        // Simulate a torn write: append a record header + half a payload.
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        raw.write_all(&20u32.to_le_bytes()).unwrap();
        raw.write_all(&0xdeadbeefu64.to_le_bytes()).unwrap();
        raw.write_all(b"only-ten-b").unwrap();
        drop(raw);

        let before = std::fs::metadata(&path).unwrap().len();
        let (mut j, recs, rep) = Journal::open(&path, no_dead).unwrap();
        assert_eq!(recs, vec![b"complete-1".to_vec(), b"complete-2".to_vec()]);
        assert_eq!(rep.bytes_truncated, 22);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before - 22);

        // The repaired journal accepts new appends that survive reload.
        j.append(b"after-repair").unwrap();
        drop(j);
        let (_, recs, _) = Journal::open(&path, no_dead).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2], b"after-repair");
    }

    #[test]
    fn corrupt_checksum_truncates_from_there() {
        let path = tmp("crc");
        let (mut j, _, _) = Journal::open(&path, no_dead).unwrap();
        j.append(b"good").unwrap();
        j.append(b"bad!").unwrap();
        j.append(b"unreachable").unwrap();
        drop(j);

        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload = 12 + (12 + 4) + 12; // header + rec1 + rec2 framing
        bytes[second_payload] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recs, rep) = Journal::open(&path, no_dead).unwrap();
        assert_eq!(
            recs,
            vec![b"good".to_vec()],
            "everything after the corrupt record goes"
        );
        assert!(rep.bytes_truncated > 0);
    }

    #[test]
    fn version_1_journal_replays_without_reinit() {
        let path = tmp("v1");
        let (mut j, _, _) = Journal::open(&path, no_dead).unwrap();
        j.append(b"pre-workspace-record").unwrap();
        drop(j);

        // Rewrite the header to the previous format version; the record
        // encoding is shared, so replay must recover everything.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let (mut j, recs, rep) = Journal::open(&path, no_dead).unwrap();
        assert!(!rep.reinitialized, "version 1 is compatible, not damaged");
        assert_eq!(recs, vec![b"pre-workspace-record".to_vec()]);
        j.append(b"appended-by-v2-writer").unwrap();
        drop(j);
        let (_, recs, _) = Journal::open(&path, no_dead).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn unknown_version_reinitializes() {
        let path = tmp("vfuture");
        let (mut j, _, _) = Journal::open(&path, no_dead).unwrap();
        j.append(b"x").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let (_, recs, rep) = Journal::open(&path, no_dead).unwrap();
        assert!(recs.is_empty());
        assert!(rep.reinitialized);
    }

    #[test]
    fn damaged_header_reinitializes() {
        let path = tmp("header");
        let (mut j, _, _) = Journal::open(&path, no_dead).unwrap();
        j.append(b"x").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();

        let (_, recs, rep) = Journal::open(&path, no_dead).unwrap();
        assert!(recs.is_empty());
        assert!(rep.reinitialized);
    }

    #[test]
    fn compaction_drops_dead_records() {
        let path = tmp("compact");
        let (mut j, _, _) = Journal::open(&path, no_dead).unwrap();
        for i in 0..6u8 {
            j.append(&[b'k', i % 2]).unwrap(); // two keys, three versions each
        }
        drop(j);

        // Everything but the last write of each key is dead.
        let dead = |recs: &[Vec<u8>]| -> Vec<usize> {
            let mut last = std::collections::HashMap::new();
            for (i, r) in recs.iter().enumerate() {
                last.insert(r.clone(), i);
            }
            (0..recs.len()).filter(|i| last[&recs[*i]] != *i).collect()
        };
        let (_, recs, rep) = Journal::open(&path, dead).unwrap();
        assert!(rep.compacted);
        assert_eq!(recs.len(), 2);

        // Reload after compaction sees only live records and no re-compaction.
        let (_, recs2, rep2) = Journal::open(&path, dead).unwrap();
        assert_eq!(recs2, recs);
        assert!(!rep2.compacted);
    }

    #[test]
    fn read_records_snapshots_appends_and_keeps_cursor() {
        let path = tmp("snapshot");
        let (mut j, _, _) = Journal::open(&path, no_dead).unwrap();
        j.append(b"one").unwrap();
        assert_eq!(j.read_records().unwrap(), vec![b"one".to_vec()]);
        // Appends after a snapshot land after the existing records, not over
        // them (the cursor was restored), and show up in the next snapshot.
        j.append(b"two").unwrap();
        assert_eq!(
            j.read_records().unwrap(),
            vec![b"one".to_vec(), b"two".to_vec()]
        );
        drop(j);
        let (_, recs, rep) = Journal::open(&path, no_dead).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(rep.bytes_truncated, 0);
    }

    #[test]
    fn oversized_record_rejected() {
        let path = tmp("oversize");
        let (mut j, _, _) = Journal::open(&path, no_dead).unwrap();
        let big = vec![0u8; (MAX_RECORD_LEN as usize) + 1];
        assert!(matches!(j.append(&big), Err(WacoError::InvalidConfig(_))));
    }
}
