//! Consistent hashing over the 128-bit sparsity fingerprint space.
//!
//! The distributed serving layer partitions the fingerprint key space
//! across N shard processes so that (a) every router instance agrees on
//! which shard owns a key without any coordination, and (b) adding or
//! removing one shard remaps only ~1/N of the keys (the classic
//! minimal-disruption bound) instead of reshuffling everything the way
//! `hash % N` would.
//!
//! The construction is the textbook ring: each shard contributes
//! [`HashRing::vnodes`] pseudo-random points on a `u64` circle (FNV-1a over
//! `(shard index, vnode index)`), a key hashes to one point on the same
//! circle (FNV-1a over the fingerprint's two words), and the owner is the
//! first shard point at or clockwise-after the key. Virtual nodes smooth
//! the arc-length variance so per-shard load stays within a small factor of
//! the mean — the `ring_props` property suite pins max/mean ≤ 1.25 for
//! N ∈ {2, 3, 5, 8}.
//!
//! Failover walks the same circle: [`HashRing::successors`] yields every
//! shard in ring order starting from the key's owner, so a router that
//! finds the owner dead retries on the next *distinct* shard — every router
//! picks the same fallback, which keeps the degraded cache population
//! concentrated instead of sprayed.

use crate::fingerprint::{Fingerprint, Fnv64};

/// Virtual nodes per shard when the caller does not override it. 128 points
/// per shard keeps the max/mean load ratio comfortably under 1.25 for small
/// shard counts while the ring stays tiny (a few KiB).
pub const DEFAULT_VNODES: usize = 128;

/// A consistent-hash ring mapping fingerprints to shard indices `0..n`.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` sorted by point; ties broken by shard index so the
    /// ring is identical no matter the insertion order.
    points: Vec<(u64, usize)>,
    shards: usize,
    vnodes: usize,
}

impl HashRing {
    /// Builds a ring over `shards` shards with [`DEFAULT_VNODES`] points
    /// each. Panics on zero shards — a ring with nobody to route to is a
    /// caller bug, not a runtime condition.
    pub fn new(shards: usize) -> HashRing {
        HashRing::with_vnodes(shards, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit virtual-node count per shard.
    pub fn with_vnodes(shards: usize, vnodes: usize) -> HashRing {
        assert!(shards > 0, "a hash ring needs at least one shard");
        assert!(vnodes > 0, "a hash ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                points.push((point_hash(shard, vnode), shard));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            shards,
            vnodes,
        }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The shard owning `fp`: the first ring point at or clockwise-after
    /// the key's position (wrapping past the top of the circle).
    pub fn route(&self, fp: Fingerprint) -> usize {
        self.points[self.first_point(fp)].1
    }

    /// Every shard in ring order starting from the owner of `fp`, each
    /// shard exactly once — the failover order for this key.
    pub fn successors(&self, fp: Fingerprint) -> Vec<usize> {
        let start = self.first_point(fp);
        let mut seen = vec![false; self.shards];
        let mut order = Vec::with_capacity(self.shards);
        for i in 0..self.points.len() {
            let shard = self.points[(start + i) % self.points.len()].1;
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }

    /// Index into `points` of the first point at or after the key's hash.
    fn first_point(&self, fp: Fingerprint) -> usize {
        let key = key_hash(fp);
        let idx = self.points.partition_point(|&(p, _)| p < key);
        if idx == self.points.len() {
            0
        } else {
            idx
        }
    }
}

/// Position of `(shard, vnode)` on the circle. The two indices are hashed
/// through independent FNV-1a passes so consecutive vnodes scatter.
fn point_hash(shard: usize, vnode: usize) -> u64 {
    let mut h = Fnv64::new();
    h.write(b"waco-ring-point");
    h.write_u64(shard as u64);
    h.write_u64(vnode as u64);
    // One extra avalanche round: raw FNV of short inputs clusters in the
    // low bits, which would bias arc lengths.
    let mut h2 = Fnv64::with_basis(h.finish());
    h2.write_u64(h.finish().rotate_left(29));
    h2.finish()
}

/// Position of a fingerprint key on the circle.
fn key_hash(fp: Fingerprint) -> u64 {
    let mut h = Fnv64::new();
    h.write(b"waco-ring-key");
    h.write_u64(fp.hi);
    h.write_u64(fp.lo);
    let mut h2 = Fnv64::with_basis(h.finish());
    h2.write_u64(h.finish().rotate_left(29));
    h2.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(i: u64) -> Fingerprint {
        Fingerprint {
            hi: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            lo: !i ^ 0xA5A5_5A5A_F00D_BEEF,
        }
    }

    #[test]
    fn route_is_deterministic_and_in_range() {
        let ring = HashRing::new(5);
        for i in 0..1000 {
            let a = ring.route(fp(i));
            let b = HashRing::new(5).route(fp(i));
            assert_eq!(a, b, "two identically-built rings must agree");
            assert!(a < 5);
        }
    }

    #[test]
    fn successors_cover_every_shard_once() {
        let ring = HashRing::new(4);
        for i in 0..64 {
            let order = ring.successors(fp(i));
            assert_eq!(order.len(), 4);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            assert_eq!(order[0], ring.route(fp(i)), "owner leads the order");
        }
    }

    #[test]
    fn single_shard_ring_routes_everything_to_it() {
        let ring = HashRing::new(1);
        for i in 0..32 {
            assert_eq!(ring.route(fp(i)), 0);
            assert_eq!(ring.successors(fp(i)), vec![0]);
        }
    }
}
