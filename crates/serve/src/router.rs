//! The fingerprint-sharded router: a thin proxy that consistent-hashes
//! `tune`/`lookup` requests over the 128-bit sparsity fingerprint onto N
//! shard servers, with failover to the ring's next live shard.
//!
//! The router reuses the serve loop's shape — one nonblocking epoll thread
//! owning the listener, every client connection, and one persistent
//! connection per shard — but it never tunes and never caches: its whole
//! job is to pick a shard and move frames. Life of a request:
//!
//! 1. A complete frame is decoded from a client's read buffer. `stats` and
//!    `shutdown` are answered locally (shutdown drains the *router*; shards
//!    stay up). `sync` is refused — journal streaming is shard-to-shard.
//! 2. `tune`/`lookup` bodies are fingerprinted on the loop (parsing is
//!    cheap relative to tuning) and the frame's *exact bytes* are forwarded
//!    to the first reachable shard in [`HashRing::successors`] order.
//!    Responses forward back byte-exact, so the client sees precisely what
//!    the shard said.
//! 3. Each client connection holds a slot queue: pipelined requests that
//!    hash to different shards complete in any order upstream, but
//!    responses flush strictly in request order.
//! 4. **Failover:** a shard that refuses connections, dies mid-frame, or
//!    closes mid-stream is marked down; every request in flight on it is
//!    re-dispatched to the next live shard on that key's ring walk, which
//!    cold-tunes. Degraded, never wrong: the fallback shard computes the
//!    same deterministic decision the owner would have. A request only
//!    fails when *no* shard is reachable. Down shards are re-dialed after a
//!    cooldown.
//!
//! Observability: `serve.route.requests`, `serve.route.forwarded`,
//! `serve.route.failover`, `serve.route.shard_down`,
//! `serve.route.reconnects`, and a `router` section in the local `stats`
//! frame with per-shard states.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use waco_core::WacoError;
use waco_runtime::poll::{wake_pair, Interest, Poller, WakeReceiver, Waker};

use crate::fingerprint::Fingerprint;
use crate::json::Json;
use crate::protocol::{decode_frame, encode_frame, error_response, Decoded, Frame, Request};
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::server::parse_and_fingerprint;

/// How long one blocking dial of a shard may take. Loopback refusals are
/// immediate; this only bounds a pathologically unresponsive stack.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// How long a down shard stays quarantined before the router re-dials it.
const RETRY_COOLDOWN: Duration = Duration::from_secs(1);

/// Validated router configuration. Construct via [`RouterConfig::builder`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    addr: SocketAddr,
    shards: Vec<SocketAddr>,
    vnodes: usize,
    timeout: Duration,
    max_connections: usize,
}

impl RouterConfig {
    /// Starts a builder with localhost defaults (ephemeral port,
    /// [`DEFAULT_VNODES`] ring points per shard, 64-connection cap, 30 s
    /// client idle timeout). Shard addresses are required.
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            vnodes: DEFAULT_VNODES,
            timeout_secs: 30.0,
            max_connections: 64,
        }
    }

    /// The configured bind address (port 0 = ephemeral).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard addresses, in ring-index order.
    pub fn shards(&self) -> &[SocketAddr] {
        &self.shards
    }
}

/// Validating builder for [`RouterConfig`].
#[derive(Debug, Clone)]
pub struct RouterConfigBuilder {
    addr: String,
    shards: Vec<String>,
    vnodes: usize,
    timeout_secs: f64,
    max_connections: usize,
}

impl RouterConfigBuilder {
    /// Bind address, e.g. `127.0.0.1:7070`. Must be loopback.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Adds one shard address. Ring index = insertion order.
    pub fn shard(mut self, addr: impl Into<String>) -> Self {
        self.shards.push(addr.into());
        self
    }

    /// Virtual nodes per shard on the hash ring.
    pub fn vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes = vnodes;
        self
    }

    /// Client idle timeout in seconds.
    pub fn timeout_secs(mut self, secs: f64) -> Self {
        self.timeout_secs = secs;
        self
    }

    /// Maximum concurrently open client connections.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// [`WacoError::InvalidConfig`] for no shards, a non-loopback or
    /// unparseable address (router or shard), zero vnodes/connections, or a
    /// non-positive timeout.
    pub fn build(self) -> Result<RouterConfig, WacoError> {
        let parse_loopback = |what: &str, text: &str| -> Result<SocketAddr, WacoError> {
            let addr: SocketAddr = text.parse().map_err(|_| {
                WacoError::InvalidConfig(format!("{what} `{text}` is not a socket address"))
            })?;
            if !addr.ip().is_loopback() {
                return Err(WacoError::InvalidConfig(format!(
                    "{what} `{addr}` is not a loopback address; the tuning service is localhost-only"
                )));
            }
            Ok(addr)
        };
        let addr = parse_loopback("router.addr", &self.addr)?;
        if self.shards.is_empty() {
            return Err(WacoError::InvalidConfig(
                "router needs at least one shard address".into(),
            ));
        }
        let shards = self
            .shards
            .iter()
            .map(|s| parse_loopback("router shard", s))
            .collect::<Result<Vec<_>, _>>()?;
        if self.vnodes == 0 {
            return Err(WacoError::InvalidConfig(
                "router.vnodes must be at least 1".into(),
            ));
        }
        if self.max_connections == 0 {
            return Err(WacoError::InvalidConfig(
                "router.max_connections must be at least 1".into(),
            ));
        }
        if !(self.timeout_secs > 0.0 && self.timeout_secs.is_finite()) {
            return Err(WacoError::InvalidConfig(format!(
                "router.timeout_secs must be positive and finite, got {}",
                self.timeout_secs
            )));
        }
        Ok(RouterConfig {
            addr,
            shards,
            vnodes: self.vnodes,
            timeout: Duration::from_secs_f64(self.timeout_secs),
            max_connections: self.max_connections,
        })
    }
}

// ---------------------------------------------------------------------------
// Loop state
// ---------------------------------------------------------------------------

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_UPSTREAM_BASE: u64 = 2;

/// A response slot on a client connection; `Ready` holds the shard's
/// response frame verbatim (prefix + body) so forwarding is byte-exact.
enum SlotState {
    Waiting,
    Ready(Vec<u8>),
}

struct Slot {
    id: u64,
    state: SlotState,
}

struct ClientConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    pending: VecDeque<Slot>,
    next_slot: u64,
    last_activity: Instant,
    close_after_flush: bool,
    interest: Interest,
}

impl ClientConn {
    fn push_ready(&mut self, frame: Vec<u8>) {
        let id = self.next_slot;
        self.next_slot += 1;
        self.pending.push_back(Slot {
            id,
            state: SlotState::Ready(frame),
        });
    }

    fn push_waiting(&mut self) -> u64 {
        let id = self.next_slot;
        self.next_slot += 1;
        self.pending.push_back(Slot {
            id,
            state: SlotState::Waiting,
        });
        id
    }

    fn idle(&self) -> bool {
        self.pending.is_empty() && self.wbuf.is_empty()
    }
}

/// One request forwarded (or awaiting forwarding) to a shard. Keeps the
/// encoded frame and the fingerprint so a shard death can re-dispatch it
/// down the ring walk.
struct Pending {
    conn: u64,
    slot: u64,
    frame: Vec<u8>,
    fp: Fingerprint,
    tried: Vec<usize>,
}

/// The router's connection to one shard. `stream` is lazily dialed;
/// `down_since` quarantines a shard that failed until the cooldown passes.
struct Upstream {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    down_since: Option<Instant>,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    inflight: VecDeque<Pending>,
    interest: Interest,
}

impl Upstream {
    fn state_name(&self) -> &'static str {
        if self.stream.is_some() {
            "connected"
        } else if self.down_since.is_some() {
            "down"
        } else {
            "idle"
        }
    }
}

/// Counters shared between the loop and [`Router`] handles.
struct RouterShared {
    shutdown: AtomicBool,
    requests: AtomicU64,
    forwarded: AtomicU64,
    failover: AtomicU64,
    shard_down: AtomicU64,
    reconnects: AtomicU64,
    waker: Waker,
    timeout: Duration,
}

struct RouterLoop {
    shared: Arc<RouterShared>,
    ring: HashRing,
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: WakeReceiver,
    upstreams: Vec<Upstream>,
    conns: HashMap<u64, ClientConn>,
    next_token: u64,
    max_connections: usize,
}

impl RouterLoop {
    fn client_base(&self) -> u64 {
        TOKEN_UPSTREAM_BASE + self.upstreams.len() as u64
    }

    fn run(&mut self) {
        let mut events = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                if let Some(l) = self.listener.take() {
                    let _ = self.poller.delete(l.as_raw_fd());
                }
            }
            if self.listener.is_none() && self.conns.is_empty() {
                break;
            }
            let timeout = self.wait_budget();
            if self.poller.wait(&mut events, timeout).is_err() {
                break; // poller failure is unrecoverable
            }
            let mut touched = Vec::new();
            for ev in events.iter() {
                match ev.token {
                    TOKEN_LISTENER => self.accept_all(&mut touched),
                    TOKEN_WAKER => self.wake_rx.drain(),
                    t if t < self.client_base() => {
                        let shard = (t - TOKEN_UPSTREAM_BASE) as usize;
                        if ev.readable || ev.closed {
                            self.read_upstream(shard, &mut touched);
                        }
                        if ev.writable {
                            self.flush_upstream(shard, &mut touched);
                        }
                    }
                    t => {
                        if ev.readable && self.conns.contains_key(&t) {
                            self.read_client(t, &mut touched);
                        }
                        touched.push(t);
                    }
                }
            }
            touched.sort_unstable();
            touched.dedup();
            for token in touched {
                self.advance_client(token);
            }
            self.sweep_idle();
        }
        // Drop shard connections on the way out; shards keep running.
        for shard in 0..self.upstreams.len() {
            if let Some(s) = self.upstreams[shard].stream.take() {
                let _ = self.poller.delete(s.as_raw_fd());
            }
        }
    }

    /// Poll budget: mirrors the serve loop — earliest idle deadline among
    /// closable client connections, 1 s heartbeat whenever any connection
    /// exists, unbounded for an idle listener.
    fn wait_budget(&self) -> Option<Duration> {
        if self.conns.is_empty() {
            return None;
        }
        let now = Instant::now();
        let mut budget = Duration::from_secs(1);
        for c in self.conns.values() {
            if c.idle() {
                let deadline = c.last_activity + self.shared.timeout;
                let remaining = deadline.saturating_duration_since(now);
                budget = budget.min(remaining.max(Duration::from_millis(10)));
            }
        }
        Some(budget)
    }

    fn accept_all(&mut self, touched: &mut Vec<u64>) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = ClientConn {
                        stream,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        pending: VecDeque::new(),
                        next_slot: 0,
                        last_activity: Instant::now(),
                        close_after_flush: false,
                        interest: Interest::READ,
                    };
                    if self.conns.len() >= self.max_connections {
                        conn.push_ready(encode_frame(&error_response(
                            "router busy: connection limit reached",
                            true,
                        )));
                        conn.close_after_flush = true;
                    }
                    if self
                        .poller
                        .add(conn.stream.as_raw_fd(), token, conn.interest)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, conn);
                    touched.push(token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    // -- client side --------------------------------------------------------

    fn read_client(&mut self, token: u64, touched: &mut Vec<u64>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.parse_client_frames(token, touched);
    }

    fn parse_client_frames(&mut self, token: u64, touched: &mut Vec<u64>) {
        let mut consumed = 0;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.close_after_flush {
                break;
            }
            match decode_frame(&conn.rbuf[consumed..]) {
                Decoded::Incomplete => break,
                Decoded::Oversized(msg) => {
                    conn.push_ready(encode_frame(&error_response(&msg, false)));
                    conn.close_after_flush = true;
                    break;
                }
                Decoded::Complete(n, frame) => {
                    let raw = conn.rbuf[consumed..consumed + n].to_vec();
                    consumed += n;
                    match frame {
                        Frame::Malformed(msg) => {
                            conn.push_ready(encode_frame(&error_response(&msg, false)));
                        }
                        Frame::Body(body) => self.handle_request(token, &body, raw, touched),
                    }
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.rbuf.drain(..consumed);
        }
    }

    fn handle_request(&mut self, token: u64, body: &Json, raw: Vec<u8>, touched: &mut Vec<u64>) {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        waco_obs::counter("serve.route.requests", 1);
        let req = match Request::from_json(body) {
            Ok(r) => r,
            Err(e) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.push_ready(encode_frame(&error_response(&e.to_string(), false)));
                }
                return;
            }
        };
        match req {
            Request::Stats => {
                let response = encode_frame(&self.stats_response());
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.push_ready(response);
                }
            }
            Request::Shutdown => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.push_ready(encode_frame(&Json::obj([
                        ("ok", Json::Bool(true)),
                        ("draining", Json::Bool(true)),
                    ])));
                    conn.close_after_flush = true;
                }
                self.shared.shutdown.store(true, Ordering::SeqCst);
                waco_obs::counter("serve.route.shutdowns", 1);
            }
            Request::Sync { .. } => {
                // Journal streaming is shard-to-shard: a joiner dials the
                // source shard directly (`serve --sync-from`).
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.push_ready(encode_frame(&error_response(
                        "sync must target a shard directly, not the router",
                        false,
                    )));
                }
            }
            Request::Tune { matrix, .. } | Request::Lookup { matrix, .. } => {
                let fp = match parse_and_fingerprint(&matrix) {
                    Ok((_, fp)) => fp,
                    Err(e) => {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.push_ready(encode_frame(&error_response(&e, false)));
                        }
                        return;
                    }
                };
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                let slot = conn.push_waiting();
                self.dispatch(
                    Pending {
                        conn: token,
                        slot,
                        frame: raw,
                        fp,
                        tried: Vec::new(),
                    },
                    touched,
                );
            }
        }
    }

    fn fill_slot(&mut self, token: u64, slot: u64, frame: Vec<u8>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // client left while the request was in flight
        };
        if let Some(s) = conn.pending.iter_mut().find(|s| s.id == slot) {
            s.state = SlotState::Ready(frame);
        }
    }

    /// Flushes a client connection as far as the socket allows (ready
    /// prefix of the slot queue → write buffer → socket) and retunes poll
    /// interest — the byte-forwarding twin of the serve loop's `advance`.
    fn advance_client(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while let Some(front) = conn.pending.front_mut() {
            match &mut front.state {
                SlotState::Waiting => break,
                SlotState::Ready(frame) => {
                    conn.wbuf.append(frame);
                    conn.pending.pop_front();
                }
            }
        }
        let mut written = 0;
        while written < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[written..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    written += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        conn.wbuf.drain(..written);
        if conn.close_after_flush && conn.wbuf.is_empty() && conn.pending.is_empty() {
            self.close_conn(token);
            return;
        }
        let want = Interest {
            read: !conn.close_after_flush,
            write: !conn.wbuf.is_empty(),
        };
        if want != conn.interest {
            conn.interest = want;
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_err()
            {
                self.close_conn(token);
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
        }
    }

    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let timeout = self.shared.timeout;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.idle() && now.duration_since(c.last_activity) > timeout)
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            self.close_conn(token);
        }
    }

    // -- shard side ---------------------------------------------------------

    /// Forwards `pending` to the first reachable shard on its key's ring
    /// walk, skipping shards it already tried. When the chosen shard is not
    /// the key's owner, that is a failover. When no shard is reachable, the
    /// client gets an error frame — the only case a routed request fails.
    fn dispatch(&mut self, mut pending: Pending, touched: &mut Vec<u64>) {
        let order = self.ring.successors(pending.fp);
        let primary = order[0];
        for shard in order {
            if pending.tried.contains(&shard) {
                continue;
            }
            if !self.ensure_connected(shard) {
                continue;
            }
            pending.tried.push(shard);
            if shard != primary {
                self.shared.failover.fetch_add(1, Ordering::Relaxed);
                waco_obs::counter("serve.route.failover", 1);
            }
            self.shared.forwarded.fetch_add(1, Ordering::Relaxed);
            waco_obs::counter("serve.route.forwarded", 1);
            let up = &mut self.upstreams[shard];
            up.wbuf.extend_from_slice(&pending.frame);
            up.inflight.push_back(pending);
            self.flush_upstream(shard, touched);
            return;
        }
        touched.push(pending.conn);
        self.fill_slot(
            pending.conn,
            pending.slot,
            encode_frame(&error_response(
                "no shard reachable for this request",
                false,
            )),
        );
    }

    /// Dials the shard if needed. Returns `false` while it is quarantined
    /// or the dial fails (which starts/extends the quarantine).
    fn ensure_connected(&mut self, shard: usize) -> bool {
        if self.upstreams[shard].stream.is_some() {
            return true;
        }
        if let Some(since) = self.upstreams[shard].down_since {
            if since.elapsed() < RETRY_COOLDOWN {
                return false;
            }
        }
        let addr = self.upstreams[shard].addr;
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)
            .and_then(|s| s.set_nonblocking(true).map(|()| s));
        match stream {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                let token = TOKEN_UPSTREAM_BASE + shard as u64;
                if self
                    .poller
                    .add(s.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    self.upstreams[shard].down_since = Some(Instant::now());
                    return false;
                }
                let up = &mut self.upstreams[shard];
                if up.down_since.take().is_some() {
                    self.shared.reconnects.fetch_add(1, Ordering::Relaxed);
                    waco_obs::counter("serve.route.reconnects", 1);
                }
                up.stream = Some(s);
                up.interest = Interest::READ;
                up.rbuf.clear();
                up.wbuf.clear();
                true
            }
            Err(_) => {
                self.mark_down(shard);
                false
            }
        }
    }

    fn mark_down(&mut self, shard: usize) {
        let up = &mut self.upstreams[shard];
        if up.down_since.is_none() {
            self.shared.shard_down.fetch_add(1, Ordering::Relaxed);
            waco_obs::counter("serve.route.shard_down", 1);
        }
        up.down_since = Some(Instant::now());
    }

    /// Tears down a failed shard connection and re-dispatches everything in
    /// flight on it down each key's ring walk — the mid-frame-death path.
    fn upstream_failed(&mut self, shard: usize, touched: &mut Vec<u64>) {
        if let Some(s) = self.upstreams[shard].stream.take() {
            let _ = self.poller.delete(s.as_raw_fd());
        }
        self.upstreams[shard].rbuf.clear();
        self.upstreams[shard].wbuf.clear();
        self.mark_down(shard);
        let stranded: Vec<Pending> = self.upstreams[shard].inflight.drain(..).collect();
        for p in stranded {
            touched.push(p.conn);
            self.dispatch(p, touched);
        }
    }

    fn read_upstream(&mut self, shard: usize, touched: &mut Vec<u64>) {
        let Some(up) = self.upstreams.get_mut(shard) else {
            return;
        };
        let Some(stream) = up.stream.as_mut() else {
            return;
        };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // The shard closed (or died); everything in flight on it
                    // must be re-routed.
                    self.upstream_failed(shard, touched);
                    return;
                }
                Ok(n) => up.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.upstream_failed(shard, touched);
                    return;
                }
            }
        }
        self.pair_upstream_frames(shard, touched);
    }

    /// Pairs complete response frames with the shard's in-flight queue
    /// front — shards answer strictly in order, so position is identity.
    fn pair_upstream_frames(&mut self, shard: usize, touched: &mut Vec<u64>) {
        let mut consumed = 0;
        loop {
            let up = &self.upstreams[shard];
            match decode_frame(&up.rbuf[consumed..]) {
                Decoded::Incomplete => break,
                Decoded::Oversized(_) => {
                    // A shard violating framing cannot be trusted for the
                    // rest of the stream either.
                    self.upstream_failed(shard, touched);
                    return;
                }
                Decoded::Complete(n, _frame) => {
                    let raw = up.rbuf[consumed..consumed + n].to_vec();
                    consumed += n;
                    if let Some(p) = self.upstreams[shard].inflight.pop_front() {
                        touched.push(p.conn);
                        self.fill_slot(p.conn, p.slot, raw);
                    }
                    // An unsolicited frame (no pending request) is dropped.
                }
            }
        }
        self.upstreams[shard].rbuf.drain(..consumed);
    }

    fn flush_upstream(&mut self, shard: usize, touched: &mut Vec<u64>) {
        let Some(up) = self.upstreams.get_mut(shard) else {
            return;
        };
        let Some(stream) = up.stream.as_mut() else {
            return;
        };
        let mut written = 0;
        while written < up.wbuf.len() {
            match stream.write(&up.wbuf[written..]) {
                Ok(0) => {
                    self.upstream_failed(shard, touched);
                    return;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.upstream_failed(shard, touched);
                    return;
                }
            }
        }
        let fd = stream.as_raw_fd();
        up.wbuf.drain(..written);
        let want = Interest {
            read: true,
            write: !up.wbuf.is_empty(),
        };
        if want != up.interest {
            up.interest = want;
            let token = TOKEN_UPSTREAM_BASE + shard as u64;
            if self.poller.modify(fd, token, want).is_err() {
                self.upstream_failed(shard, touched);
            }
        }
    }

    // -- stats --------------------------------------------------------------

    fn stats_response(&self) -> Json {
        let shard_states = Json::Arr(
            self.upstreams
                .iter()
                .map(|u| {
                    Json::obj([
                        ("addr", Json::str(u.addr.to_string())),
                        ("state", Json::str(u.state_name())),
                        ("inflight", Json::num(u.inflight.len() as f64)),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("ok", Json::Bool(true)),
            (
                "router",
                Json::obj([
                    ("shards", Json::num(self.upstreams.len() as f64)),
                    ("vnodes", Json::num(self.ring.vnodes() as f64)),
                    (
                        "requests",
                        Json::num(self.shared.requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "forwarded",
                        Json::num(self.shared.forwarded.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "failover",
                        Json::num(self.shared.failover.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "shard_down",
                        Json::num(self.shared.shard_down.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "reconnects",
                        Json::num(self.shared.reconnects.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "draining",
                        Json::Bool(self.shared.shutdown.load(Ordering::SeqCst)),
                    ),
                    ("shard_states", shard_states),
                ]),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Router handle
// ---------------------------------------------------------------------------

/// A running router.
pub struct Router {
    shared: Arc<RouterShared>,
    local_addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Router {
    /// Binds and starts the proxy loop. Shards are dialed lazily on first
    /// use, so they may come up after the router does.
    ///
    /// # Errors
    ///
    /// [`WacoError::Io`] when the bind or poller creation fails.
    pub fn start(config: RouterConfig) -> Result<Router, WacoError> {
        let _span = waco_obs::span("serve.route.start");
        let listener = TcpListener::bind(config.addr)
            .map_err(|e| WacoError::io(format!("binding {}", config.addr), e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| WacoError::io("setting listener nonblocking", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| WacoError::io("reading bound address", e))?;

        let (waker, wake_rx) =
            wake_pair().map_err(|e| WacoError::io("creating router waker", e))?;
        let poller = Poller::new().map_err(|e| WacoError::io("creating poller", e))?;
        poller
            .add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .map_err(|e| WacoError::io("registering listener", e))?;
        poller
            .add(wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)
            .map_err(|e| WacoError::io("registering waker", e))?;

        let shared = Arc::new(RouterShared {
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            failover: AtomicU64::new(0),
            shard_down: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            waker,
            timeout: config.timeout,
        });

        let upstreams: Vec<Upstream> = config
            .shards
            .iter()
            .map(|&addr| Upstream {
                addr,
                stream: None,
                down_since: None,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                inflight: VecDeque::new(),
                interest: Interest::READ,
            })
            .collect();
        let ring = HashRing::with_vnodes(upstreams.len(), config.vnodes);

        let thread = {
            let shared = Arc::clone(&shared);
            let client_base = TOKEN_UPSTREAM_BASE + upstreams.len() as u64;
            std::thread::spawn(move || {
                let mut rl = RouterLoop {
                    shared,
                    ring,
                    poller,
                    listener: Some(listener),
                    wake_rx,
                    upstreams,
                    conns: HashMap::new(),
                    next_token: client_base,
                    max_connections: config.max_connections,
                };
                rl.run();
            })
        };

        Ok(Router {
            shared,
            local_addr,
            thread: Some(thread),
        })
    }

    /// The actual bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Flips the drain flag and wakes the loop; [`Router::wait`] completes
    /// the drain. Shards are not told to shut down.
    pub fn begin_shutdown(&self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            self.shared.waker.wake();
        }
    }

    /// Waits for the proxy loop to drain and exit.
    pub fn wait(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
