//! Fingerprint+schedule-keyed cache of lowered [`ExecutionPlan`]s.
//!
//! Tuning decisions are cached by sparsity [`Fingerprint`] (see [`crate::cache`]);
//! this module caches the *next* stage of the pipeline: the plan the decision
//! lowers to. A warm server that has answered "which schedule for this
//! structure" before skips schedule validation, format-spec derivation, and
//! loop-op resolution entirely — it fetches the `Arc`'d plan and runs it.
//! The cache shares the sharded-LRU machinery of [`crate::lru`], so lookups
//! from concurrent request threads contend per shard, not globally.
//!
//! Keys hash the matrix fingerprint, the kernel instance (name + dims +
//! dense extent), and every field of the schedule directly (no JSON
//! round-trip on the hot path — a warm lookup must stay cheaper than the
//! lowering it skips), so two requests agree on a key exactly when they
//! would lower the identical plan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use waco_exec::plan::ExecutionPlan;
use waco_format::AxisPart;
use waco_schedule::{Space, SuperSchedule};

use crate::fingerprint::{Fingerprint, Fnv64};
use crate::lru::ShardedLru;

/// Counters for [`PlanCache`] effectiveness (reported by `stats` requests
/// and asserted by the serve smoke tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache (lowering skipped).
    pub hits: u64,
    /// Lookups that had to lower and insert.
    pub misses: u64,
    /// Plans currently resident.
    pub resident: u64,
    /// Maximum resident plans.
    pub capacity: u64,
}

/// A sharded LRU of lowered plans keyed by
/// `(fingerprint, kernel instance, schedule)`.
#[derive(Debug)]
pub struct PlanCache {
    plans: ShardedLru<Arc<ExecutionPlan>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans, sharded to the runtime's
    /// worker count like the tuning cache.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            plans: ShardedLru::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Explicit shard count (must be > 0; rounded up to a power of two).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        PlanCache {
            plans: ShardedLru::with_shards(capacity, shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache key: FNV-1a over the fingerprint, the kernel instance, and
    /// every lowering-relevant schedule field. Allocation-free — the warm
    /// path is one hash plus one sharded-LRU probe.
    pub fn key(fp: Fingerprint, sched: &SuperSchedule, space: &Space) -> u64 {
        let part_bit = |p: AxisPart| match p {
            AxisPart::Outer => 1u64,
            AxisPart::Inner => 0u64,
        };
        let mut h = Fnv64::new();
        h.write_u64(fp.hi);
        h.write_u64(fp.lo);
        h.write_u64(space.kernel as u64);
        for &d in &space.sparse_dims {
            h.write_u64(d as u64);
        }
        h.write_u64(space.dense_extent as u64);
        for &s in &sched.splits {
            h.write_u64(s as u64);
        }
        for v in &sched.loop_order {
            h.write_u64((v.dim as u64) << 1 | part_bit(v.part));
        }
        match &sched.parallel {
            None => h.write_u64(u64::MAX),
            Some(p) => {
                h.write_u64((p.var.dim as u64) << 1 | part_bit(p.var.part));
                h.write_u64(p.threads as u64);
                h.write_u64(p.chunk as u64);
            }
        }
        for (axis, fmt) in sched.format.order.iter().zip(&sched.format.formats) {
            h.write_u64(
                (axis.dim as u64) << 2
                    | part_bit(axis.part) << 1
                    | u64::from(*fmt == waco_format::LevelFormat::Compressed),
            );
        }
        h.finish()
    }

    /// Fetches the plan for `(fp, sched, space)`, lowering and inserting on
    /// miss — the serve-side fast path: a warm cache makes this an `Arc`
    /// clone.
    ///
    /// # Errors
    ///
    /// Lowering errors from [`ExecutionPlan::build`] on a miss.
    pub fn get_or_lower(
        &self,
        fp: Fingerprint,
        sched: &SuperSchedule,
        space: &Space,
    ) -> waco_exec::Result<Arc<ExecutionPlan>> {
        let key = Self::key(fp, sched, space);
        if let Some(plan) = self.plans.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            waco_obs::counter("serve.plan_cache.hits", 1);
            return Ok(plan);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        waco_obs::counter("serve.plan_cache.misses", 1);
        let plan = Arc::new(ExecutionPlan::build(sched, space)?);
        self.plans.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            resident: self.plans.len() as u64,
            capacity: self.plans.capacity() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_schedule::{named, Kernel};
    use waco_tensor::gen::{self, Rng64};

    fn matrix_and_space() -> (waco_tensor::CooMatrix, Space) {
        let mut rng = Rng64::seed_from(21);
        let m = gen::uniform_random(32, 32, 0.1, &mut rng);
        let space = Space::new(Kernel::SpMV, vec![32, 32], 0);
        (m, space)
    }

    #[test]
    fn warm_lookup_skips_lowering() {
        let (m, space) = matrix_and_space();
        let fp = Fingerprint::of_matrix(&m);
        let sched = named::default_csr(&space);
        let cache = PlanCache::new(8);

        let cold = cache.get_or_lower(fp, &sched, &space).unwrap();
        let warm = cache.get_or_lower(fp, &sched, &space).unwrap();
        assert!(Arc::ptr_eq(&cold, &warm), "warm hit returns the same plan");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 1, 1));
    }

    #[test]
    fn distinct_schedules_get_distinct_plans() {
        let (m, space) = matrix_and_space();
        let fp = Fingerprint::of_matrix(&m);
        let a = named::default_csr(&space);
        let mut b = a.clone();
        b.parallel = None;
        let cache = PlanCache::new(8);
        let pa = cache.get_or_lower(fp, &a, &space).unwrap();
        let pb = cache.get_or_lower(fp, &b, &space).unwrap();
        assert!(!Arc::ptr_eq(&pa, &pb));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn distinct_fingerprints_do_not_collide() {
        let (m, space) = matrix_and_space();
        let mut rng = Rng64::seed_from(22);
        let other = gen::powerlaw_rows(32, 32, 4.0, 1.3, &mut rng);
        let sched = named::default_csr(&space);
        assert_ne!(
            PlanCache::key(Fingerprint::of_matrix(&m), &sched, &space),
            PlanCache::key(Fingerprint::of_matrix(&other), &sched, &space),
        );
    }

    #[test]
    fn invalid_schedule_surfaces_lowering_error() {
        let (m, space) = matrix_and_space();
        let fp = Fingerprint::of_matrix(&m);
        let mut sched = named::default_csr(&space);
        sched.loop_order.pop();
        let cache = PlanCache::new(8);
        assert!(cache.get_or_lower(fp, &sched, &space).is_err());
        assert_eq!(cache.stats().resident, 0);
    }
}
