//! The tuning backend behind the serve loop.
//!
//! [`Tuner`] abstracts "given a matrix and a kernel instance, produce a
//! decision" so the server, tests, and benches can swap backends. The
//! production backend is [`WacoTuner`]: a lazily-trained [`Waco`] pipeline
//! per `(kernel, dense extent)` pair, sharing one simulated machine and one
//! training corpus, with optional model checkpoints and on-disk ANNS index
//! snapshots for warm starts.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use waco_core::{Waco, WacoConfig, WacoError};
use waco_exec::plan::ExecutionPlan;
use waco_schedule::{Kernel, Space, SuperSchedule};
use waco_sim::{MachineConfig, SimError, Simulator};
use waco_tensor::{gen, CooMatrix};

use crate::fingerprint::Fingerprint;
use crate::plan_cache::{PlanCache, PlanCacheStats};

/// What a tuner produces for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedOutcome {
    /// The winning format + schedule.
    pub schedule: SuperSchedule,
    /// Simulated time of one tuned kernel invocation, seconds.
    pub kernel_seconds: f64,
    /// Simulated tuning cost, seconds.
    pub tuning_seconds: f64,
}

/// A tuning backend.
pub trait Tuner: Send + Sync {
    /// Tunes `m` for `kernel` with the given dense extent.
    ///
    /// # Errors
    ///
    /// Backend-specific [`WacoError`]s; the server maps them to error
    /// responses without dropping the connection.
    fn tune(
        &self,
        m: &CooMatrix,
        kernel: Kernel,
        dense_extent: usize,
    ) -> Result<TunedOutcome, WacoError>;

    /// Lowered-plan cache counters, when the backend keeps one. The server's
    /// `stats` frame reports these as the plan-cache hit rate; backends
    /// without a plan cache (test doubles) inherit the `None` default.
    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        None
    }
}

/// Construction parameters for [`WacoTuner`].
#[derive(Debug, Clone)]
pub struct WacoTunerConfig {
    /// End-to-end WACO configuration for each lazily-trained pipeline.
    pub waco: WacoConfig,
    /// Training corpus shape: `(families, base_size)` fed to
    /// [`waco_tensor::gen::corpus`] with the config's seed.
    pub corpus: (usize, usize),
    /// Optional cost-model checkpoint applied after training.
    pub checkpoint: Option<PathBuf>,
    /// Optional directory for ANNS index snapshots
    /// ([`Waco::set_index_cache`]); a warm server skips graph construction.
    pub index_cache: Option<PathBuf>,
    /// Capacity of the lowered-plan cache (fingerprint+schedule keyed);
    /// a warm server fetches the [`ExecutionPlan`] instead of re-lowering.
    pub plan_cache_capacity: usize,
}

impl Default for WacoTunerConfig {
    fn default() -> Self {
        WacoTunerConfig {
            waco: WacoConfig::tiny(),
            corpus: (4, 24),
            checkpoint: None,
            index_cache: None,
            plan_cache_capacity: 256,
        }
    }
}

/// The production [`Tuner`]: one [`Waco`] pipeline per `(kernel, dense
/// extent)` pair, trained on first use.
///
/// Pipelines live behind a single mutex, so tuning requests serialize here;
/// the data-parallel work inside each `tune_matrix` call still fans out on
/// the shared `waco-runtime` pool, and cache hits in the serving layer never
/// take this lock — which is exactly the amortization the cache exists for.
pub struct WacoTuner {
    cfg: WacoTunerConfig,
    pipelines: Mutex<HashMap<(Kernel, usize), Waco>>,
    plans: PlanCache,
}

impl std::fmt::Debug for WacoTuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WacoTuner").field("cfg", &self.cfg).finish()
    }
}

impl WacoTuner {
    /// Creates the tuner; training happens lazily per kernel instance.
    pub fn new(cfg: WacoTunerConfig) -> Self {
        let plans = PlanCache::new(cfg.plan_cache_capacity);
        WacoTuner {
            cfg,
            pipelines: Mutex::new(HashMap::new()),
            plans,
        }
    }

    /// The lowered plan for running `sched` over `m`'s structure — an `Arc`
    /// clone when the plan cache is warm, a fresh lowering otherwise. Never
    /// takes the pipeline lock, so concurrent requests for cached decisions
    /// bypass the tuner entirely.
    ///
    /// # Errors
    ///
    /// Lowering errors if `sched` is invalid for `space`.
    pub fn plan_for(
        &self,
        m: &CooMatrix,
        sched: &SuperSchedule,
        space: &Space,
    ) -> Result<Arc<ExecutionPlan>, WacoError> {
        self.plans
            .get_or_lower(Fingerprint::of_matrix(m), sched, space)
            .map_err(|e| WacoError::Sim(SimError::Exec(e)))
    }

    /// Hit/miss/occupancy counters of the lowered-plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Eagerly trains (or restores) the pipeline for one kernel instance —
    /// servers call this at startup so the first request doesn't pay the
    /// training cost.
    ///
    /// # Errors
    ///
    /// Same as [`Tuner::tune`].
    pub fn warm_up(&self, kernel: Kernel, dense_extent: usize) -> Result<(), WacoError> {
        let mut pipelines = self.pipelines.lock().expect("tuner lock poisoned");
        self.pipeline_for(&mut pipelines, kernel, dense_extent)?;
        Ok(())
    }

    fn pipeline_for<'a>(
        &self,
        pipelines: &'a mut HashMap<(Kernel, usize), Waco>,
        kernel: Kernel,
        dense_extent: usize,
    ) -> Result<&'a mut Waco, WacoError> {
        if kernel == Kernel::MTTKRP {
            return Err(WacoError::WrongKernel {
                kernel,
                expected: "a 2-D kernel (the serve protocol tunes matrices)",
            });
        }
        match pipelines.entry((kernel, dense_extent)) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => {
                let _span = waco_obs::span("serve.tuner.train");
                let sim = Simulator::new(MachineConfig::xeon_like());
                let (families, base) = self.cfg.corpus;
                let corpus = gen::corpus(families, base, self.cfg.waco.seed);
                let (mut waco, _stats) =
                    Waco::train_2d(sim, kernel, &corpus, dense_extent, self.cfg.waco)?;
                if let Some(ckpt) = &self.cfg.checkpoint {
                    waco.load_checkpoint(ckpt)?;
                }
                if let Some(dir) = &self.cfg.index_cache {
                    waco.set_index_cache(dir.clone());
                }
                waco_obs::counter("serve.tuner.pipelines_trained", 1);
                Ok(e.insert(waco))
            }
        }
    }
}

impl Tuner for WacoTuner {
    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        Some(self.plans.stats())
    }

    fn tune(
        &self,
        m: &CooMatrix,
        kernel: Kernel,
        dense_extent: usize,
    ) -> Result<TunedOutcome, WacoError> {
        let _span = waco_obs::span("serve.tuner.tune");
        let (tuned, space) = {
            let mut pipelines = self.pipelines.lock().expect("tuner lock poisoned");
            let waco = self.pipeline_for(&mut pipelines, kernel, dense_extent)?;
            let tuned = waco.tune_matrix(m)?;
            let space = waco.space_for_matrix(m);
            (tuned, space)
        };
        // Pre-lower the winning schedule outside the pipeline lock so the
        // decision is already executable when the client comes back with it.
        self.plan_for(m, &tuned.result.sched, &space)?;
        if waco_obs::enabled() {
            // The two-stage search's accounting, exported by `stats`:
            // candidates the asymptotic pruner discarded, and cost-model
            // evaluations the masked traversal actually performed.
            waco_obs::counter("serve.tune.pruned", tuned.breakdown.pruned as u64);
            waco_obs::counter("serve.tune.evals", tuned.breakdown.evals as u64);
        }
        Ok(TunedOutcome {
            schedule: tuned.result.sched,
            kernel_seconds: tuned.result.kernel_seconds,
            tuning_seconds: tuned.result.tuning_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waco_tensor::gen::Rng64;

    #[test]
    fn tunes_and_reuses_pipeline() {
        let tuner = WacoTuner::new(WacoTunerConfig::default());
        let mut rng = Rng64::seed_from(11);
        let m = gen::uniform_random(24, 24, 0.1, &mut rng);
        let a = tuner.tune(&m, Kernel::SpMV, 0).unwrap();
        assert!(a.kernel_seconds > 0.0);
        // Second call reuses the trained pipeline and is deterministic.
        let b = tuner.tune(&m, Kernel::SpMV, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(tuner.pipelines.lock().unwrap().len(), 1);
    }

    #[test]
    fn tune_warms_the_plan_cache() {
        let tuner = WacoTuner::new(WacoTunerConfig::default());
        let mut rng = Rng64::seed_from(13);
        let m = gen::uniform_random(24, 24, 0.1, &mut rng);
        let outcome = tuner.tune(&m, Kernel::SpMV, 0).unwrap();
        let after_tune = tuner.plan_cache_stats();
        assert_eq!(after_tune.misses, 1, "tune pre-lowers the winner");

        // A client executing the decision hits the cache: no re-lowering.
        let space = Space::new(Kernel::SpMV, vec![24, 24], 0);
        let plan = tuner.plan_for(&m, &outcome.schedule, &space).unwrap();
        let warm = tuner.plan_cache_stats();
        assert_eq!((warm.hits, warm.misses), (1, 1));
        assert_eq!(plan.kernel(), Kernel::SpMV);
    }

    #[test]
    fn mttkrp_is_rejected() {
        let tuner = WacoTuner::new(WacoTunerConfig::default());
        let m = gen::mesh2d(4, 4);
        assert!(matches!(
            tuner.tune(&m, Kernel::MTTKRP, 8),
            Err(WacoError::WrongKernel { .. })
        ));
    }

    #[test]
    fn index_cache_warm_start_matches_cold() {
        let dir = std::env::temp_dir().join(format!("waco-tuner-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = WacoTunerConfig {
            index_cache: Some(dir.clone()),
            ..WacoTunerConfig::default()
        };
        let mut rng = Rng64::seed_from(12);
        let m = gen::uniform_random(24, 24, 0.08, &mut rng);

        let cold = WacoTuner::new(cfg.clone());
        let a = cold.tune(&m, Kernel::SpMV, 0).unwrap();
        let snapshots: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert!(
            snapshots
                .iter()
                .any(|n| n.to_string_lossy().ends_with(".anns")),
            "cold tune must write an index snapshot, found {snapshots:?}"
        );

        // A fresh tuner (same seed → same weights) loads the snapshot and
        // produces the identical decision.
        let warm = WacoTuner::new(cfg);
        let b = warm.tune(&m, Kernel::SpMV, 0).unwrap();
        assert_eq!(a, b);
    }
}
