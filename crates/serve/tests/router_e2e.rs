//! Router end-to-end behaviour under pipelining and shard loss.
//!
//! The shards here are scripted frame echoes, not real servers: the router
//! forwards frames and re-orders responses without inspecting payloads, so a
//! fake shard that tags its replies is enough to observe exactly which shard
//! answered and in what order the client saw it.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;
use std::time::Duration;

use waco_serve::protocol::{read_frame, request_json, write_frame};
use waco_serve::{Client, Fingerprint, HashRing, Json, Router, RouterConfig};
use waco_tensor::gen::{self, Rng64};
use waco_tensor::io::write_matrix_market;

const TIMEOUT: Duration = Duration::from_secs(30);

/// A shard that answers every well-framed request with `{"ok":true,
/// "shard":id}` after `delay`, until its listener is dropped at test end.
struct FakeShard {
    addr: SocketAddr,
    stop: mpsc::Sender<()>,
}

fn spawn_fake_shard(id: usize, delay: Duration) -> FakeShard {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (stop, stopped) = mpsc::channel::<()>();
    std::thread::spawn(move || {
        listener.set_nonblocking(true).unwrap();
        loop {
            if stopped.try_recv() != Err(mpsc::TryRecvError::Empty) {
                return;
            }
            match listener.accept() {
                Ok((mut sock, _)) => {
                    sock.set_nonblocking(false).unwrap();
                    while let Ok(Some(_)) = read_frame(&mut sock) {
                        std::thread::sleep(delay);
                        let reply =
                            Json::obj([("ok", Json::Bool(true)), ("shard", Json::num(id as f64))]);
                        if write_frame(&mut sock, &reply).is_err() {
                            break;
                        }
                        let _ = sock.flush();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        }
    });
    FakeShard { addr, stop }
}

/// A tune request whose matrix the `n`-shard ring routes to `target`.
fn request_routed_to(n: usize, target: usize) -> Json {
    let ring = HashRing::new(n);
    for i in 0..10_000u64 {
        let mut rng = Rng64::seed_from(0x70e2 + i);
        let m = gen::banded(30 + (i as usize % 11), 2 + (i as usize % 4), 0.85, &mut rng);
        if ring.route(Fingerprint::of_matrix(&m)) == target {
            let mut text = Vec::new();
            write_matrix_market(&mut text, &m).unwrap();
            return request_json("tune", "spmv", 0, &String::from_utf8(text).unwrap());
        }
    }
    panic!("no matrix found routing to shard {target} of {n}");
}

fn shard_of(reply: &Json) -> u64 {
    reply
        .get("shard")
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("reply without a shard tag: {reply}"))
}

fn start_router(shards: &[SocketAddr]) -> Router {
    let mut b = RouterConfig::builder().addr("127.0.0.1:0");
    for s in shards {
        b = b.shard(s.to_string());
    }
    Router::start(b.build().unwrap()).unwrap()
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    // Shard 0 is slow, shard 1 instant. A slow-fast-slow pipeline must still
    // be answered slow-fast-slow: the fast reply may not overtake.
    let slow = spawn_fake_shard(0, Duration::from_millis(300));
    let fast = spawn_fake_shard(1, Duration::ZERO);
    let router = start_router(&[slow.addr, fast.addr]);

    let to_slow = request_routed_to(2, 0);
    let to_fast = request_routed_to(2, 1);
    let mut client = Client::connect(&router.local_addr().to_string(), TIMEOUT).unwrap();
    client.send(&to_slow).unwrap();
    client.send(&to_fast).unwrap();
    client.send(&to_slow).unwrap();

    let order: Vec<u64> = (0..3).map(|_| shard_of(&client.recv().unwrap())).collect();
    assert_eq!(
        order,
        vec![0, 1, 0],
        "responses must arrive in request order despite shard 1 replying first"
    );
    drop(client);

    router.begin_shutdown();
    router.wait();
    let _ = slow.stop.send(());
    let _ = fast.stop.send(());
}

#[test]
fn dead_primary_fails_over_to_ring_successor() {
    // Shard 0's address is bound once and dropped: connecting is refused.
    // Requests owned by shard 0 must be answered by shard 1, and the router
    // must account the detour.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let live = spawn_fake_shard(1, Duration::ZERO);
    let router = start_router(&[dead_addr, live.addr]);

    let to_dead = request_routed_to(2, 0);
    let mut client = Client::connect(&router.local_addr().to_string(), TIMEOUT).unwrap();
    client.send(&to_dead).unwrap();
    let reply = client.recv().unwrap();
    assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(shard_of(&reply), 1, "the live successor must answer");

    let stats = client.stats().unwrap();
    let router_stats = stats
        .get("router")
        .expect("stats must carry a router section");
    let failover = router_stats.get("failover").and_then(|v| v.as_u64());
    let shard_down = router_stats.get("shard_down").and_then(|v| v.as_u64());
    assert!(
        failover >= Some(1),
        "failover counter must record the detour"
    );
    assert!(
        shard_down >= Some(1),
        "shard_down must record the dead primary"
    );
    drop(client);

    router.begin_shutdown();
    router.wait();
    let _ = live.stop.send(());
}
