//! Property suites for the tuning cache's three load-bearing invariants:
//! fingerprint stability, the LRU capacity bound under contention, and
//! journal recovery after torn writes.

use std::sync::Arc;

use waco_check::props;
use waco_serve::fingerprint::Fingerprint;
use waco_serve::journal::{Journal, JOURNAL_MAGIC};
use waco_serve::ShardedLru;
use waco_tensor::gen::{self, Rng64};
use waco_tensor::CooMatrix;

props! {
    /// Fingerprints are deterministic and depend only on the sparsity
    /// structure, not on the order the COO entries were assembled in.
    cases = 32,
    fn fingerprint_ignores_entry_order(n in 4usize..64, dens_pm in 20usize..250,
                                       seed in 0u64..1_000_000) {
        let mut rng = Rng64::seed_from(seed);
        let m = gen::uniform_random(n, n, dens_pm as f64 / 1000.0, &mut rng);
        let fp = Fingerprint::of_matrix(&m);
        assert_eq!(fp, Fingerprint::of_matrix(&m), "recomputation is stable");

        let mut triplets: Vec<_> = m.iter().collect();
        rng.shuffle(&mut triplets);
        let shuffled = CooMatrix::from_triplets(m.nrows(), m.ncols(), triplets)
            .expect("same entries rebuild");
        assert_eq!(fp, Fingerprint::of_matrix(&shuffled), "order must not matter");
    }

    /// Dropping a nonzero changes the structure and therefore the
    /// fingerprint (nnz is part of the canonical encoding).
    cases = 24,
    fn fingerprint_separates_structures(n in 4usize..64, seed in 0u64..1_000_000) {
        let mut rng = Rng64::seed_from(seed);
        let m = gen::uniform_random(n, n, 0.2, &mut rng);
        let mut triplets: Vec<_> = m.iter().collect();
        if triplets.len() < 2 {
            return; // nothing to drop
        }
        let victim = rng.below(triplets.len());
        triplets.remove(victim);
        let smaller = CooMatrix::from_triplets(m.nrows(), m.ncols(), triplets).unwrap();
        assert_ne!(Fingerprint::of_matrix(&m), Fingerprint::of_matrix(&smaller));
    }

    /// After truncating the journal file at an arbitrary byte offset, a
    /// reopen recovers exactly the records that were completely written
    /// before the cut — never a torn one, never fewer than the complete
    /// prefix.
    cases = 24,
    fn journal_recovers_complete_prefix(nrec in 1usize..16, cut_frac_pm in 0usize..1001,
                                        seed in 0u64..1_000_000) {
        let dir = std::env::temp_dir().join(format!(
            "waco-serve-props-{}-{seed}-{nrec}-{cut_frac_pm}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("torn.journal");

        let mut rng = Rng64::seed_from(seed);
        let payloads: Vec<Vec<u8>> = (0..nrec)
            .map(|i| {
                let len = 1 + rng.below(200);
                (0..len).map(|j| (i * 31 + j) as u8).collect()
            })
            .collect();
        {
            let (mut journal, recovered, _) =
                Journal::open(&path, |_| Vec::new()).expect("fresh journal");
            assert!(recovered.is_empty());
            for p in &payloads {
                journal.append(p).expect("append");
            }
            journal.sync().expect("sync");
        }

        // Tear the file at a proportional offset and work out which
        // records survive intact: header (magic + version), then
        // [len u32][checksum u64][payload] per record.
        let full = std::fs::metadata(&path).expect("journal exists").len();
        let cut = full * cut_frac_pm as u64 / 1000;
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).expect("truncate");
        drop(file);
        let header_len = (JOURNAL_MAGIC.len() + 4) as u64;
        let mut offset = header_len;
        let mut expect = 0usize;
        for p in &payloads {
            offset += 4 + 8 + p.len() as u64;
            if offset <= cut {
                expect += 1;
            }
        }
        if cut < header_len {
            expect = 0; // damaged header: the journal is reinitialized
        }

        let (mut journal, recovered, report) =
            Journal::open(&path, |_| Vec::new()).expect("reopen after tear");
        assert_eq!(recovered.len(), expect, "complete prefix, cut at {cut}/{full}");
        assert_eq!(recovered, payloads[..expect].to_vec());
        assert_eq!(report.records_recovered, expect);

        // The recovered journal accepts appends and a further clean reopen
        // sees them.
        journal.append(b"after-recovery").expect("append after recovery");
        journal.sync().expect("sync");
        drop(journal);
        let (_, again, _) = Journal::open(&path, |_| Vec::new()).expect("clean reopen");
        assert_eq!(again.len(), expect + 1);
        assert_eq!(again.last().map(Vec::as_slice), Some(&b"after-recovery"[..]));

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Eight threads hammer a 64-entry LRU with a key space 8x its capacity;
/// the resident count must never exceed capacity, mid-flight or after.
#[test]
fn lru_never_exceeds_capacity_under_contention() {
    const CAPACITY: usize = 64;
    const THREADS: usize = 8;
    const OPS: usize = 4_000;

    let lru = Arc::new(ShardedLru::with_shards(CAPACITY, THREADS));
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|t| {
            let lru = Arc::clone(&lru);
            std::thread::spawn(move || {
                let mut rng = Rng64::seed_from(0x10c0 + t);
                for i in 0..OPS {
                    let key = rng.below(CAPACITY * 8) as u64;
                    if rng.chance(0.6) {
                        lru.insert(key, (t, i));
                    } else {
                        lru.get(key);
                    }
                    if i % 256 == 0 {
                        assert!(
                            lru.len() <= lru.capacity(),
                            "resident {} exceeds capacity {}",
                            lru.len(),
                            lru.capacity()
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panicked");
    }

    assert!(lru.len() <= lru.capacity());
    assert!(!lru.is_empty(), "the cache retained recent entries");
    // Every resident entry is also reachable through `get`.
    let mut keys = Vec::new();
    lru.for_each(|k, _| keys.push(k));
    assert_eq!(keys.len(), lru.len());
    for k in keys {
        assert!(lru.get(k).is_some());
    }
}
