//! End-to-end tests of the serving layer: a real listener on an ephemeral
//! loopback port, a real client, and a journal-backed restart.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use waco_serve::json::Json;
use waco_serve::{Client, ServeConfig, Server, WacoTuner, WacoTunerConfig};
use waco_tensor::gen::{self, Rng64};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("waco-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(cache_dir: &PathBuf) -> Server {
    let cfg = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .cache_dir(cache_dir)
        .workers(2)
        .timeout_secs(60.0)
        .build()
        .unwrap();
    let tuner = Arc::new(WacoTuner::new(WacoTunerConfig {
        index_cache: Some(cache_dir.join("index")),
        ..WacoTunerConfig::default()
    }));
    Server::start(cfg, tuner).unwrap()
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.local_addr().to_string(), Duration::from_secs(60)).unwrap()
}

#[test]
fn tune_hits_cache_and_survives_restart() {
    let dir = tmp_dir("restart");
    let mut rng = Rng64::seed_from(21);
    let m = gen::uniform_random(24, 24, 0.1, &mut rng);

    let first_decision;
    {
        let server = start_server(&dir);
        let mut client = connect(&server);

        // Unknown matrix: lookup misses, tune computes.
        let miss = client.lookup(&m, "spmv", 0).unwrap();
        assert!(!miss.cached);
        assert!(miss.decision.is_none());

        let cold = client.tune(&m, "spmv", 0).unwrap();
        assert!(!cold.cached, "first tune must be computed");
        let d = cold.decision.expect("tune returns a decision");
        assert!(d.kernel_seconds > 0.0);
        first_decision = d;

        // Same matrix again: served from cache, identical decision.
        let warm = client.tune(&m, "spmv", 0).unwrap();
        assert!(warm.cached, "second tune must be a cache hit");
        assert_eq!(warm.decision.unwrap(), first_decision);

        // The hit is observable in stats.
        let stats = client.stats().unwrap();
        let cache = stats.get("cache").unwrap();
        assert!(cache.get("hits").unwrap().as_u64().unwrap() >= 1);
        assert_eq!(cache.get("inserts").unwrap().as_u64(), Some(1));

        client.shutdown().unwrap();
        server.wait().unwrap();
    }

    // Restart from the journal: lookup answers without re-tuning.
    {
        let server = start_server(&dir);
        let mut client = connect(&server);
        let stats = client.stats().unwrap();
        assert!(
            stats
                .get("cache")
                .unwrap()
                .get("replayed")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 1,
            "journal must replay the decision"
        );
        let found = client.lookup(&m, "spmv", 0).unwrap();
        assert!(
            found.cached,
            "restarted server must answer from the journal"
        );
        assert_eq!(found.decision.unwrap(), first_decision);
        client.shutdown().unwrap();
        server.wait().unwrap();
    }
}

#[test]
fn concurrent_clients_agree() {
    let dir = tmp_dir("concurrent");
    let server = start_server(&dir);

    // Pre-tune one matrix so threads exercise the hit path concurrently.
    let mut rng = Rng64::seed_from(22);
    let m = gen::uniform_random(24, 24, 0.08, &mut rng);
    let baseline = {
        let mut client = connect(&server);
        client.tune(&m, "spmv", 0).unwrap().decision.unwrap()
    };

    let addr = server.local_addr().to_string();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let m = m.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, Duration::from_secs(60)).unwrap();
                client.tune(&m, "spmv", 0).unwrap()
            })
        })
        .collect();
    for h in handles {
        let reply = h.join().unwrap();
        assert!(reply.cached);
        assert_eq!(reply.decision.unwrap(), baseline);
    }

    let mut client = connect(&server);
    let stats = client.stats().unwrap();
    assert!(
        stats
            .get("cache")
            .unwrap()
            .get("hits")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 8
    );
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn malformed_requests_get_error_responses() {
    let dir = tmp_dir("malformed");
    let server = start_server(&dir);
    let mut client = connect(&server);

    // Unknown op.
    let reply = client
        .roundtrip(&Json::obj([("op", Json::str("dance"))]))
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
    assert!(reply
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("dance"));

    // Tune with an unparseable matrix: error response, connection stays up.
    let reply = client
        .roundtrip(&waco_serve::protocol::request_json(
            "tune",
            "spmv",
            0,
            "not a matrix",
        ))
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));

    // The same connection still serves valid requests afterwards.
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("ok").unwrap().as_bool(), Some(true));

    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn builder_rejects_bad_config() {
    for (build, what) in [
        (
            ServeConfig::builder().cache_dir("/tmp/x").addr("8.8.8.8:1"),
            "non-loopback",
        ),
        (
            ServeConfig::builder()
                .cache_dir("/tmp/x")
                .addr("not-an-addr"),
            "unparseable",
        ),
        (ServeConfig::builder(), "missing cache dir"),
        (
            ServeConfig::builder().cache_dir("/tmp/x").workers(0),
            "zero workers",
        ),
        (
            ServeConfig::builder().cache_dir("/tmp/x").queue_depth(0),
            "zero queue",
        ),
        (
            ServeConfig::builder().cache_dir("/tmp/x").cache_capacity(0),
            "zero capacity",
        ),
        (
            ServeConfig::builder().cache_dir("/tmp/x").timeout_secs(0.0),
            "zero timeout",
        ),
    ] {
        assert!(
            matches!(build.build(), Err(waco_core::WacoError::InvalidConfig(_))),
            "{what} must be rejected"
        );
    }
    // And a valid one passes.
    assert!(ServeConfig::builder().cache_dir("/tmp/x").build().is_ok());
}
