//! End-to-end tests of the serving layer: a real listener on an ephemeral
//! loopback port, a real client, and a journal-backed restart.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use waco_serve::json::Json;
use waco_serve::{Client, ServeConfig, Server, WacoTuner, WacoTunerConfig};
use waco_tensor::gen::{self, Rng64};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("waco-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(cache_dir: &PathBuf) -> Server {
    let cfg = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .cache_dir(cache_dir)
        .workers(2)
        .timeout_secs(60.0)
        .build()
        .unwrap();
    let tuner = Arc::new(WacoTuner::new(WacoTunerConfig {
        index_cache: Some(cache_dir.join("index")),
        ..WacoTunerConfig::default()
    }));
    Server::start(cfg, tuner).unwrap()
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.local_addr().to_string(), Duration::from_secs(60)).unwrap()
}

#[test]
fn tune_hits_cache_and_survives_restart() {
    let dir = tmp_dir("restart");
    let mut rng = Rng64::seed_from(21);
    let m = gen::uniform_random(24, 24, 0.1, &mut rng);

    let first_decision;
    {
        let server = start_server(&dir);
        let mut client = connect(&server);

        // Unknown matrix: lookup misses, tune computes.
        let miss = client.lookup(&m, "spmv", 0).unwrap();
        assert!(!miss.cached);
        assert!(miss.decision.is_none());

        let cold = client.tune(&m, "spmv", 0).unwrap();
        assert!(!cold.cached, "first tune must be computed");
        let d = cold.decision.expect("tune returns a decision");
        assert!(d.kernel_seconds > 0.0);
        first_decision = d;

        // Same matrix again: served from cache, identical decision.
        let warm = client.tune(&m, "spmv", 0).unwrap();
        assert!(warm.cached, "second tune must be a cache hit");
        assert_eq!(warm.decision.unwrap(), first_decision);

        // The hit is observable in stats.
        let stats = client.stats().unwrap();
        let cache = stats.get("cache").unwrap();
        assert!(cache.get("hits").unwrap().as_u64().unwrap() >= 1);
        assert_eq!(cache.get("inserts").unwrap().as_u64(), Some(1));

        client.shutdown().unwrap();
        server.wait().unwrap();
    }

    // Restart from the journal: lookup answers without re-tuning.
    {
        let server = start_server(&dir);
        let mut client = connect(&server);
        let stats = client.stats().unwrap();
        assert!(
            stats
                .get("cache")
                .unwrap()
                .get("replayed")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 1,
            "journal must replay the decision"
        );
        let found = client.lookup(&m, "spmv", 0).unwrap();
        assert!(
            found.cached,
            "restarted server must answer from the journal"
        );
        assert_eq!(found.decision.unwrap(), first_decision);
        client.shutdown().unwrap();
        server.wait().unwrap();
    }
}

#[test]
fn concurrent_clients_agree() {
    let dir = tmp_dir("concurrent");
    let server = start_server(&dir);

    // Pre-tune one matrix so threads exercise the hit path concurrently.
    let mut rng = Rng64::seed_from(22);
    let m = gen::uniform_random(24, 24, 0.08, &mut rng);
    let baseline = {
        let mut client = connect(&server);
        client.tune(&m, "spmv", 0).unwrap().decision.unwrap()
    };

    let addr = server.local_addr().to_string();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let m = m.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, Duration::from_secs(60)).unwrap();
                client.tune(&m, "spmv", 0).unwrap()
            })
        })
        .collect();
    for h in handles {
        let reply = h.join().unwrap();
        assert!(reply.cached);
        assert_eq!(reply.decision.unwrap(), baseline);
    }

    let mut client = connect(&server);
    let stats = client.stats().unwrap();
    assert!(
        stats
            .get("cache")
            .unwrap()
            .get("hits")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 8
    );
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn malformed_requests_get_error_responses() {
    let dir = tmp_dir("malformed");
    let server = start_server(&dir);
    let mut client = connect(&server);

    // Unknown op.
    let reply = client
        .roundtrip(&Json::obj([("op", Json::str("dance"))]))
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
    assert!(reply
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("dance"));

    // Tune with an unparseable matrix: error response, connection stays up.
    let reply = client
        .roundtrip(&waco_serve::protocol::request_json(
            "tune",
            "spmv",
            0,
            "not a matrix",
        ))
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));

    // The same connection still serves valid requests afterwards.
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("ok").unwrap().as_bool(), Some(true));

    client.shutdown().unwrap();
    server.wait().unwrap();
}

/// Drives the wire protocol by hand so we can send frames a well-behaved
/// [`Client`] never would.
fn raw_connect(server: &Server) -> std::net::TcpStream {
    let s = std::net::TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

fn read_error_reply(stream: &mut std::net::TcpStream) -> String {
    let reply = waco_serve::protocol::read_frame(stream)
        .unwrap()
        .expect("server must answer with a frame, not a bare disconnect");
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
    reply.get("error").unwrap().as_str().unwrap().to_string()
}

#[test]
fn negative_frames_get_typed_error_responses() {
    use std::io::Write as _;

    let dir = tmp_dir("negative-frames");
    let server = start_server(&dir);

    // Oversized u32 length prefix: typed error response (framing is lost,
    // so the server may close afterwards — but it must answer first).
    {
        let mut s = raw_connect(&server);
        s.write_all(&(waco_serve::protocol::MAX_FRAME_LEN + 7).to_be_bytes())
            .unwrap();
        let err = read_error_reply(&mut s);
        assert!(err.contains("cap"), "unexpected error: {err}");
    }

    // Zero-length frame: typed error response AND the connection survives.
    {
        let mut s = raw_connect(&server);
        s.write_all(&0u32.to_be_bytes()).unwrap();
        let err = read_error_reply(&mut s);
        assert!(err.contains("JSON"), "unexpected error: {err}");
        // Same connection still serves a valid request.
        waco_serve::protocol::write_frame(&mut s, &Json::obj([("op", Json::str("stats"))]))
            .unwrap();
        let reply = waco_serve::protocol::read_frame(&mut s).unwrap().unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
    }

    // Truncated JSON inside a complete frame: typed error, connection survives.
    {
        let mut s = raw_connect(&server);
        let junk = b"{\"op\":\"stats\""; // cut before the closing brace
        s.write_all(&(junk.len() as u32).to_be_bytes()).unwrap();
        s.write_all(junk).unwrap();
        let err = read_error_reply(&mut s);
        assert!(err.contains("JSON"), "unexpected error: {err}");
        waco_serve::protocol::write_frame(&mut s, &Json::obj([("op", Json::str("stats"))]))
            .unwrap();
        let reply = waco_serve::protocol::read_frame(&mut s).unwrap().unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
    }

    // Unknown op: typed error naming the op, connection survives.
    {
        let mut s = raw_connect(&server);
        waco_serve::protocol::write_frame(&mut s, &Json::obj([("op", Json::str("launch"))]))
            .unwrap();
        let err = read_error_reply(&mut s);
        assert!(err.contains("launch"), "unexpected error: {err}");
        waco_serve::protocol::write_frame(&mut s, &Json::obj([("op", Json::str("stats"))]))
            .unwrap();
        let reply = waco_serve::protocol::read_frame(&mut s).unwrap().unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
    }

    let mut client = connect(&server);
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn builder_rejects_bad_config() {
    for (build, what) in [
        (
            ServeConfig::builder().cache_dir("/tmp/x").addr("8.8.8.8:1"),
            "non-loopback",
        ),
        (
            ServeConfig::builder()
                .cache_dir("/tmp/x")
                .addr("not-an-addr"),
            "unparseable",
        ),
        (ServeConfig::builder(), "missing cache dir"),
        (
            ServeConfig::builder().cache_dir("/tmp/x").workers(0),
            "zero workers",
        ),
        (
            ServeConfig::builder().cache_dir("/tmp/x").queue_depth(0),
            "zero queue",
        ),
        (
            ServeConfig::builder().cache_dir("/tmp/x").cache_capacity(0),
            "zero capacity",
        ),
        (
            ServeConfig::builder().cache_dir("/tmp/x").timeout_secs(0.0),
            "zero timeout",
        ),
    ] {
        assert!(
            matches!(build.build(), Err(waco_core::WacoError::InvalidConfig(_))),
            "{what} must be rejected"
        );
    }
    // And a valid one passes.
    assert!(ServeConfig::builder().cache_dir("/tmp/x").build().is_ok());
}
