//! End-to-end tests of the serving layer: a real listener on an ephemeral
//! loopback port, a real client, and a journal-backed restart.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use waco_serve::json::Json;
use waco_serve::tuner::{TunedOutcome, Tuner};
use waco_serve::{Client, ServeConfig, Server, WacoTuner, WacoTunerConfig};
use waco_tensor::gen::{self, Rng64};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("waco-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(cache_dir: &PathBuf) -> Server {
    let cfg = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .cache_dir(cache_dir)
        .workers(2)
        .timeout_secs(60.0)
        .build()
        .unwrap();
    let tuner = Arc::new(WacoTuner::new(WacoTunerConfig {
        index_cache: Some(cache_dir.join("index")),
        ..WacoTunerConfig::default()
    }));
    Server::start(cfg, tuner).unwrap()
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.local_addr().to_string(), Duration::from_secs(60)).unwrap()
}

#[test]
fn tune_hits_cache_and_survives_restart() {
    let dir = tmp_dir("restart");
    let mut rng = Rng64::seed_from(21);
    let m = gen::uniform_random(24, 24, 0.1, &mut rng);

    let first_decision;
    {
        let server = start_server(&dir);
        let mut client = connect(&server);

        // Unknown matrix: lookup misses, tune computes.
        let miss = client.lookup(&m, "spmv", 0).unwrap();
        assert!(!miss.cached);
        assert!(miss.decision.is_none());

        let cold = client.tune(&m, "spmv", 0).unwrap();
        assert!(!cold.cached, "first tune must be computed");
        let d = cold.decision.expect("tune returns a decision");
        assert!(d.kernel_seconds > 0.0);
        first_decision = d;

        // Same matrix again: served from cache, identical decision.
        let warm = client.tune(&m, "spmv", 0).unwrap();
        assert!(warm.cached, "second tune must be a cache hit");
        assert_eq!(warm.decision.unwrap(), first_decision);

        // The hit is observable in stats.
        let stats = client.stats().unwrap();
        let cache = stats.get("cache").unwrap();
        assert!(cache.get("hits").unwrap().as_u64().unwrap() >= 1);
        assert_eq!(cache.get("inserts").unwrap().as_u64(), Some(1));

        client.shutdown().unwrap();
        server.wait().unwrap();
    }

    // Restart from the journal: lookup answers without re-tuning.
    {
        let server = start_server(&dir);
        let mut client = connect(&server);
        let stats = client.stats().unwrap();
        assert!(
            stats
                .get("cache")
                .unwrap()
                .get("replayed")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 1,
            "journal must replay the decision"
        );
        let found = client.lookup(&m, "spmv", 0).unwrap();
        assert!(
            found.cached,
            "restarted server must answer from the journal"
        );
        assert_eq!(found.decision.unwrap(), first_decision);
        client.shutdown().unwrap();
        server.wait().unwrap();
    }
}

#[test]
fn concurrent_clients_agree() {
    let dir = tmp_dir("concurrent");
    let server = start_server(&dir);

    // Pre-tune one matrix so threads exercise the hit path concurrently.
    let mut rng = Rng64::seed_from(22);
    let m = gen::uniform_random(24, 24, 0.08, &mut rng);
    let baseline = {
        let mut client = connect(&server);
        client.tune(&m, "spmv", 0).unwrap().decision.unwrap()
    };

    let addr = server.local_addr().to_string();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let m = m.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, Duration::from_secs(60)).unwrap();
                client.tune(&m, "spmv", 0).unwrap()
            })
        })
        .collect();
    for h in handles {
        let reply = h.join().unwrap();
        assert!(reply.cached);
        assert_eq!(reply.decision.unwrap(), baseline);
    }

    let mut client = connect(&server);
    let stats = client.stats().unwrap();
    assert!(
        stats
            .get("cache")
            .unwrap()
            .get("hits")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 8
    );
    client.shutdown().unwrap();
    server.wait().unwrap();
}

/// A tuner double that counts invocations and holds each tune open long
/// enough for concurrent requests to pile up behind it.
struct CountingTuner {
    calls: AtomicUsize,
    delay: Duration,
}

impl Tuner for CountingTuner {
    fn tune(
        &self,
        m: &waco_tensor::CooMatrix,
        kernel: waco_schedule::Kernel,
        dense_extent: usize,
    ) -> Result<TunedOutcome, waco_core::WacoError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        let space = waco_schedule::Space::new(kernel, vec![m.nrows(), m.ncols()], dense_extent);
        Ok(TunedOutcome {
            schedule: waco_schedule::named::default_csr(&space),
            kernel_seconds: 1e-3,
            tuning_seconds: 2e-3,
        })
    }
}

/// The coalescing contract: N concurrent cold tunes of the same
/// fingerprint perform exactly one tuner invocation, every client gets the
/// identical decision, and the stats frame records the N-1 piggy-backers.
#[test]
fn concurrent_cold_tunes_coalesce_into_one_tuner_call() {
    const N: usize = 6;
    let dir = tmp_dir("coalesce");
    let cfg = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .cache_dir(&dir)
        .workers(2)
        .timeout_secs(60.0)
        .build()
        .unwrap();
    // 400 ms per tune: the second executor registers the other five
    // requests as waiters long before the owner's tune returns.
    let tuner = Arc::new(CountingTuner {
        calls: AtomicUsize::new(0),
        delay: Duration::from_millis(400),
    });
    let server = Server::start(cfg, Arc::clone(&tuner) as Arc<dyn Tuner>).unwrap();

    let mut rng = Rng64::seed_from(33);
    let m = gen::uniform_random(24, 24, 0.1, &mut rng);
    let addr = server.local_addr().to_string();
    let barrier = Arc::new(Barrier::new(N));
    let handles: Vec<_> = (0..N)
        .map(|_| {
            let addr = addr.clone();
            let m = m.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, Duration::from_secs(60)).unwrap();
                barrier.wait();
                client.tune(&m, "spmv", 0).unwrap()
            })
        })
        .collect();
    let replies: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(
        tuner.calls.load(Ordering::SeqCst),
        1,
        "N concurrent tunes of one fingerprint must invoke the tuner once"
    );
    let first = replies[0].decision.as_ref().unwrap();
    for reply in &replies {
        assert!(!reply.cached, "a fresh tune is not a cache hit");
        assert_eq!(reply.decision.as_ref().unwrap(), first);
    }

    let mut client = connect(&server);
    let stats = client.stats().unwrap();
    let srv = stats.get("server").unwrap();
    assert_eq!(srv.get("tune_calls").unwrap().as_u64(), Some(1));
    assert_eq!(
        srv.get("coalesced").unwrap().as_u64(),
        Some((N - 1) as u64),
        "the other {} requests must piggy-back on the in-flight tune",
        N - 1
    );
    client.shutdown().unwrap();
    server.wait().unwrap();
}

/// Pipelining: several requests written back-to-back on one connection are
/// answered strictly in request order.
#[test]
fn pipelined_requests_answer_in_order() {
    let dir = tmp_dir("pipeline");
    let cfg = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .cache_dir(&dir)
        .workers(2)
        .timeout_secs(60.0)
        .build()
        .unwrap();
    let tuner = Arc::new(CountingTuner {
        calls: AtomicUsize::new(0),
        delay: Duration::from_millis(50),
    });
    let server = Server::start(cfg, tuner).unwrap();

    let mut rng = Rng64::seed_from(34);
    let m = gen::uniform_random(16, 16, 0.2, &mut rng);
    let mut mtx = Vec::new();
    waco_tensor::io::write_matrix_market(&mut mtx, &m).unwrap();
    let text = String::from_utf8(mtx).unwrap();

    let mut client = connect(&server);
    // stats answers immediately; the tune behind it takes 50 ms — the
    // stats response after it must still arrive third.
    client
        .send(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    client
        .send(&waco_serve::protocol::request_json(
            "tune", "spmv", 0, &text,
        ))
        .unwrap();
    client
        .send(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();

    let r1 = client.recv().unwrap();
    assert!(
        r1.get("cache").is_some(),
        "first reply answers the stats op"
    );
    let r2 = client.recv().unwrap();
    assert!(
        r2.get("decision").is_some(),
        "second reply answers the tune op"
    );
    let r3 = client.recv().unwrap();
    assert!(
        r3.get("cache").is_some(),
        "third reply answers the stats op"
    );

    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn malformed_requests_get_error_responses() {
    let dir = tmp_dir("malformed");
    let server = start_server(&dir);
    let mut client = connect(&server);

    // Unknown op.
    let reply = client
        .roundtrip(&Json::obj([("op", Json::str("dance"))]))
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
    assert!(reply
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("dance"));

    // Tune with an unparseable matrix: error response, connection stays up.
    let reply = client
        .roundtrip(&waco_serve::protocol::request_json(
            "tune",
            "spmv",
            0,
            "not a matrix",
        ))
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));

    // The same connection still serves valid requests afterwards.
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("ok").unwrap().as_bool(), Some(true));

    client.shutdown().unwrap();
    server.wait().unwrap();
}

/// Drives the wire protocol by hand so we can send frames a well-behaved
/// [`Client`] never would.
fn raw_connect(server: &Server) -> std::net::TcpStream {
    let s = std::net::TcpStream::connect(server.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

fn read_error_reply(stream: &mut std::net::TcpStream) -> String {
    let reply = waco_serve::protocol::read_frame(stream)
        .unwrap()
        .expect("server must answer with a frame, not a bare disconnect");
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
    reply.get("error").unwrap().as_str().unwrap().to_string()
}

#[test]
fn negative_frames_get_typed_error_responses() {
    use std::io::Write as _;

    let dir = tmp_dir("negative-frames");
    let server = start_server(&dir);

    // Oversized u32 length prefix: typed error response (framing is lost,
    // so the server may close afterwards — but it must answer first).
    {
        let mut s = raw_connect(&server);
        s.write_all(&(waco_serve::protocol::MAX_FRAME_LEN + 7).to_be_bytes())
            .unwrap();
        let err = read_error_reply(&mut s);
        assert!(err.contains("cap"), "unexpected error: {err}");
    }

    // Zero-length frame: typed error response AND the connection survives.
    {
        let mut s = raw_connect(&server);
        s.write_all(&0u32.to_be_bytes()).unwrap();
        let err = read_error_reply(&mut s);
        assert!(err.contains("JSON"), "unexpected error: {err}");
        // Same connection still serves a valid request.
        waco_serve::protocol::write_frame(&mut s, &Json::obj([("op", Json::str("stats"))]))
            .unwrap();
        let reply = waco_serve::protocol::read_frame(&mut s).unwrap().unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
    }

    // Truncated JSON inside a complete frame: typed error, connection survives.
    {
        let mut s = raw_connect(&server);
        let junk = b"{\"op\":\"stats\""; // cut before the closing brace
        s.write_all(&(junk.len() as u32).to_be_bytes()).unwrap();
        s.write_all(junk).unwrap();
        let err = read_error_reply(&mut s);
        assert!(err.contains("JSON"), "unexpected error: {err}");
        waco_serve::protocol::write_frame(&mut s, &Json::obj([("op", Json::str("stats"))]))
            .unwrap();
        let reply = waco_serve::protocol::read_frame(&mut s).unwrap().unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
    }

    // Unknown op: typed error naming the op, connection survives.
    {
        let mut s = raw_connect(&server);
        waco_serve::protocol::write_frame(&mut s, &Json::obj([("op", Json::str("launch"))]))
            .unwrap();
        let err = read_error_reply(&mut s);
        assert!(err.contains("launch"), "unexpected error: {err}");
        waco_serve::protocol::write_frame(&mut s, &Json::obj([("op", Json::str("stats"))]))
            .unwrap();
        let reply = waco_serve::protocol::read_frame(&mut s).unwrap().unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
    }

    let mut client = connect(&server);
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn builder_rejects_bad_config() {
    for (build, what) in [
        (
            ServeConfig::builder().cache_dir("/tmp/x").addr("8.8.8.8:1"),
            "non-loopback",
        ),
        (
            ServeConfig::builder()
                .cache_dir("/tmp/x")
                .addr("not-an-addr"),
            "unparseable",
        ),
        (ServeConfig::builder(), "missing cache dir"),
        (
            ServeConfig::builder().cache_dir("/tmp/x").workers(0),
            "zero workers",
        ),
        (
            ServeConfig::builder().cache_dir("/tmp/x").queue_depth(0),
            "zero queue",
        ),
        (
            ServeConfig::builder().cache_dir("/tmp/x").cache_capacity(0),
            "zero capacity",
        ),
        (
            ServeConfig::builder().cache_dir("/tmp/x").timeout_secs(0.0),
            "zero timeout",
        ),
    ] {
        assert!(
            matches!(build.build(), Err(waco_core::WacoError::InvalidConfig(_))),
            "{what} must be rejected"
        );
    }
    // And a valid one passes.
    assert!(ServeConfig::builder().cache_dir("/tmp/x").build().is_ok());
}
