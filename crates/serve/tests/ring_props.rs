//! Property tests for the consistent hash ring: load balance under uniform
//! and Zipf-weighted fingerprint populations, and bounded disruption when a
//! shard joins or leaves.
//!
//! Everything is seeded and deterministic; the thresholds are properties of
//! the ring's point hashing, not of a lucky sample.

use waco_serve::{Fingerprint, HashRing};

/// splitmix64: a tiny seeded generator for fingerprint streams.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn fingerprint(&mut self) -> Fingerprint {
        Fingerprint {
            hi: self.next_u64(),
            lo: self.next_u64(),
        }
    }
}

const SHARD_COUNTS: &[usize] = &[2, 3, 5, 8];
const KEYS: usize = 65_536;

/// Stationary per-shard load for a weighted key population: each key's full
/// weight lands on its owner, so this is the exact long-run request share.
fn shard_loads(ring: &HashRing, keys: &[Fingerprint], weights: &[f64]) -> Vec<f64> {
    let mut load = vec![0.0; ring.shards()];
    for (fp, w) in keys.iter().zip(weights) {
        load[ring.route(*fp)] += w;
    }
    load
}

fn max_over_mean(load: &[f64]) -> f64 {
    let total: f64 = load.iter().sum();
    let mean = total / load.len() as f64;
    load.iter().cloned().fold(0.0f64, f64::max) / mean
}

#[test]
fn uniform_load_stays_balanced() {
    let mut rng = Rng(0xfeed_0001);
    let keys: Vec<Fingerprint> = (0..KEYS).map(|_| rng.fingerprint()).collect();
    let weights = vec![1.0; KEYS];
    for &n in SHARD_COUNTS {
        let ring = HashRing::new(n);
        let ratio = max_over_mean(&shard_loads(&ring, &keys, &weights));
        assert!(
            ratio <= 1.25,
            "uniform keys, {n} shards: max/mean = {ratio:.4} exceeds 1.25"
        );
    }
}

#[test]
fn zipf_load_stays_balanced() {
    // A skewed catalog: key k carries weight k^-0.8. Large catalog, so no
    // single key dominates a shard — the regime consistent hashing can
    // actually balance (a catalog of a dozen keys could not be).
    let mut rng = Rng(0xfeed_0002);
    let keys: Vec<Fingerprint> = (0..KEYS).map(|_| rng.fingerprint()).collect();
    let weights: Vec<f64> = (0..KEYS).map(|k| ((k + 1) as f64).powf(-0.8)).collect();
    for &n in SHARD_COUNTS {
        let ring = HashRing::new(n);
        let ratio = max_over_mean(&shard_loads(&ring, &keys, &weights));
        assert!(
            ratio <= 1.25,
            "zipf keys, {n} shards: max/mean = {ratio:.4} exceeds 1.25"
        );
    }
}

#[test]
fn adding_a_shard_moves_only_its_share() {
    let mut rng = Rng(0xfeed_0003);
    let keys: Vec<Fingerprint> = (0..KEYS).map(|_| rng.fingerprint()).collect();
    for &n in SHARD_COUNTS {
        let before = HashRing::new(n);
        let after = HashRing::new(n + 1);
        let mut moved = 0usize;
        for fp in &keys {
            let old = before.route(*fp);
            let new = after.route(*fp);
            if old != new {
                // A key may move only TO the new shard, never between
                // survivors — that would be gratuitous cache loss.
                assert_eq!(
                    new,
                    n,
                    "growing {n}->{} moved a key between surviving shards ({old}->{new})",
                    n + 1
                );
                moved += 1;
            }
        }
        let frac = moved as f64 / KEYS as f64;
        let fair = 1.0 / (n + 1) as f64;
        assert!(
            frac <= 1.5 * fair,
            "growing {n}->{}: moved {frac:.4} of keys, fair share is {fair:.4}",
            n + 1
        );
        assert!(
            frac >= 0.5 * fair,
            "growing {n}->{}: moved only {frac:.4} of keys; the new shard is starved",
            n + 1
        );
    }
}

#[test]
fn removing_a_shard_moves_only_its_keys() {
    let mut rng = Rng(0xfeed_0004);
    let keys: Vec<Fingerprint> = (0..KEYS).map(|_| rng.fingerprint()).collect();
    for &n in SHARD_COUNTS {
        if n < 2 {
            continue;
        }
        let before = HashRing::new(n);
        let after = HashRing::new(n - 1);
        let mut orphaned = 0usize;
        for fp in &keys {
            let old = before.route(*fp);
            let new = after.route(*fp);
            if old == n - 1 {
                orphaned += 1;
            } else {
                // Keys on surviving shards must not move at all.
                assert_eq!(
                    new,
                    old,
                    "shrinking {n}->{}: a surviving shard's key moved ({old}->{new})",
                    n - 1
                );
            }
        }
        let frac = orphaned as f64 / KEYS as f64;
        let fair = 1.0 / n as f64;
        assert!(
            frac <= 1.5 * fair,
            "shrinking {n}->{}: removed shard owned {frac:.4}, fair share is {fair:.4}",
            n - 1
        );
    }
}

#[test]
fn successors_agree_with_route_and_cover_all_shards() {
    let mut rng = Rng(0xfeed_0005);
    for &n in SHARD_COUNTS {
        let ring = HashRing::new(n);
        for _ in 0..256 {
            let fp = rng.fingerprint();
            let order = ring.successors(fp);
            assert_eq!(order[0], ring.route(fp), "owner must lead the walk");
            let mut seen = order.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(
                seen.len(),
                n,
                "successor walk must visit every shard exactly once"
            );
        }
    }
}
