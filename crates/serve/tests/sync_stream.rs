//! Journal-streaming equivalence: a peer-warmed cache must be byte-identical
//! to a local replay of the same decisions, and a truncated or corrupted
//! stream must surface a typed error and leave the joiner cold — never a
//! panic, never a partially-committed cache.

use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use waco_core::WacoError;
use waco_schedule::{named, Kernel, Space};
use waco_serve::cache::encode_payload;
use waco_serve::fingerprint::fnv1a64;
use waco_serve::protocol::{read_frame, sync_response, write_frame, SyncRecord};
use waco_serve::sync::warm_from_peer;
use waco_serve::tuner::{TunedOutcome, Tuner};
use waco_serve::{Client, Decision, ServeConfig, Server, TuningCache};
use waco_tensor::gen::{self, Rng64};
use waco_tensor::CooMatrix;

const TIMEOUT: Duration = Duration::from_secs(30);

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("waco-sync-stream-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A pure tuner so the expected decision is computable in the test.
struct CsrTuner;

impl Tuner for CsrTuner {
    fn tune(
        &self,
        m: &CooMatrix,
        kernel: Kernel,
        dense_extent: usize,
    ) -> Result<TunedOutcome, WacoError> {
        let space = Space::new(kernel, vec![m.nrows(), m.ncols()], dense_extent);
        Ok(TunedOutcome {
            schedule: named::default_csr(&space),
            kernel_seconds: 1e-6,
            tuning_seconds: 2e-6,
        })
    }
}

fn start_server(cache_dir: &PathBuf) -> Server {
    let cfg = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .cache_dir(cache_dir)
        .workers(2)
        .build()
        .unwrap();
    Server::start(cfg, Arc::new(CsrTuner)).unwrap()
}

#[test]
fn peer_warm_is_byte_identical_to_local_replay() {
    let src_dir = tmp_dir("equiv-src");
    let join_dir = tmp_dir("equiv-join");
    let local_dir = tmp_dir("equiv-local");

    let matrices: Vec<CooMatrix> = (0..5)
        .map(|i| {
            let mut rng = Rng64::seed_from(900 + i);
            gen::banded(20 + (i as usize) * 6, 3, 0.9, &mut rng)
        })
        .collect();

    // Tune everything on the source shard, keeping the wire decisions.
    let server = start_server(&src_dir);
    let decisions: Vec<Decision> = {
        let mut c = Client::connect(&server.local_addr().to_string(), TIMEOUT).unwrap();
        matrices
            .iter()
            .map(|m| c.tune(m, "spmv", 0).unwrap().decision.unwrap())
            .collect()
    };

    // Warm a joiner over the wire while the source is still serving.
    let joiner = TuningCache::open(join_dir.join("tuning.journal"), 64).unwrap();
    let report = warm_from_peer(&server.local_addr().to_string(), TIMEOUT, &joiner).unwrap();
    assert_eq!(report.records, matrices.len());
    assert_eq!(report.resumes, 0);
    for d in &decisions {
        assert_eq!(
            joiner
                .lookup(d.fingerprint, d.kernel, d.dense_extent)
                .as_ref(),
            Some(d),
            "warmed cache must serve the exact streamed decision"
        );
    }
    joiner.sync().unwrap();
    drop(joiner);

    server.begin_shutdown();
    server.wait().unwrap();

    // Local replay: the same decisions inserted in the same order.
    {
        let local = TuningCache::open(local_dir.join("tuning.journal"), 64).unwrap();
        for d in &decisions {
            local.insert(d.clone()).unwrap();
        }
        local.sync().unwrap();
    }

    let src = std::fs::read(src_dir.join("tuning.journal")).unwrap();
    let join = std::fs::read(join_dir.join("tuning.journal")).unwrap();
    let local = std::fs::read(local_dir.join("tuning.journal")).unwrap();
    assert_eq!(src, join, "peer-warmed journal must equal the source's");
    assert_eq!(
        local, join,
        "peer-warmed journal must equal a local replay of the same decisions"
    );

    for d in [&src_dir, &join_dir, &local_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

fn record_for(seed: u64) -> SyncRecord {
    let mut rng = Rng64::seed_from(seed);
    let m = gen::banded(24, 3, 0.9, &mut rng);
    let space = Space::new(Kernel::SpMV, vec![m.nrows(), m.ncols()], 0);
    let payload = encode_payload(&Decision {
        fingerprint: waco_serve::Fingerprint::of_matrix(&m),
        kernel: Kernel::SpMV,
        dense_extent: 0,
        schedule: named::default_csr(&space),
        kernel_seconds: 1e-6,
        tuning_seconds: 2e-6,
    });
    SyncRecord {
        crc: fnv1a64(payload.as_bytes()),
        payload,
    }
}

/// Asserts a warm-up against a scripted peer fails with a typed error and
/// leaves the joiner byte-for-byte cold.
fn assert_cold_failure(
    name: &str,
    serve_conn: impl FnOnce(std::net::TcpStream) + Send + 'static,
    want_checkpoint: bool,
) {
    let dir = tmp_dir(name);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let peer = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        serve_conn(sock);
        // Listener drops here: any reconnect is refused, like a dead peer.
    });

    let journal = dir.join("tuning.journal");
    let cache = TuningCache::open(&journal, 64).unwrap();
    let cold_len = std::fs::metadata(&journal).unwrap().len();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        warm_from_peer(&addr.to_string(), Duration::from_secs(5), &cache)
    }));
    peer.join().unwrap();

    let err = outcome
        .unwrap_or_else(|_| panic!("{name}: warm-up panicked"))
        .expect_err("a mangled stream must not report success");
    if want_checkpoint {
        assert!(
            matches!(err, WacoError::Checkpoint(_)),
            "{name}: wanted Checkpoint, got {err}"
        );
    } else {
        assert!(
            matches!(err, WacoError::Io { .. }),
            "{name}: wanted Io, got {err}"
        );
    }

    // Cold fallback: no record committed, journal file untouched.
    let (records, total) = cache.journal_records(0).unwrap();
    assert!(records.is_empty() && total == 0, "{name}: joiner not cold");
    cache.sync().unwrap();
    assert_eq!(
        std::fs::metadata(&journal).unwrap().len(),
        cold_len,
        "{name}: journal grew despite the failed stream"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_stream_is_a_typed_error_and_cold_fallback() {
    // The peer sends one good batch of an announced two, then dies; every
    // reconnect is refused. The committed state must stay empty.
    assert_cold_failure(
        "truncated",
        |mut sock| {
            let _ = read_frame(&mut sock);
            let rec = record_for(41);
            write_frame(&mut sock, &sync_response(&[rec], 1, false, 2)).unwrap();
        },
        false,
    );
}

#[test]
fn corrupt_stream_is_a_typed_error_and_cold_fallback() {
    // Checksum mismatch: payload altered after the crc was computed.
    assert_cold_failure(
        "corrupt",
        |mut sock| {
            let _ = read_frame(&mut sock);
            let mut rec = record_for(42);
            rec.payload.replace_range(0..1, "[");
            write_frame(&mut sock, &sync_response(&[rec], 1, true, 1)).unwrap();
            let _ = read_frame(&mut sock);
        },
        true,
    );
}

#[test]
fn undecodable_record_is_a_typed_error_and_cold_fallback() {
    // Checksum valid, but the payload is not a decision: verification must
    // reject content, not just transport.
    assert_cold_failure(
        "undecodable",
        |mut sock| {
            let _ = read_frame(&mut sock);
            let payload = "{\"op\":\"not a decision\"}".to_string();
            let rec = SyncRecord {
                crc: fnv1a64(payload.as_bytes()),
                payload,
            };
            write_frame(&mut sock, &sync_response(&[rec], 1, true, 1)).unwrap();
            let _ = read_frame(&mut sock);
        },
        true,
    );
}
