//! Workspace-reuse property: a `PlannedKernel` run twice must produce
//! bit-identical output with zero additional workspace allocations — the
//! second run draws every dense temporary from the pool
//! (`exec.workspace.alloc` stays flat, `exec.workspace.reuse` grows).
//!
//! This lives in its own integration-test binary so the process-global
//! observability counters cannot be polluted by unrelated unit tests
//! running in parallel.

use std::sync::Mutex;
use waco_exec::{Executor, KernelArgs};
use waco_schedule::{named, Kernel, Space};
use waco_tensor::gen::{self, Rng64};
use waco_tensor::{CsrMatrix, DenseMatrix};

/// The observability sink and the workspace pool are process-global, so
/// the two counter-asserting tests must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn second_run_is_bit_identical_with_zero_new_allocations() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng64::seed_from(41);
    let a = gen::uniform_random(64, 56, 0.1, &mut rng);
    let b = CsrMatrix::from_coo(&gen::uniform_random(56, 48, 0.1, &mut rng));

    let space = Space::new(Kernel::SpGEMM, vec![64, 56], 48);
    let sched = named::default_csr(&space);
    let planned = Executor::planned().prepare(&a, &sched, &space).unwrap();

    waco_obs::install();
    waco_obs::reset();

    let first = planned
        .run(KernelArgs::Spgemm { b: &b })
        .unwrap()
        .into_csr()
        .unwrap();
    let after_first = waco_obs::snapshot();
    let allocs_first = after_first.counter("exec.workspace.alloc");
    assert!(
        allocs_first >= 1,
        "a cold run allocates its workspace (got {allocs_first})"
    );

    let second = planned
        .run(KernelArgs::Spgemm { b: &b })
        .unwrap()
        .into_csr()
        .unwrap();
    let after_second = waco_obs::snapshot();
    waco_obs::uninstall();

    assert_eq!(
        after_second.counter("exec.workspace.alloc"),
        allocs_first,
        "the warm run must not allocate: every workspace comes from the pool"
    );
    assert!(
        after_second.counter("exec.workspace.reuse") > after_first.counter("exec.workspace.reuse"),
        "the warm run draws from the pool"
    );

    assert_eq!(first.row_ptr(), second.row_ptr());
    assert_eq!(first.col_idx(), second.col_idx());
    for (x, y) in first.vals().iter().zip(second.vals()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn fused_kernel_reuses_its_workspace_across_runs() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Rng64::seed_from(42);
    let a = gen::uniform_random(48, 44, 0.12, &mut rng);
    let b = DenseMatrix::from_fn(48, 6, |r, c| ((r + c) % 5) as f32 * 0.2 - 0.4);
    let c = DenseMatrix::from_fn(6, 44, |r, c| ((2 * r + c) % 7) as f32 * 0.1 - 0.3);
    let f = DenseMatrix::from_fn(44, 8, |r, c| ((r * 3 + c) % 9) as f32 * 0.25 - 1.0);

    let space = Space::new(Kernel::SddmmSpmm, vec![48, 44], 6);
    let sched = named::default_csr(&space);
    let planned = Executor::planned().prepare(&a, &sched, &space).unwrap();

    waco_obs::install();
    waco_obs::reset();

    let first = planned
        .run(KernelArgs::SddmmSpmm {
            b: &b,
            c: &c,
            f: &f,
        })
        .unwrap()
        .into_matrix()
        .unwrap();
    let allocs_first = waco_obs::snapshot().counter("exec.workspace.alloc");

    let second = planned
        .run(KernelArgs::SddmmSpmm {
            b: &b,
            c: &c,
            f: &f,
        })
        .unwrap()
        .into_matrix()
        .unwrap();
    let allocs_second = waco_obs::snapshot().counter("exec.workspace.alloc");
    waco_obs::uninstall();

    assert_eq!(allocs_second, allocs_first, "warm run allocates nothing");
    for (x, y) in first.as_slice().iter().zip(second.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
